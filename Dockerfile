FROM python:3.11-slim

WORKDIR /app

# Install the package first so image rebuilds reuse the dependency
# layer when only source changes.
COPY pyproject.toml README.md ./
COPY src ./src
RUN pip install --no-cache-dir .

COPY scripts ./scripts

ENV PYTHONUNBUFFERED=1

# Coordinator by default; compose overrides the command for workers
# and the smoke client.
EXPOSE 8765
CMD ["repro-experiments", "serve", "--host", "0.0.0.0", "--port", "8765"]

"""Ablation — cache size and associativity.

The paper fixes every node's cache at 16 KB 4-way (after Hakura &
Gupta) and never varies it.  This ablation sweeps both dimensions on
the 16-processor block-16 machine to show the design point is on the
flat part of both curves: halving the cache hurts, quadrupling it buys
little (the parallel locality loss is *compulsory-like* sharing across
nodes, which capacity cannot recover), and direct-mapped conflicts are
visible while 4-way ~= 8-way.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_ablation_cache_size(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.ablation_cache_size(scale))
    results_writer("ablation_cache_size", text)


def bench_ablation_cache_associativity(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.ablation_cache_associativity(scale))
    results_writer("ablation_cache_associativity", text)

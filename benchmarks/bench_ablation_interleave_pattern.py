"""Ablation — how square tiles are dealt to processors.

Grid-repeat interleave vs Morton-curve round-robin over identical
tiles.  For power-of-two processor counts the two partitions are
provably identical (Morton mod 2^(2k) relabels the square grid); at
non-power-of-two counts they diverge and the grid wins — a Z-curve
dealt over a count that does not divide its period clusters
consecutive tiles onto one node.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_ablation_interleave_pattern(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.ablation_interleave_pattern(scale))
    results_writer("ablation_interleave_pattern", text)

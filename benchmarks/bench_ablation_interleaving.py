"""Ablation — what static interleaving buys.

Section 2 argues interleaving is what makes a static distribution
balance at all.  This ablation contrasts interleaved square blocks with
contiguous horizontal bands (same processor count, no interleaving) on
both Figure-5 metrics: work imbalance and realised speedup.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_ablation_interleaving(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.ablation_interleaving(scale))
    results_writer("ablation_interleaving", text)

"""Ablations on the distributor model and workload robustness.

* **Submission order** — clustered vs raster vs random triangle
  emission against the triangle-buffer sweep.  Measured finding: with
  interleaved tiles the orders are nearly indistinguishable, because
  interleaving spatially de-clusters any stream.
* **Routing** — realistic bounding-box routing vs an oracle that only
  sends a triangle where it actually covers pixels: the grazed-tile
  setup overhead grows sharply as tiles shrink below the triangle
  size (room3's ~12-pixel triangles).
* **Seeds** — regenerating the workload under different seeds: the
  best-block-width conclusion must be a plateau, not a lottery.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_ablation_submission_order(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.ablation_submission_order(scale))
    results_writer("ablation_submission_order", text)


def bench_ablation_routing(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.ablation_routing(scale))
    results_writer("ablation_routing", text)


def bench_seed_sensitivity(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.seed_sensitivity(scale))
    results_writer("seed_sensitivity", text)

"""Ablation — 2D texture blocking vs raster-linear layout.

The machine stores textures in 4x4-texel blocks so one 64-byte cache
line covers a square texel neighbourhood (Hakura & Gupta); the obvious
alternative is raster order, where a line holds a 16x1 texel strip.
2D blocking should win, and the gap should *widen* under SLI with small
groups, where horizontal strips lose their vertical reuse entirely.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_ablation_texture_blocking(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.ablation_texture_blocking(scale))
    results_writer("ablation_texture_blocking", text)

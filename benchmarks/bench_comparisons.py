"""Cross-architecture comparison and model-assumption validation.

* **Sort-last baseline** — the object-partition architecture of the
  authors' earlier papers ([13], [14]), against this paper's
  sort-middle machine.  Expected shape: sort-last keeps each texture on
  one node (lower texel/fragment), but its load balance is hostage to
  the object mix, while sort-middle's tile grid balances by
  construction — and only sort-middle retains strict OpenGL order.
* **Prefetch validation** — the Section-3 modelling assumption that
  memory latency is fully hidden, replayed through an explicit
  pixel-FIFO pipeline: a deep FIFO must land within ~1% of the
  zero-latency model, a shallow one must not.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_comparison_sort_last(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.comparison_sort_last(scale))
    results_writer("comparison_sort_last", text)


def bench_validation_prefetch(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.validation_prefetch(scale))
    results_writer("validation_prefetch", text)

"""Model extensions and validations beyond the paper's experiments.

* **Early-Z ablation** — re-run the machine on depth-resolved fragment
  streams to quantify the paper's "the Z-buffer has no impact"
  modelling choice against a modern early-Z engine.
* **Overlap-model validation** — measured bounding-box routing overlap
  against the Chen et al. closed form the paper cites.
* **Geometry-stage extension** — how many finite-rate geometry engines
  the machine needs before the paper's ideal-geometry assumption holds.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_ablation_early_z(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.ablation_early_z(scale))
    results_writer("ablation_early_z", text)


def bench_validation_overlap_model(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.validation_overlap_model(scale))
    results_writer("validation_overlap", text)


def bench_extension_geometry_stage(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.extension_geometry_stage(scale))
    results_writer("extension_geometry_stage", text)


def bench_ablation_texel_format(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.ablation_texel_format(scale))
    results_writer("ablation_texel_format", text)

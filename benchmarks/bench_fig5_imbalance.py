"""Figure 5 (top) — load imbalance at 64 processors, perfect cache.

For every benchmark scene and every tile size of both distributions,
the percent difference between the busiest and the average processor's
work (``max(25, pixels)`` per routed triangle).  Paper shape: imbalance
grows with tile size; SLI is worse than square blocks at equal block
height; the worst cases reach hundreds of percent.

Runs at ``balance_scale`` (>= 0.5): imbalance depends on the number of
blocks per processor, so it needs a near-full-size screen, and the
perfect-cache analysis is cheap enough to afford one.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_fig5_imbalance_block(benchmark, balance_scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig5_imbalance("block", balance_scale))
    results_writer("fig5_imbalance_block", text)


def bench_fig5_imbalance_sli(benchmark, balance_scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig5_imbalance("sli", balance_scale))
    results_writer("fig5_imbalance_sli", text)

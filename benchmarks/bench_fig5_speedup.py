"""Figure 5 (bottom) — perfect-cache speedup vs. processors, 32massive.

Speedup of the machine with an always-hitting texture cache for every
tile size and processor count — pure load-balance + setup-overhead
scaling, the paper's scene ``32massive11255``.  Paper shape: a width of
16 scales best for square blocks at every processor count; single-line
SLI and sub-8-pixel blocks are setup-bound; oversized tiles lose to
imbalance at 64 processors.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_fig5_speedup_block(benchmark, balance_scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig5_speedup("block", balance_scale))
    results_writer("fig5_speedup_block", text)


def bench_fig5_speedup_sli(benchmark, balance_scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig5_speedup("sli", balance_scale))
    results_writer("fig5_speedup_sli", text)

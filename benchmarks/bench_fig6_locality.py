"""Figure 6 — texel-to-fragment ratio vs. processors and tile size.

Every node simulates its private 16 KB 4-way cache with an infinite
bus; the plotted metric is external texels fetched per fragment drawn,
machine-wide.  The paper shows ``32massive11255`` (representative of
room3/blowout/truc) and ``teapot.full`` (representative of quake).
Paper shape: the ratio always rises as tiles shrink or processors
multiply; SLI-2 is markedly worse than block-16; the teapot family
lives at much higher ratios than the massive family.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_fig6_locality_massive_block(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig6("massive32_1255", "block", scale))
    results_writer("fig6_massive_block", text)


def bench_fig6_locality_massive_sli(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig6("massive32_1255", "sli", scale))
    results_writer("fig6_massive_sli", text)


def bench_fig6_locality_teapot_block(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig6("teapot_full", "block", scale))
    results_writer("fig6_teapot_block", text)


def bench_fig6_locality_teapot_sli(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig6("teapot_full", "sli", scale))
    results_writer("fig6_teapot_sli", text)

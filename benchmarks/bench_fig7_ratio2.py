"""Figure 7 companion (tech report [15]) — speedups with a 2x bus.

The paper presents the 1 texel/pixel bus in Figure 7 and defers the
2 texels/pixel results to its companion technical report, noting the
only difference: with the wider bus the cache matters less, so at 64
processors *smaller* blocks edge ahead.  This benchmark regenerates the
2x-bus panels for the two scenes the locality study highlights.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments

SCENES = ("massive32_1255", "teapot_full")


def bench_fig7_ratio2_block(benchmark, scale, results_writer):
    text = run_once(
        benchmark,
        lambda: experiments.fig7("block", scale, bus_ratio=2.0, scenes=SCENES),
    )
    results_writer("fig7_ratio2_block", text)


def bench_fig7_ratio2_sli(benchmark, scale, results_writer):
    text = run_once(
        benchmark,
        lambda: experiments.fig7("sli", scale, bus_ratio=2.0, scenes=SCENES),
    )
    results_writer("fig7_ratio2_sli", text)

"""Figure 7 — speedups with 16 KB caches and a 1 texel/pixel bus.

The paper's main result: speedup of every benchmark scene on 4-, 16-
and 64-processor machines, for both distributions across all tile
sizes, with the real cache and a bus sustaining 1 texel per pixel
cycle.  Paper shape: the best block width is ~16 at every processor
count; the best SLI height *shrinks* as processors grow (16 @ 4P,
8 @ 16P, 4 @ 64P); block and SLI tie up to 16 processors and block
wins at 64.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_fig7_speedup_block(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig7("block", scale))
    results_writer("fig7_speedup_block", text)


def bench_fig7_speedup_sli(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig7("sli", scale))
    results_writer("fig7_speedup_sli", text)

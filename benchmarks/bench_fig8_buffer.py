"""Figure 8 — speedup vs. block width and triangle-buffer size.

The buffering study (Section 8): ``truc640`` on 64 processors with the
block distribution, sweeping the triangle FIFO in front of each
texture-mapping engine, once with a perfect cache and once with the
16 KB cache on a 2 texels/pixel bus.  Paper shape: small buffers cost a
large fraction of the speedup, the loss is *bigger* with the real cache
(cache-miss bursts add local imbalance), and a small buffer also shifts
the best block width downward.

Buffer sizes are FIFO entries; the paper's 500-entry knee is relative
to its ~12k-triangle scene, so at a linear scale ``s`` (``s**2`` fewer
triangles) the knee lands around ``500 * s**2`` entries.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_fig8_buffer_perfect_cache(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig8("perfect", scale))
    results_writer("fig8_buffer_perfect", text)


def bench_fig8_buffer_real_cache(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.fig8("lru", scale))
    results_writer("fig8_buffer_lru", text)

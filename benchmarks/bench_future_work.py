"""Section-9 future-work studies the paper calls for but never ran.

* **Dynamic load balancing** — an idealised runtime tile balancer (LPT
  greedy over measured per-tile work) against the paper's static
  interleave, including the cache effects the paper flags as unknown.
  Expected shape: dynamic balancing mostly pays at *large* tile sizes
  (it removes the imbalance that forced tiles to be small), letting a
  bigger, more cache-friendly tile win overall.
* **Inter-frame L2 cache** — per-node L1+L2 hierarchies replaying a
  panning camera.  Expected shape (the paper's closing hypothesis):
  the L2's warm-frame benefit decays as the per-frame pan approaches
  and exceeds the tile size, and larger tiles keep their benefit
  longer.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_future_dynamic_balancing(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.future_dynamic(scale))
    results_writer("future_dynamic", text)


def bench_future_l2_interframe(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.future_l2_interframe(scale))
    results_writer("future_l2_interframe", text)

"""Methodology benches: workload choice and scale substitution.

* **CAD contrast** — the Section-4.2 argument measured: a
  Viewperf-style CAD frame leaves the texture cache nearly idle, so
  the distribution study *needs* the VR workloads.
* **Scale stability** — headline metrics across scene scales, so a
  reader can tell which conclusions of this reproduction are artefacts
  of running reduced frames (absolute imbalance shrinks with scale;
  the texel/fragment regime and best-width plateau hold).
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_cad_contrast(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.cad_contrast(scale))
    results_writer("cad_contrast", text)


def bench_scale_stability(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.scale_stability(scale))
    results_writer("scale_stability", text)

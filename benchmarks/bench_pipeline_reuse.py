"""Artifact-store reuse on a Figure-7-style sweep.

Runs the full sweep grid (every scene, both distribution families,
{4, 16, 64} processors) twice in one process.  The first pass computes
every stage; the second rides the memoized artifact store, so its wall
time is the pipeline's bookkeeping overhead.  The report prints the
measured ratio and the per-stage hit counters alongside the benchmark
timing.
"""

from __future__ import annotations

import time

from benchmarks.conftest import PROCESSOR_COUNTS, run_once
from repro import pipeline
from repro.core.routing import build_routed_work
from repro.distribution import BlockInterleaved, ScanLineInterleaved
from repro.workloads.scenes import SCENE_NAMES, build_scene


def _sweep(scale: float) -> int:
    points = 0
    for name in SCENE_NAMES:
        scene = build_scene(name, scale)
        for processors in PROCESSOR_COUNTS:
            for dist in (
                BlockInterleaved(processors, 16),
                ScanLineInterleaved(processors, 2),
            ):
                build_routed_work(scene, dist)
                points += 1
    return points


def bench_pipeline_reuse(benchmark, scale, results_writer):
    pipeline.configure()  # fresh store: measure a true cold pass

    def cold_then_warm() -> str:
        started = time.perf_counter()
        points = _sweep(scale)
        cold = time.perf_counter() - started

        started = time.perf_counter()
        _sweep(scale)
        warm = time.perf_counter() - started

        ratio = cold / warm if warm else float("inf")
        header = (
            f"Pipeline artifact reuse, Figure-7-style sweep "
            f"({points} points, scale={scale})\n"
            f"cold pass {cold:.3f}s, warm pass {warm:.3f}s — "
            f"{ratio:.1f}x faster on reuse\n"
        )
        return header + "\n" + pipeline.render_stats(pipeline.stats())

    text = run_once(benchmark, cold_then_warm)
    results_writer("pipeline_reuse", text)

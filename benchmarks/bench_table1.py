"""Table 1 — benchmark scene characteristics.

Regenerates the paper's workload-characterisation table for the seven
synthetic scenes at the experiment scale: screen size, pixels rendered,
depth complexity, triangle/texture counts, texture footprint and the
unique texel-to-fragment ratio.  Paper values for the original frames
are tabulated in EXPERIMENTS.md next to these.
"""

from benchmarks.conftest import run_once
from repro.analysis import experiments


def bench_table1_scene_characteristics(benchmark, scale, results_writer):
    text = run_once(benchmark, lambda: experiments.table1(scale))
    results_writer("table1", text)

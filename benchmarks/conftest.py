"""Benchmark-harness plumbing.

Each benchmark regenerates one table or figure of the paper at the
experiment scale (``REPRO_SCALE`` env var, default 0.25 of the paper's
frame size), prints it, and archives it under ``results/`` so
EXPERIMENTS.md can reference measured output.

Benchmarks are full experiments, not micro-kernels, so every one runs
exactly once (``rounds=1``): pytest-benchmark records the wall time of
the whole experiment.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads.scenes import experiment_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Paper sweep vocabulary.
BLOCK_WIDTHS = (4, 8, 16, 32, 64, 128)
SLI_LINES = (1, 2, 4, 8, 16, 32)
PROCESSOR_COUNTS = (4, 16, 64)
ALL_PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32, 64)
BUFFER_SIZES = (1, 5, 10, 20, 50, 100, 500, 10000)


@pytest.fixture(scope="session")
def scale() -> float:
    return experiment_scale()


@pytest.fixture(scope="session")
def balance_scale() -> float:
    """Scale for the cache-free load-balance study (Figure 5).

    Imbalance depends on blocks-per-processor, so it distorts on small
    screens; since the perfect-cache analysis skips the expensive cache
    replay, it can afford at least half the paper's frame size.
    """
    return max(experiment_scale(), 0.5)


@pytest.fixture(scope="session")
def results_writer():
    """Returns save(name, text): print + archive one experiment's output."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def save(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return save


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)

#!/usr/bin/env python
"""Design-space exploration: pick a tile shape for a scalable chip.

The paper's central engineering question: a commodity 3D chip must
hard-code its distribution scheme and tile size before manufacture.
This example sweeps both families over several machine sizes on a
virtual-reality workload and prints, for each processor count, the
best square-block width and the best SLI group height — demonstrating
result (ii): the best block width is stable (~16) while the best SLI
height depends on the machine size, so only square blocks suit a
fixed-function scalable part.

Run:  python examples/design_space.py [scale]
"""

import sys

from repro import build_scene
from repro.analysis import SpeedupStudy, format_table

BLOCK_WIDTHS = (4, 8, 16, 32, 64, 128)
SLI_LINES = (1, 2, 4, 8, 16, 32)
PROCESSORS = (4, 16, 64)
SCENE = "massive32_1255"


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    scene = build_scene(SCENE, scale=scale)
    study = SpeedupStudy(scene, cache="lru", bus_ratio=1.0)

    rows = []
    for count in PROCESSORS:
        block_size, block_speedup = study.best_size("block", BLOCK_WIDTHS, count)
        sli_size, sli_speedup = study.best_size("sli", SLI_LINES, count)
        rows.append(
            [
                count,
                f"w={block_size}",
                round(block_speedup, 2),
                f"l={sli_size}",
                round(sli_speedup, 2),
                "block" if block_speedup >= sli_speedup else "sli",
            ]
        )

    print(f"Best tile size per machine size — {SCENE} at scale {scale}\n")
    print(
        format_table(
            ["processors", "best block", "speedup", "best SLI", "speedup", "winner"],
            rows,
        )
    )
    print(
        "\nA fixed-function chip must freeze one size for every machine it"
        "\nwill ever be soldered into; the best block width barely moves,"
        "\nwhile the best SLI height collapses as the machine grows."
    )


if __name__ == "__main__":
    main()

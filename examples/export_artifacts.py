#!/usr/bin/env python
"""Export visual and tabular artifacts: images, CSV, ASCII.

Produces, under ``artifacts/``:

* ``owners_block16.ppm`` / ``owners_sli4.ppm`` — colour maps of which
  processor owns each pixel under the two distributions (Figure 1 of
  the paper, as actual images);
* ``overdraw_<scene>.ppm`` — per-pixel depth-complexity heat maps (the
  clustered overdraw that drives the load-balance results);
* ``sweep.csv`` — a block-width x processor-count speedup sweep in
  long format, ready for a spreadsheet or pandas.

Run:  python examples/export_artifacts.py [scale]
"""

import sys
from pathlib import Path

from repro import BlockInterleaved, ScanLineInterleaved, build_scene
from repro.analysis import SpeedupStudy, save_overdraw, save_owner_map, sweep_to_csv

OUT = Path("artifacts")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.125
    OUT.mkdir(exist_ok=True)

    scene = build_scene("massive32_1255", scale=scale)
    width, height = scene.width, scene.height

    save_owner_map(BlockInterleaved(16, 16), width, height, OUT / "owners_block16.ppm")
    save_owner_map(ScanLineInterleaved(16, 4), width, height, OUT / "owners_sli4.ppm")
    print(f"wrote {OUT}/owners_block16.ppm and {OUT}/owners_sli4.ppm "
          f"({width}x{height})")

    for name in ("massive32_1255", "room3"):
        heat_scene = build_scene(name, scale=scale)
        path = OUT / f"overdraw_{name}.ppm"
        save_overdraw(heat_scene, path)
        print(f"wrote {path} (depth complexity "
              f"{heat_scene.statistics().depth_complexity:.2f})")

    study = SpeedupStudy(scene, cache="lru", bus_ratio=1.0)
    sweep = study.sweep("block", [8, 16, 32, 64], [4, 16])
    csv_path = OUT / "sweep.csv"
    sweep_to_csv(sweep, row_label="width", value_label="speedup", path=csv_path)
    print(f"wrote {csv_path} ({len(sweep)} rows)")


if __name__ == "__main__":
    main()

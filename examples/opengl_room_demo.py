#!/usr/bin/env python
"""Full OpenGL-style pipeline demo: a 3D textured room, end to end.

Authors a small virtual-reality room in *world space* (floor, walls,
ceiling and a few pillars, all textured), runs the geometry stage
(view/projection transform, near-plane clipping, backface culling),
captures the resulting screen-space trace, and simulates it on the
parallel texture-mapping machine — the whole path a frame travels in
the paper's system, plus a terminal heatmap of where the overdraw is.

Run:  python examples/opengl_room_demo.py
"""

from repro import (
    BlockInterleaved,
    Camera,
    MachineConfig,
    MipmappedTexture,
    Scene,
    project_triangles,
    simulate_machine,
    single_processor_baseline,
    textured_quad_3d,
)
from repro.analysis import ascii_heatmap, depth_complexity_map, node_load_bars

WIDTH, HEIGHT = 320, 240


def build_room():
    """World geometry: a 20x8x20 room with four textured pillars."""
    world = []
    # Floor (texture 0) and ceiling (texture 1).
    world += textured_quad_3d((-10, 0, -10), (20, 0, 0), (0, 0, 20), texture=0, texel_scale=6)
    world += textured_quad_3d((-10, 8, -10), (0, 0, 20), (20, 0, 0), texture=1, texel_scale=6)
    # Walls (texture 2).
    world += textured_quad_3d((-10, 0, -10), (20, 0, 0), (0, 8, 0), texture=2, texel_scale=8)
    world += textured_quad_3d((10, 0, -10), (0, 0, 20), (0, 8, 0), texture=2, texel_scale=8)
    world += textured_quad_3d((-10, 0, 10), (0, 0, -20), (0, 8, 0), texture=2, texel_scale=8)
    # Pillars (texture 3), one quad facing the camera each.
    for px, pz in ((-5, -3), (5, -3), (-5, 3), (5, 3)):
        world += textured_quad_3d(
            (px - 0.7, 0, pz), (1.4, 0, 0), (0, 6, 0), texture=3, texel_scale=20
        )
    return world


def main() -> None:
    camera = Camera(
        eye=(0, 4, 14),
        target=(0, 3, 0),
        fov_y_degrees=70,
        viewport_width=WIDTH,
        viewport_height=HEIGHT,
    )
    screen_triangles = project_triangles(build_room(), camera, cull_backfaces=False)
    textures = [MipmappedTexture(128, 128) for _ in range(4)]
    scene = Scene("room_demo", WIDTH, HEIGHT, textures, screen_triangles)
    stats = scene.statistics()
    print(
        f"geometry stage emitted {scene.num_triangles} screen triangles; "
        f"{stats.pixels_rendered:,} pixels drawn "
        f"(depth complexity {stats.depth_complexity:.2f})\n"
    )

    print("overdraw heatmap (brighter = more layers):")
    print(ascii_heatmap(depth_complexity_map(scene, columns=64, rows=16)))

    config = MachineConfig(distribution=BlockInterleaved(8, width=16), cache="lru")
    baseline = single_processor_baseline(scene, config)
    result = simulate_machine(scene, config, baseline_cycles=baseline)
    print(f"\n8-processor machine, block-16 tiles: speedup {result.speedup:.2f}x, "
          f"{result.texel_to_fragment:.2f} texels/fragment\n")
    print(node_load_bars(result, width=40))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: simulate one frame on a 16-processor machine.

Builds a small version of the paper's ``truc640`` benchmark scene,
runs it on a 16-node sort-middle machine with square 16-pixel blocks,
private 16 KB texture caches and a 1 texel/pixel bus, and prints the
frame time, speedup and texture-bandwidth figures.

Run:  python examples/quickstart.py
"""

from repro import (
    BlockInterleaved,
    MachineConfig,
    build_scene,
    simulate_machine,
    single_processor_baseline,
)


def main() -> None:
    # A quarter-scale frame keeps the run at a few seconds.
    scene = build_scene("truc640", scale=0.25)
    stats = scene.statistics()
    print(f"scene: {stats.name}  {stats.screen_width}x{stats.screen_height}")
    print(f"  {stats.pixels_rendered:,} pixels drawn  "
          f"(depth complexity {stats.depth_complexity:.2f})")
    print(f"  {stats.num_triangles:,} triangles, {stats.num_textures} textures, "
          f"{stats.texture_megabytes:.2f} MB allocated")

    config = MachineConfig(
        distribution=BlockInterleaved(16, width=16),
        cache="lru",      # 16 KB, 4-way, 64-byte lines
        bus_ratio=1.0,    # 1 texel per pixel-cycle of sustained bandwidth
    )
    baseline = single_processor_baseline(scene, config)
    result = simulate_machine(scene, config, baseline_cycles=baseline)

    print(f"\nmachine: {result.num_processors} processors, "
          f"{result.distribution}, cache={result.cache_name}, "
          f"bus={result.bus_ratio:g} texel/pixel")
    print(f"  single-processor frame time: {baseline:,.0f} cycles")
    print(f"  parallel frame time:         {result.cycles:,.0f} cycles")
    print(f"  speedup:                     {result.speedup:.2f}x "
          f"({result.efficiency:.0%} efficiency)")
    print(f"  work imbalance:              {result.work_imbalance_percent():.1f}%")
    print(f"  texture traffic:             "
          f"{result.texel_to_fragment:.3f} texels/fragment "
          f"(8.0 would mean no cache at all)")

    critical = result.timings.critical_node
    print(f"  critical node:               #{critical} "
          f"(busy {result.timings.busy[critical]:,.0f}, "
          f"stalled {result.timings.stall[critical]:,.0f} cycles)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Render an actual image: the full engine from world space to pixels.

Uses every substrate at once — 3D geometry processing, rasterisation,
Z-buffered hidden-surface removal and real trilinear texture filtering
over procedural textures — and writes the frame as ``frame.ppm``, plus
a second viewpoint to show the camera moving through the scene.

Run:  python examples/render_frame.py [out_dir]
"""

import sys
from pathlib import Path

from repro import Camera, MipmappedTexture, Scene, project_triangles
from repro.analysis.ppm import write_ppm
from repro.render import CheckerTexture, GradientTexture, NoiseTexture, render_scene

from opengl_room_demo import build_room  # same world geometry

WIDTH, HEIGHT = 480, 320

PALETTE = [
    CheckerTexture((0.85, 0.8, 0.7), (0.35, 0.3, 0.25), checks=16),  # floor
    NoiseTexture((0.5, 0.55, 0.65), seed=7),                          # ceiling
    NoiseTexture((0.6, 0.5, 0.4), seed=2),                            # walls
    GradientTexture(),                                                # pillars
]


def render_view(eye, target, path: Path) -> None:
    camera = Camera(
        eye=eye,
        target=target,
        fov_y_degrees=70,
        viewport_width=WIDTH,
        viewport_height=HEIGHT,
    )
    screen = project_triangles(build_room(), camera, cull_backfaces=False)
    textures = [MipmappedTexture(128, 128) for _ in range(4)]
    scene = Scene("room_frame", WIDTH, HEIGHT, textures, screen)
    image = render_scene(scene, PALETTE)
    write_ppm(path, image)
    stats = scene.statistics()
    print(
        f"{path}: {scene.num_triangles} triangles, "
        f"{stats.pixels_rendered:,} fragments, depth {stats.depth_complexity:.2f}"
    )


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("artifacts")
    out.mkdir(exist_ok=True)
    render_view((0, 4, 14), (0, 3, 0), out / "frame.ppm")
    render_view((6, 5, 10), (-2, 2, -4), out / "frame_moved.ppm")
    print("open the .ppm files with any image viewer (or convert to PNG).")


if __name__ == "__main__":
    main()

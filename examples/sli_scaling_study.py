#!/usr/bin/env python
"""SLI scaling study: why scan-line interleaving fails to scale.

Walks one scene through machine sizes 2..64 with both distributions at
their best fixed tile size, separating the two opposing forces the
paper studies — load imbalance (wants small tiles) and texture-cache
locality (wants big tiles) — and showing where SLI falls behind.

Run:  python examples/sli_scaling_study.py [scale]
"""

import sys

from repro import BlockInterleaved, ScanLineInterleaved, build_scene
from repro.analysis import (
    SpeedupStudy,
    format_table,
    imbalance_percent,
    texel_to_fragment_ratio,
)

SCENE = "massive32_1255"
PROCESSORS = (2, 4, 8, 16, 32, 64)
BLOCK_WIDTH = 16   # the paper's universally good square block
SLI_HEIGHT = 4     # the best fixed SLI height at 64P


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    scene = build_scene(SCENE, scale=scale)
    study = SpeedupStudy(scene, cache="lru", bus_ratio=1.0)

    rows = []
    for count in PROCESSORS:
        block = BlockInterleaved(count, BLOCK_WIDTH)
        sli = ScanLineInterleaved(count, SLI_HEIGHT)
        rows.append(
            [
                count,
                round(imbalance_percent(scene, block), 1),
                round(imbalance_percent(scene, sli), 1),
                round(texel_to_fragment_ratio(scene, block), 2),
                round(texel_to_fragment_ratio(scene, sli), 2),
                round(study.speedup(block), 2),
                round(study.speedup(sli), 2),
            ]
        )

    print(
        f"{SCENE} at scale {scale}: fixed block-{BLOCK_WIDTH} vs fixed "
        f"SLI-{SLI_HEIGHT}, 16 KB caches, 1x bus\n"
    )
    print(
        format_table(
            [
                "procs",
                "imbal% block",
                "imbal% sli",
                "t/f block",
                "t/f sli",
                "speedup block",
                "speedup sli",
            ],
            rows,
        )
    )
    print(
        "\nWith a frozen tile size, SLI's balance/locality compromise "
        "drifts as the machine grows; square blocks keep both in check."
    )


if __name__ == "__main__":
    main()

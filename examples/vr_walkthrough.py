#!/usr/bin/env python
"""VR walkthrough: size the triangle buffer for a 64-way machine.

A virtual-reality frame arrives as one strictly ordered triangle
stream; a busy node with a full FIFO stalls the whole distribution
(head-of-line blocking), so the buffer in front of each texture-mapping
engine decides how much of the machine's parallelism survives.  This
example reproduces the Section-8 methodology on the ``truc640`` frame:
sweep the FIFO depth, find the knee, and report the buffer a designer
should provision.

Run:  python examples/vr_walkthrough.py [scale]
"""

import sys

from repro import build_scene
from repro.analysis import buffer_sweep, format_table

SCENE = "truc640"
PROCESSORS = 64
WIDTH = 16
BUFFERS = (1, 2, 5, 10, 20, 50, 100, 500, 10000)


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    scene = build_scene(SCENE, scale=scale)
    print(
        f"{SCENE} at scale {scale}: {scene.num_triangles:,} triangles, "
        f"{PROCESSORS}-processor block-{WIDTH} machine, 16 KB caches, 2x bus\n"
    )

    sweep = buffer_sweep(
        scene,
        "block",
        sizes=[WIDTH],
        buffer_sizes=BUFFERS,
        num_processors=PROCESSORS,
        cache="lru",
        bus_ratio=2.0,
    )
    ideal = sweep[(WIDTH, BUFFERS[-1])]
    rows = [
        [entries, round(sweep[(WIDTH, entries)], 2),
         f"{sweep[(WIDTH, entries)] / ideal:.0%}"]
        for entries in BUFFERS
    ]
    print(format_table(["buffer entries", "speedup", "of ideal"], rows))

    knee = next(
        entries for entries in BUFFERS if sweep[(WIDTH, entries)] >= 0.95 * ideal
    )
    per_node = scene.num_triangles / PROCESSORS
    print(
        f"\n95% of the ideal speedup needs a ~{knee}-entry FIFO "
        f"(~{knee / per_node:.1f}x the mean per-node stream of "
        f"{per_node:.0f} triangles)."
    )
    print(
        "At the paper's full frame size the same analysis lands at the "
        "~500-entry buffer it recommends."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Perf-trajectory gate: measure a pinned workload set, emit BENCH_*.json.

This is the measurement backbone of ROADMAP item 5: a fixed set of
workloads — the three golden scenes plus pinned benchmark kernels
(event-driven timing, prefetch pipeline) — is run cold (the in-memory
artifact store is cleared between timed regions, and no disk tier is
attached) and summarised as machine-readable JSON:

* per-workload wall seconds and simulated cycles per wall second,
* pipeline hit rates (miss rate, texel-to-fragment) straight from the
  simulation results and the ``repro.obs`` registry,
* peak RSS of the whole run.

Simulated cycle counts are deterministic, so ``--check`` compares them
with *exact* equality (a free, wide golden gate) while wall times get a
tolerance budget — CI runners are noisy, so only a large regression
fails the gate.

Snapshots are numbered ``BENCH_<n>.json`` at the repo root; each PR
that changes the perf story appends the next number so the trajectory
stays readable from the file list alone.  The sentinels ``latest``
(highest committed number) and ``next`` (one past it, ``--out`` only)
resolve against that sequence.

Usage::

    # measure and append the next numbered snapshot, with speedups
    # relative to the previous one embedded
    PYTHONPATH=src python scripts/bench_gate.py --out next --baseline latest

    # CI: measure and compare against the newest committed snapshot
    PYTHONPATH=src python scripts/bench_gate.py --check latest \
        --tolerance 0.75 --out bench_now.json
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro import pipeline  # noqa: E402
from repro.analysis.batch import (  # noqa: E402
    distribution_from_spec,
    machine_config_from_spec,
)
from repro.core.machine import simulate_machine  # noqa: E402
from repro.core.prefetch import simulate_prefetch_pipeline  # noqa: E402
from repro.workloads.scenes import build_scene  # noqa: E402

#: Schema version of the emitted document.
SCHEMA = 1

#: Linear scene scale the gate runs at.  Large enough that the batch
#: core's throughput dominates fixed overheads, small enough for CI.
BENCH_SCALE = 0.25

#: The golden scenes, in the order tests/golden/ pins them.
BENCH_SCENES = ("truc640", "blowout775", "quake")

#: (family, size, processors) machine points per scene.
BENCH_MACHINES = (("block", 16, 1), ("block", 16, 4), ("sli", 2, 4))

#: The virtual-texturing pan-sequence point (paged path end to end).
VT_BENCH_SCENE = "vt-quake"
VT_BENCH_SCALE = 0.125


def committed_snapshots() -> "List[Tuple[int, Path]]":
    """The repo's numbered ``BENCH_<n>.json`` snapshots, sorted by n."""
    found = []
    for path in REPO_ROOT.glob("BENCH_*.json"):
        suffix = path.stem[len("BENCH_"):]
        if suffix.isdigit():
            found.append((int(suffix), path))
    return sorted(found)


def resolve_snapshot_arg(value: str) -> Path:
    """Resolve ``--check``/``--baseline``/``--out`` path arguments.

    ``latest`` names the highest-numbered committed ``BENCH_<n>.json``;
    ``next`` names the one after it (for ``--out``).  Anything else is
    taken as a literal path.
    """
    if value in ("latest", "next"):
        snapshots = committed_snapshots()
        if value == "latest":
            if not snapshots:
                raise SystemExit("bench_gate: no committed BENCH_<n>.json to resolve 'latest'")
            return snapshots[-1][1]
        number = snapshots[-1][0] + 1 if snapshots else 1
        return REPO_ROOT / f"BENCH_{number}.json"
    return Path(value)


def _cold_store() -> None:
    """Drop memoized pipeline artifacts so every timed run recomputes."""
    pipeline.store().clear()


def _timed(fn: Callable[[], Dict[str, object]]) -> Dict[str, object]:
    started = time.perf_counter()
    metrics = fn()
    metrics["wall_seconds"] = time.perf_counter() - started
    return metrics


def _scene_point(scene_name: str, family: str, size: int, processors: int) -> Dict:
    """Time one cold simulate_machine run (raster + routing + replay + timing)."""
    scene = build_scene(scene_name, scale=BENCH_SCALE)
    spec = {"family": family, "size": size, "processors": processors}
    distribution = distribution_from_spec(spec, scene.height)
    config = machine_config_from_spec(spec, distribution)
    _cold_store()

    def run() -> Dict[str, object]:
        result = simulate_machine(scene, config)
        return {
            "simulated_cycles": result.cycles,
            "fragments": result.cache.fragments,
            "line_accesses": result.cache.line_accesses,
            "miss_rate": result.cache.miss_rate,
            "texel_to_fragment": result.texel_to_fragment,
        }

    metrics = _timed(run)
    wall = float(metrics["wall_seconds"])
    metrics["cycles_per_second"] = float(metrics["simulated_cycles"]) / wall if wall else 0.0
    metrics["fragments_per_second"] = float(metrics["fragments"]) / wall if wall else 0.0
    return metrics


def _event_point() -> Dict:
    """The event-driven timing path on a finite-FIFO machine."""
    scene = build_scene("truc640", scale=0.125)
    spec = {"family": "block", "size": 16, "processors": 4}
    distribution = distribution_from_spec(spec, scene.height)
    config = machine_config_from_spec(spec, distribution)
    _cold_store()
    # Warm the routed-work prefix so the timed region is timing-only.
    simulate_machine(scene, config)

    def run() -> Dict[str, object]:
        result = simulate_machine(scene, config, timing_mode="event")
        return {"simulated_cycles": result.cycles}

    metrics = _timed(run)
    wall = float(metrics["wall_seconds"])
    metrics["cycles_per_second"] = float(metrics["simulated_cycles"]) / wall if wall else 0.0
    return metrics


def _prefetch_point() -> Dict:
    """The Igehy prefetch-pipeline validation kernel."""
    rng = np.random.default_rng(20000)
    misses = (rng.random(200_000) < 0.12).astype(np.int64)

    def run() -> Dict[str, object]:
        result = simulate_prefetch_pipeline(
            misses, fifo_depth=64, memory_latency=100.0, bus_ratio=1.0
        )
        return {"simulated_cycles": result.cycles, "fragments": result.fragments}

    metrics = _timed(run)
    wall = float(metrics["wall_seconds"])
    metrics["cycles_per_second"] = float(metrics["simulated_cycles"]) / wall if wall else 0.0
    return metrics


def _vt_point() -> Dict:
    """The virtual-texturing pan sequence: translate + observe + page.

    Scene construction stays outside the timed region (like the scene
    points); the timed region covers every frame's routed work through
    the page table plus the paging feedback loop itself.
    """
    from repro.workloads.vt import require_vt_spec, run_vt_sequence, vt_frames

    spec = require_vt_spec(VT_BENCH_SCENE)
    frames = vt_frames(spec, VT_BENCH_SCALE)
    _cold_store()

    def run() -> Dict[str, object]:
        result = run_vt_sequence(
            spec,
            {"family": "block", "size": 16, "processors": 4},
            scale=VT_BENCH_SCALE,
            scenes=frames,
        )
        final = result.final
        return {
            "simulated_cycles": result.total_cycles,
            "frames": len(result.frames),
            "miss_rate": final.miss_rate,
            "fault_rate": result.mean_fault_rate,
            "paged_in": result.total_paged_in,
        }

    metrics = _timed(run)
    wall = float(metrics["wall_seconds"])
    metrics["cycles_per_second"] = float(metrics["simulated_cycles"]) / wall if wall else 0.0
    return metrics


def measure(label: str) -> Dict:
    """Run every pinned workload; returns the snapshot document."""
    workloads: Dict[str, Dict] = {}
    total_started = time.perf_counter()
    for scene_name in BENCH_SCENES:
        for family, size, processors in BENCH_MACHINES:
            name = f"{scene_name}_{family}{size}_p{processors}"
            workloads[name] = _scene_point(scene_name, family, size, processors)
            print(f"  {name:<28} {workloads[name]['wall_seconds']:8.3f}s", flush=True)
    workloads["event_truc640_p4"] = _event_point()
    print(f"  {'event_truc640_p4':<28} {workloads['event_truc640_p4']['wall_seconds']:8.3f}s")
    workloads["prefetch_pipeline"] = _prefetch_point()
    print(f"  {'prefetch_pipeline':<28} {workloads['prefetch_pipeline']['wall_seconds']:8.3f}s")
    workloads["vt_quake_block16_p4"] = _vt_point()
    print(
        f"  {'vt_quake_block16_p4':<28} "
        f"{workloads['vt_quake_block16_p4']['wall_seconds']:8.3f}s"
    )
    total_wall = time.perf_counter() - total_started

    registry = obs.registry()
    cache_totals: Dict[str, Optional[float]] = {}
    for series in ("cache.fragments", "cache.line_accesses", "cache.misses"):
        metric = registry.get(series)
        cache_totals[series] = metric.value if metric is not None else None
    accesses = cache_totals["cache.line_accesses"]
    misses = cache_totals["cache.misses"]
    cache_totals["cache.hit_rate"] = (
        1.0 - misses / accesses if accesses and misses is not None else None
    )

    return {
        "schema": SCHEMA,
        "label": label,
        "scale": BENCH_SCALE,
        "workloads": workloads,
        "totals": {
            "wall_seconds": total_wall,
            "golden_scene_wall_seconds": sum(
                w["wall_seconds"]
                for name, w in workloads.items()
                if name
                not in ("event_truc640_p4", "prefetch_pipeline", "vt_quake_block16_p4")
            ),
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        },
        "obs": cache_totals,
        "env": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
    }


def compare(committed: Dict, fresh: Dict, tolerance: float) -> "Tuple[list, list]":
    """Gate the fresh snapshot against a committed one.

    Returns ``(problems, notes)``.  Problems (non-empty == fail):
    simulated cycle counts must match exactly; wall seconds may regress
    at most ``tolerance`` (fractional) per workload and in total.
    Notes are informational — a workload absent from the committed
    baseline is expected right after the pinned set grows, and becomes
    gated once the next snapshot is committed.
    """
    problems = []
    notes = []
    committed_work = committed.get("workloads", {})
    for name, have in fresh.get("workloads", {}).items():
        want = committed_work.get(name)
        if want is None:
            notes.append(f"{name}: new workload, not in committed baseline (ungated)")
            continue
        if want.get("simulated_cycles") != have.get("simulated_cycles"):
            problems.append(
                f"{name}: simulated_cycles {have.get('simulated_cycles')!r} != "
                f"committed {want.get('simulated_cycles')!r} (determinism drift)"
            )
        budget = want["wall_seconds"] * (1.0 + tolerance)
        if have["wall_seconds"] > budget:
            problems.append(
                f"{name}: wall {have['wall_seconds']:.3f}s exceeds budget "
                f"{budget:.3f}s ({want['wall_seconds']:.3f}s committed "
                f"+ {tolerance:.0%} tolerance)"
            )
    committed_total = committed.get("totals", {}).get("wall_seconds")
    fresh_total = fresh.get("totals", {}).get("wall_seconds")
    if committed_total and fresh_total:
        if fresh_total > committed_total * (1.0 + tolerance):
            problems.append(
                f"total wall {fresh_total:.3f}s exceeds committed "
                f"{committed_total:.3f}s + {tolerance:.0%}"
            )
    return problems, notes


def attach_baseline(document: Dict, baseline: Dict) -> None:
    """Embed a prior snapshot and the resulting speedup table."""
    speedups = {}
    for name, work in document["workloads"].items():
        base = baseline.get("workloads", {}).get(name)
        if base and work["wall_seconds"] > 0:
            speedups[name] = base["wall_seconds"] / work["wall_seconds"]
    base_total = baseline.get("totals", {}).get("golden_scene_wall_seconds")
    now_total = document["totals"].get("golden_scene_wall_seconds")
    document["baseline"] = {
        "label": baseline.get("label"),
        "workloads": {
            name: {"wall_seconds": w["wall_seconds"]}
            for name, w in baseline.get("workloads", {}).items()
        },
        "totals": baseline.get("totals", {}),
    }
    document["speedup"] = {
        "per_workload": speedups,
        "golden_scenes": (base_total / now_total) if base_total and now_total else None,
        "geomean": (
            math.exp(sum(math.log(s) for s in speedups.values()) / len(speedups))
            if speedups
            else None
        ),
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        help="write the snapshot JSON here ('next' = BENCH_<latest+1>.json)",
    )
    parser.add_argument(
        "--check",
        help="committed snapshot to gate against ('latest' = highest BENCH_<n>.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.75,
        help="fractional wall-time regression budget (default 0.75)",
    )
    parser.add_argument(
        "--baseline",
        help="prior snapshot to embed as the speedup baseline ('latest' accepted)",
    )
    parser.add_argument("--label", default="", help="free-form snapshot label")
    args = parser.parse_args(argv)
    out_path = resolve_snapshot_arg(args.out) if args.out else None
    check_path = resolve_snapshot_arg(args.check) if args.check else None
    baseline_path = resolve_snapshot_arg(args.baseline) if args.baseline else None

    print(f"bench_gate: measuring pinned workloads at scale {BENCH_SCALE}", flush=True)
    document = measure(args.label)
    total = document["totals"]
    print(
        f"bench_gate: total {total['wall_seconds']:.2f}s "
        f"(golden scenes {total['golden_scene_wall_seconds']:.2f}s), "
        f"peak RSS {total['peak_rss_kb']} kB"
    )

    if baseline_path:
        attach_baseline(document, json.loads(baseline_path.read_text()))
        speedup = document["speedup"]["golden_scenes"]
        if speedup is not None:
            print(f"bench_gate: golden-scene speedup vs baseline: {speedup:.2f}x")

    if out_path:
        out_path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"bench_gate: wrote {out_path}")

    if check_path:
        committed = json.loads(check_path.read_text())
        problems, notes = compare(committed, document, args.tolerance)
        for note in notes:
            print(f"bench_gate: note — {note}")
        if problems:
            print("bench_gate: FAIL")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"bench_gate: PASS (within {args.tolerance:.0%} of {check_path.name})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""CI smoke test for the multi-worker job-service cluster.

Boots a pure coordinator (``serve --no-local-workers``) plus three
``repro-experiments worker`` processes sharing one
``REPRO_ARTIFACT_DIR`` disk tier, then asserts the cluster story
end to end:

1. Three identical submissions coalesce into exactly one execution
   (cross-worker dedup through the shared content-addressed store).
2. SIGKILL-ing the worker that holds a lease mid-job lets the lease
   expire; the coordinator requeues the job and a surviving worker
   completes it (``lease_expiries`` and ``requeues`` both advance).
3. Resubmitting a finished payload is a cache hit — no worker runs.

    PYTHONPATH=src python scripts/cluster_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.service import ServiceClient  # noqa: E402

QUICK = {"scene": "truc640", "scale": 0.0625, "processors": 4, "size": 16}
SLOW = {"scene": "truc640", "scale": 0.5, "processors": 16, "size": 16}
WORKER_IDS = ("w1", "w2", "w3")
LEASE_TIMEOUT = 2.0


def _spawn(argv, env):
    return subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=ROOT,
    )


def _wait_for_lease(client, job_id, timeout=30.0):
    """Return the worker id currently holding ``job_id``'s lease."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for lease in client.leases()["leases"]:
            if lease["job_id"] == job_id:
                return lease["worker"]
        time.sleep(0.05)
    raise AssertionError(f"no worker leased job {job_id} within {timeout}s")


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    processes = []
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as shared:
        env["REPRO_ARTIFACT_DIR"] = shared
        coordinator = _spawn(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0",
                "--no-local-workers",
                "--lease-timeout", str(LEASE_TIMEOUT),
                "--max-queue-depth", "64",
            ],
            env,
        )
        processes.append(coordinator)
        try:
            banner = coordinator.stdout.readline().strip()
            assert banner.startswith("serving on http://"), f"bad banner: {banner!r}"
            url = banner.split("serving on ", 1)[1]
            client = ServiceClient(url)

            workers = {}
            for worker_id in WORKER_IDS:
                proc = _spawn(
                    [
                        sys.executable, "-m", "repro.cli", "worker",
                        "--url", url,
                        "--worker-id", worker_id,
                        "--poll", "0.1",
                    ],
                    env,
                )
                workers[worker_id] = proc
                processes.append(proc)

            health = client.healthz()
            assert not health["local_execution"], health

            # 1. Triplicate submission -> exactly one execution.
            submissions = [client.submit(QUICK) for _ in range(3)]
            done = client.wait(submissions[0]["id"], timeout=600)
            assert done["state"] == "done", done
            metrics = client.metrics()
            counters = metrics["counters"]
            assert counters["submitted"] == 3, counters
            assert counters["completed"] == 1, counters
            assert counters["deduped"] + counters["cache_hits"] == 2, counters
            assert metrics["result_store"]["misses"] == 1, metrics["result_store"]
            print("cluster smoke: dedup OK — 3 submissions, 1 execution")

            # 2. Kill the lease holder mid-job; the job must survive.
            slow = client.submit(SLOW)
            victim = _wait_for_lease(client, slow["id"])
            assert victim in workers, f"unknown lease holder {victim!r}"
            workers[victim].kill()
            workers[victim].wait(timeout=10)
            done = client.wait(slow["id"], timeout=600)
            assert done["state"] == "done", done
            assert done["requeues"] >= 1, done
            metrics = client.metrics()
            counters = metrics["counters"]
            assert counters["lease_expiries"] >= 1, counters
            assert counters["requeues"] >= 1, counters
            assert counters["completed"] == 2, counters
            survivors_leased = [
                worker
                for worker in WORKER_IDS
                if worker != victim
                and metrics["obs"]["counters"].get(f"service.leases{{worker={worker}}}", 0)
            ]
            assert survivors_leased, metrics["obs"]["counters"]
            print(
                f"cluster smoke: failover OK — killed {victim} mid-job, "
                f"job requeued and finished (requeues={done['requeues']})"
            )

            # 3. The finished result is served from the shared tier.
            again = client.submit(SLOW)
            assert again["state"] == "done" and again["cached"], again
            assert client.metrics()["counters"]["completed"] == 2

            text = client.result(done["result_key"])["text"]
            assert "truc640" in text, text
            print(f"cluster smoke: OK — {len(WORKER_IDS)} workers, {text.strip()}")
            return 0
        finally:
            for proc in processes:
                proc.terminate()
            for proc in processes:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())

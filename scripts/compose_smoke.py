#!/usr/bin/env python
"""In-cluster smoke client for the compose topology.

Runs inside the compose network against ``REPRO_SERVICE_URL`` (a pure
coordinator with remote workers attached) and asserts the cluster
behaviour the unit tests cannot: duplicate submissions coalesce into
one execution across worker containers, distinct jobs spread over the
fleet, and a resubmission after completion is a shared-tier cache hit.

    REPRO_SERVICE_URL=http://coordinator:8765 python scripts/compose_smoke.py
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import ServiceClient  # noqa: E402

PAYLOAD = {"scene": "truc640", "scale": 0.0625, "processors": 4, "size": 16}
DISTINCT = [
    {"scene": "truc640", "scale": 0.0625, "processors": p, "size": 16}
    for p in (2, 8, 16)
]


def _wait_healthy(client: ServiceClient, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            health = client.healthz()
            if health["status"] == "ok":
                return
            last = health
        except Exception as exc:  # noqa: BLE001 - startup races are expected
            last = exc
        time.sleep(0.5)
    raise AssertionError(f"coordinator never became healthy: {last}")


def main() -> int:
    url = os.environ.get("REPRO_SERVICE_URL", "http://coordinator:8765")
    client = ServiceClient(url)
    _wait_healthy(client)
    health = client.healthz()
    assert not health["local_execution"], health

    # Triplicate submission -> one execution, shared across workers.
    submissions = [client.submit(PAYLOAD) for _ in range(3)]
    done = client.wait(submissions[0]["id"], timeout=600)
    assert done["state"] == "done", done
    metrics = client.metrics()
    counters = metrics["counters"]
    assert counters["submitted"] == 3, counters
    assert counters["completed"] == 1, counters
    assert counters["deduped"] + counters["cache_hits"] == 2, counters
    assert metrics["result_store"]["misses"] == 1, metrics["result_store"]
    print("compose smoke: dedup OK — 3 submissions, 1 execution")

    # Distinct jobs all complete through the lease protocol.
    jobs = [client.submit(payload) for payload in DISTINCT]
    for job in jobs:
        record = client.wait(job["id"], timeout=600)
        assert record["state"] == "done", record
    metrics = client.metrics()
    assert metrics["counters"]["completed"] == 1 + len(DISTINCT), metrics["counters"]
    assert metrics["leases"]["workers_known"] >= 1, metrics["leases"]
    print(
        "compose smoke: fleet OK — "
        f"{metrics['leases']['workers_known']} worker(s) leased jobs"
    )

    # A resubmission after completion never reaches a worker again.
    again = client.submit(PAYLOAD)
    assert again["state"] == "done" and again["cached"], again
    assert client.metrics()["counters"]["completed"] == 1 + len(DISTINCT)

    text = client.result(done["result_key"])["text"]
    assert "truc640" in text, text
    print(f"compose smoke: OK — {text.strip()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

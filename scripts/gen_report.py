#!/usr/bin/env python
"""Assemble results/*.txt into one distributable REPORT.md.

Run after the benchmark harness:

    pytest benchmarks/ --benchmark-only
    python scripts/gen_report.py
"""

from __future__ import annotations

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"
OUT = ROOT / "REPORT.md"

#: (result file stem, section heading) in presentation order; stems not
#: listed fall into the trailing "Other results" section.
SECTIONS = [
    ("table1", "Table 1 — benchmark scene characteristics"),
    ("fig5_imbalance_block", "Figure 5 (top left) — imbalance, block"),
    ("fig5_imbalance_sli", "Figure 5 (top right) — imbalance, SLI"),
    ("fig5_speedup_block", "Figure 5 (bottom left) — perfect-cache speedup, block"),
    ("fig5_speedup_sli", "Figure 5 (bottom right) — perfect-cache speedup, SLI"),
    ("fig6_massive_block", "Figure 6 — locality, 32massive, block"),
    ("fig6_massive_sli", "Figure 6 — locality, 32massive, SLI"),
    ("fig6_teapot_block", "Figure 6 — locality, teapot, block"),
    ("fig6_teapot_sli", "Figure 6 — locality, teapot, SLI"),
    ("fig7_speedup_block", "Figure 7 — speedups, block, 1x bus"),
    ("fig7_speedup_sli", "Figure 7 — speedups, SLI, 1x bus"),
    ("fig7_ratio2_block", "Figure 7 companion — block, 2x bus"),
    ("fig7_ratio2_sli", "Figure 7 companion — SLI, 2x bus"),
    ("fig8_buffer_perfect", "Figure 8 — buffering, perfect cache"),
    ("fig8_buffer_lru", "Figure 8 — buffering, 16KB cache"),
    ("ablation_cache_size", "Ablation — cache size"),
    ("ablation_cache_associativity", "Ablation — associativity"),
    ("ablation_interleaving", "Ablation — interleaving vs contiguous bands"),
    ("ablation_interleave_pattern", "Ablation — grid vs Morton dealing"),
    ("ablation_texture_blocking", "Ablation — texture blocking shape"),
    ("ablation_texel_format", "Ablation — texel format"),
    ("ablation_submission_order", "Ablation — submission order"),
    ("ablation_routing", "Ablation — bbox vs oracle routing"),
    ("ablation_early_z", "Ablation — early-Z"),
    ("seed_sensitivity", "Robustness — generator seeds"),
    ("scale_stability", "Methodology — scale stability"),
    ("cad_contrast", "Methodology — Viewperf/CAD contrast"),
    ("future_dynamic", "Future work — dynamic load balancing"),
    ("future_l2_interframe", "Future work — inter-frame L2"),
    ("comparison_sort_last", "Comparison — sort-last"),
    ("validation_prefetch", "Validation — prefetch latency hiding"),
    ("validation_overlap", "Validation — overlap closed form"),
    ("extension_geometry_stage", "Extension — finite-rate geometry stage"),
]


def main() -> None:
    if not RESULTS.is_dir():
        raise SystemExit("results/ not found — run the benchmark harness first")
    available = {path.stem: path for path in RESULTS.glob("*.txt")}
    parts = [
        "# Reproduction report",
        "",
        "Raw output of every experiment, assembled from `results/`.",
        "Claim-by-claim comparison against the paper lives in EXPERIMENTS.md.",
        "",
    ]
    used = set()
    for stem, heading in SECTIONS:
        path = available.get(stem)
        if path is None:
            continue
        used.add(stem)
        parts += [f"## {heading}", "", "```", path.read_text().rstrip(), "```", ""]
    leftovers = sorted(set(available) - used)
    if leftovers:
        parts += ["## Other results", ""]
        for stem in leftovers:
            parts += [f"### {stem}", "", "```",
                      available[stem].read_text().rstrip(), "```", ""]
    OUT.write_text("\n".join(parts))
    print(f"wrote {OUT} ({len(used) + len(leftovers)} sections)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""CI gate: golden-value regression check plus a traced CLI run.

Two halves, both against the committed ``tests/golden/`` files:

1. **Golden diff** — recompute every golden point in-process (via
   ``tests.golden_common``, the same helper the pytest suite uses) and
   fail with a per-quantity report on any drift.
2. **Traced CLI run** — run one of those points through the real
   ``repro-experiments run`` verb with ``--trace-out``/``--metrics-out``,
   then validate the Chrome trace schema (every event carries
   ``ph``/``ts``/``pid``/``tid``), check the metrics dump quotes the
   obs registry, and cross-check the summary line's cycle count against
   the golden file — proving the observability path and the plain path
   tell the same story.

    PYTHONPATH=src python scripts/golden_check.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT))
sys.path.insert(0, str(ROOT / "src"))

from tests.golden_common import (  # noqa: E402
    ALL_POINTS,
    GOLDEN_SCALE,
    VT_POINTS,
    check_all,
    golden_path,
    load_golden,
)

#: The golden point the traced CLI run exercises (block16 x 4 on truc640).
CLI_POINT = ("truc640", "block", 16, 4)


def check_goldens() -> int:
    problems = check_all()
    if problems:
        print("golden check: FAILED")
        for problem in problems:
            print(f"  - {problem}")
        print(
            "  (intentional change? re-baseline with "
            "REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_golden.py)"
        )
        return 1
    total = len(ALL_POINTS) + len(VT_POINTS)
    print(f"golden check: OK — {total} points match exactly")
    return 0


def check_traced_cli_run() -> int:
    scene, family, size, processors = CLI_POINT
    golden = load_golden(golden_path(scene, family, size, processors))
    with tempfile.TemporaryDirectory(prefix="repro-golden-") as temp:
        trace_path = Path(temp) / "trace.json"
        metrics_path = Path(temp) / "metrics.json"
        command = [
            sys.executable, "-m", "repro.cli", "run",
            "--scene", scene, "--family", family,
            "--size", str(size), "--processors", str(processors),
            "--scale", str(GOLDEN_SCALE),
            # A small FIFO forces the event-driven timing path, which is
            # what samples occupancy (counter events) into the trace; on
            # this point it never blocks, so cycles still match the
            # golden file's fast-path number.
            "--fifo", "8",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
        ]
        proc = subprocess.run(
            command, capture_output=True, text=True, cwd=ROOT,
            env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
        )
        if proc.returncode != 0:
            print(f"traced run: FAILED (exit {proc.returncode})")
            print(proc.stdout + proc.stderr)
            return 1

        match = re.search(r"cycles=(\d+)", proc.stdout)
        if not match:
            print(f"traced run: no cycles in output: {proc.stdout!r}")
            return 1
        cycles = int(match.group(1))
        want = round(golden["metrics"]["cycles"])
        if cycles != want:
            print(f"traced run: cycles={cycles}, golden says {want}")
            return 1

        trace = json.loads(trace_path.read_text())
        events = trace.get("traceEvents", [])
        if not events:
            print("traced run: empty traceEvents")
            return 1
        for event in events:
            missing = {"ph", "ts", "pid", "tid"} - set(event)
            if missing:
                print(f"traced run: event missing {missing}: {event}")
                return 1
            if event["ph"] == "X" and event.get("dur", -1) < 0:
                print(f"traced run: negative span duration: {event}")
                return 1
        phases = {event["ph"] for event in events}
        if not {"X", "C", "M"} <= phases:
            print(f"traced run: expected X/C/M events, got {sorted(phases)}")
            return 1

        dump = json.loads(metrics_path.read_text())
        for section in ("registry", "pipeline", "trace"):
            if section not in dump:
                print(f"traced run: metrics dump missing {section!r}")
                return 1
        counters = dump["registry"]["counters"]
        if counters.get("machine.simulations", 0) < 1:
            print(f"traced run: no simulations counted: {counters}")
            return 1
        nodes = dump["trace"]["nodes"]
        if len(nodes) != processors:
            print(f"traced run: expected {processors} node rows, got {sorted(nodes)}")
            return 1
        spans = len([e for e in events if e["ph"] == "X"])
        print(
            f"traced run: OK — cycles={cycles}, {spans} spans, "
            f"{len(nodes)} node rows, {len(events)} trace events"
        )
    return 0


def main() -> int:
    return check_goldens() or check_traced_cli_run()


if __name__ == "__main__":
    raise SystemExit(main())

"""CI gate for the project-wide lint pass (DESIGN.md §14).

Runs ``repro-lint src --project`` through the engine API, writes the
full JSON report to ``--out`` (uploaded as a CI artifact so findings
are inspectable without re-running), and enforces two budgets:

* **cleanliness** — unsuppressed findings fail the gate, same
  contract as the per-file pass;
* **time** — the whole project analysis (parse + symbol table + call
  graph + summaries + rules) must finish within ``--budget-seconds``
  (default 30).  The pass is ~1 s today; the guard exists so an
  accidentally quadratic rule or summary blow-up fails loudly in CI
  instead of silently eating the lint job.

Exit codes: 0 clean and in budget, 1 findings, 3 over time budget.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.lintkit.baseline import Baseline
from repro.lintkit.cli import DEFAULT_BASELINE
from repro.lintkit.engine import run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=None)
    parser.add_argument("--out", type=Path, default=Path("lint-project.json"))
    parser.add_argument("--budget-seconds", type=float, default=30.0)
    args = parser.parse_args(argv)
    paths = args.paths or ["src"]

    baseline = None
    baseline_path = Path(DEFAULT_BASELINE)
    if baseline_path.is_file():
        baseline = Baseline.load(baseline_path)

    started = time.monotonic()
    report = run(paths, baseline=baseline, project=True)
    elapsed = time.monotonic() - started

    payload = report.to_dict()
    payload["elapsed_seconds"] = round(elapsed, 3)
    payload["budget_seconds"] = args.budget_seconds
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    print(
        f"project lint: {len(report.findings)} finding(s), "
        f"{len(report.suppressed)} suppressed, "
        f"{report.files_checked} file(s), {elapsed:.2f}s "
        f"(budget {args.budget_seconds:.0f}s) -> {args.out}"
    )
    for finding in report.findings:
        print(finding.render(), file=sys.stderr)
    if elapsed > args.budget_seconds:
        print(
            f"FAIL: project analysis took {elapsed:.1f}s, over the "
            f"{args.budget_seconds:.0f}s budget",
            file=sys.stderr,
        )
        return 3
    return 1 if report.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env bash
# Reproduce the whole paper: tests, every table/figure, extensions.
#
# Usage:
#   scripts/reproduce.sh          # default scale (0.25 linear)
#   REPRO_SCALE=0.5 scripts/reproduce.sh
#   REPRO_WORKERS=8 scripts/reproduce.sh   # parallel Figure-7 panels
#
# Outputs land in results/ (one .txt per table/figure).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== test suite =="
python -m pytest tests/ -q

echo "== benchmark harness (all tables & figures) =="
python -m pytest benchmarks/ --benchmark-only -q

echo "== assemble REPORT.md and docs/API.md =="
python scripts/gen_report.py
python scripts/gen_api_docs.py

echo "== results =="
ls -l results/

#!/usr/bin/env python
"""CI smoke test for the auto-search pipeline over a worker cluster.

Boots a pure coordinator (``serve --no-local-workers``) plus two
``repro-experiments worker`` processes sharing one
``REPRO_ARTIFACT_DIR`` disk tier, then drives a tiny successive-halving
search (≤ 8 trials at a reduced ``REPRO_SCALE``) through
``POST /searches`` and asserts the experiment-framework story:

1. the search finishes ``done`` with every trial executed by the
   remote workers through the normal job queue;
2. the shared :class:`~repro.expfw.archive.RunArchive` contains the
   archived search report, the winning configuration's trial record,
   and a record for **every** trial the report lists;
3. replaying the winning record from a fresh process reproduces its
   metrics bit-identically.

    PYTHONPATH=src python scripts/search_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.expfw import RunArchive, replay_record  # noqa: E402
from repro.pipeline.store import ArtifactStore  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

SCALE = float(os.environ.get("REPRO_SCALE", "0.0625"))
MAX_TRIALS = 5  # per strategy wave cap; halving adds survivor rungs (≤ 8 total)
WORKER_IDS = ("w1", "w2")

SEARCH = {
    "experiment": "fig7",
    "budget": 1e12,
    "unit": "cycles",
    "strategy": "halving",
    "seed": 11,
    "max_trials": MAX_TRIALS,
    "rungs": 2,
    "wave": 4,
    "overrides": {"scale": SCALE},
}


def _spawn(argv, env):
    return subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=ROOT,
    )


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    processes = []
    with tempfile.TemporaryDirectory(prefix="repro-search-") as shared:
        env["REPRO_ARTIFACT_DIR"] = shared
        coordinator = _spawn(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0",
                "--no-local-workers",
                "--max-queue-depth", "64",
            ],
            env,
        )
        processes.append(coordinator)
        try:
            banner = coordinator.stdout.readline().strip()
            assert banner.startswith("serving on http://"), f"bad banner: {banner!r}"
            url = banner.split("serving on ", 1)[1]
            client = ServiceClient(url)

            for worker_id in WORKER_IDS:
                processes.append(
                    _spawn(
                        [
                            sys.executable, "-m", "repro.cli", "worker",
                            "--url", url,
                            "--worker-id", worker_id,
                            "--poll", "0.1",
                        ],
                        env,
                    )
                )

            record = client.start_search(SEARCH)
            assert record["state"] == "running", record
            done = client.wait_search(record["id"], timeout=600)
            assert done["state"] == "done", done
            assert 0 < done["trials"] <= 8, done
            print(
                f"search smoke: {done['trials']} trial(s) through "
                f"{len(WORKER_IDS)} workers — winner {done['winner']['point']}"
            )

            metrics = client.metrics()
            counters = metrics["counters"]
            assert counters["searches_completed"] == 1, counters
            assert counters["completed"] >= 1, counters  # workers ran trials
            assert counters["submitted"] >= done["trials"], counters

            # The shared archive holds the report, the winner, and
            # every trial record the report lists.
            archive = RunArchive(
                root=Path(shared) / "expfw-runs",
                store=ArtifactStore(max_entries=64),
            )
            report = archive.get(done["report_key"])
            assert report["winner"]["point"] == done["winner"]["point"], report
            winner_record = archive.get(report["winner"]["record_key"])
            assert winner_record["kind"] == "trial", winner_record
            for key in report["trials"]:
                trial = archive.get(key)
                assert trial["metrics"].get("cycles", 0) > 0, trial
            assert len(report["trials"]) == done["trials"], report
            print(
                f"search smoke: archive OK — report + winner + "
                f"{len(report['trials'])} trial record(s) in {shared}"
            )

            # Replay the winner from a fresh process, bit-identically.
            replayed = replay_record(winner_record)
            assert replayed.ok, replayed.summary()
            assert replayed.metrics == winner_record["metrics"]
            print(f"search smoke: OK — {replayed.summary()}")
            return 0
        finally:
            for proc in processes:
                proc.terminate()
            for proc in processes:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())

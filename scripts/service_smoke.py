#!/usr/bin/env python
"""CI smoke test for the experiment job service.

Boots ``repro-experiments serve`` on an ephemeral port in a child
process, submits a tiny-scale job through the Python client, polls it
to completion, resubmits the identical job, and asserts the service's
`/metrics` prove the dedup story: exactly one result-store miss (the
first computation) followed by one hit (the cached resubmission,
``cached: true`` and no second computation).  The same document's
``obs`` section must mirror that story (``service.*`` counters, the
``span.service.execute`` histogram) and carry the simulator-level
``cache.*``/``bus.*`` counters the execution published.

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.service import ServiceClient  # noqa: E402

PAYLOAD = {"scene": "truc640", "scale": 0.0625, "processors": 4, "size": 16}


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=ROOT,
    )
    try:
        banner = server.stdout.readline().strip()
        assert banner.startswith("serving on http://"), f"unexpected banner: {banner!r}"
        client = ServiceClient(banner.split("serving on ", 1)[1])

        health = client.healthz()
        assert health["status"] == "ok", health

        first = client.submit(PAYLOAD)
        assert not first["deduped"], first
        done = client.wait(first["id"], timeout=600)
        assert done["state"] == "done", done

        second = client.submit(PAYLOAD)
        assert second["state"] == "done" and second["cached"], second
        assert second["id"] != first["id"], second

        metrics = client.metrics()
        store = metrics["result_store"]
        assert store["misses"] == 1, f"expected exactly one store miss: {store}"
        assert store["hits"] == 1, f"expected exactly one store hit: {store}"
        assert metrics["jobs"]["done"] == 2, metrics["jobs"]
        assert metrics["counters"]["completed"] == 1, metrics["counters"]

        # The obs registry snapshot must carry the same story plus the
        # simulator-level counters the one real execution published.
        snapshot = metrics["obs"]
        counters = snapshot["counters"]
        assert counters["service.submitted"] == 2, counters
        assert counters["service.completed"] == 1, counters
        assert counters["service.cache_hits"] == 1, counters
        assert counters["machine.simulations"] >= 1, counters
        cache_keys = [k for k in counters if k.startswith("cache.")]
        assert cache_keys, f"no simulator cache counters in {sorted(counters)}"
        assert counters['cache.fragments{scene=truc640}'] > 0, counters
        assert counters['cache.texels_fetched{scene=truc640}'] > 0, counters
        bus_keys = [k for k in counters if k.startswith("bus.")]
        assert bus_keys, f"no bus counters in {sorted(counters)}"
        gauges = snapshot["gauges"]
        assert gauges["service.queue_depth"] == 0, gauges
        histograms = snapshot["histograms"]
        assert histograms["span.service.execute"]["count"] == 1, histograms
        stage_spans = [k for k in histograms if k.startswith("span.stage.")]
        assert stage_spans, f"no stage spans in {sorted(histograms)}"

        text = client.result(second["result_key"])["text"]
        assert "truc640" in text and "speedup" in text, text
        print(f"service smoke: OK — {text.strip()}")
        print(f"service smoke: metrics {store}")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    raise SystemExit(main())

"""repro — reproduction of "The Best Distribution for a Parallel OpenGL
3D Engine with Texture Caches" (Vartanian, Béchennec, Drach-Temam,
HPCA 2000).

A trace-driven, cycle-level simulator of a parallel sort-middle
texture-mapping engine built from commodity nodes with private 16 KB
texture caches, plus the synthetic virtual-reality workloads, analysis
drivers and benchmark harness that regenerate every table and figure of
the paper's evaluation.

Quick start::

    from repro import build_scene, BlockInterleaved, MachineConfig, simulate_machine

    scene = build_scene("truc640", scale=0.125)
    config = MachineConfig(distribution=BlockInterleaved(16, width=16))
    result = simulate_machine(scene, config)
    print(result.summary())
"""

from repro.cache import CacheConfig
from repro.core import (
    MachineConfig,
    MachineResult,
    simulate_machine,
    single_processor_baseline,
    speedup,
)
from repro.distribution import (
    BlockInterleaved,
    ContiguousBands,
    Distribution,
    ScanLineInterleaved,
    SingleProcessor,
)
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.geometry import (
    Camera,
    Scene,
    SceneStatistics,
    Triangle,
    Triangle3D,
    Vertex,
    Vertex3D,
    load_trace,
    project_triangles,
    save_trace,
    textured_quad_3d,
)
from repro.texture import MipmappedTexture
from repro.render import render_scene
from repro.workloads import (
    SCENE_NAMES,
    SCENE_SPECS,
    SceneSpec,
    build_all_scenes,
    build_scene,
    generate_scene,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # machine
    "MachineConfig",
    "MachineResult",
    "simulate_machine",
    "single_processor_baseline",
    "speedup",
    "CacheConfig",
    # distributions
    "Distribution",
    "BlockInterleaved",
    "ScanLineInterleaved",
    "ContiguousBands",
    "SingleProcessor",
    # geometry
    "Scene",
    "SceneStatistics",
    "Triangle",
    "Vertex",
    "load_trace",
    "save_trace",
    "MipmappedTexture",
    "Camera",
    "Vertex3D",
    "Triangle3D",
    "project_triangles",
    "textured_quad_3d",
    "render_scene",
    # workloads
    "SCENE_NAMES",
    "SCENE_SPECS",
    "SceneSpec",
    "build_scene",
    "build_all_scenes",
    "generate_scene",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "DeadlockError",
    "TraceFormatError",
]

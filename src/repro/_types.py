"""Shared typing aliases.

Kept tiny and dependency-light so any package can import it without
cycles.  ``Array`` deliberately erases dtype precision: the simulators
mix int64 index arrays, boolean masks and float cycle arrays, and the
interesting invariants (cycle integrality, determinism) are enforced by
``repro-lint``, not by the dtype parameter.
"""

from __future__ import annotations

from typing import Any

from numpy.typing import NDArray

#: A numpy array of any dtype (see module docstring).
Array = NDArray[Any]

__all__ = ["Array"]

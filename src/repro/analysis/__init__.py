"""Experiment drivers.

One module per figure/table of the paper, plus scene characterisation
(Table 1) and plain-text rendering helpers.  The benchmark harness in
``benchmarks/`` is a thin wrapper over these functions.
"""

from repro.analysis.characterize import characterize_scene
from repro.analysis.load_balance import (
    imbalance_percent,
    imbalance_sweep,
    work_distribution,
)
from repro.analysis.locality import locality_sweep, texel_to_fragment_ratio
from repro.analysis.performance import SpeedupStudy, speedup_sweep
from repro.analysis.buffering import buffer_sweep
from repro.analysis.tables import format_series, format_table
from repro.analysis.dynamic import compare_static_dynamic, dynamic_assignment_for, render_comparison
from repro.analysis.interframe import (
    replay_sequence,
    render_interframe_table,
    warm_frame_ratio,
)
from repro.analysis.heatmap import (
    ascii_heatmap,
    depth_complexity_map,
    node_load_bars,
    ownership_map,
)
from repro.analysis.export import results_to_csv, sweep_to_csv
from repro.analysis.overlap import (
    overlap_validation,
    predicted_overlap,
    scene_measured_overlap,
    scene_predicted_overlap,
)
from repro.analysis.parallel import keyed_tasks, run_tasks
from repro.analysis.batch import run_batch, run_batch_file
from repro.analysis.ppm import (
    overdraw_image,
    owner_map_image,
    read_ppm,
    save_overdraw,
    save_owner_map,
    write_ppm,
)

__all__ = [
    "characterize_scene",
    "work_distribution",
    "imbalance_percent",
    "imbalance_sweep",
    "texel_to_fragment_ratio",
    "locality_sweep",
    "SpeedupStudy",
    "speedup_sweep",
    "buffer_sweep",
    "format_table",
    "format_series",
    "compare_static_dynamic",
    "dynamic_assignment_for",
    "render_comparison",
    "replay_sequence",
    "warm_frame_ratio",
    "render_interframe_table",
    "ascii_heatmap",
    "depth_complexity_map",
    "node_load_bars",
    "ownership_map",
    "sweep_to_csv",
    "results_to_csv",
    "run_tasks",
    "keyed_tasks",
    "predicted_overlap",
    "scene_predicted_overlap",
    "scene_measured_overlap",
    "overlap_validation",
    "run_batch",
    "run_batch_file",
    "write_ppm",
    "read_ppm",
    "owner_map_image",
    "overdraw_image",
    "save_owner_map",
    "save_overdraw",
]

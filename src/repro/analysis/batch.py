"""Batch simulation campaigns from JSON descriptions.

Downstream users rarely want the paper's exact grids; this module runs
an arbitrary campaign described declaratively::

    {
      "scale": 0.25,
      "scenes": ["truc640", "quake"],
      "machines": [
        {"family": "block", "processors": 16, "size": 16},
        {"family": "sli", "processors": 16, "size": 4,
         "cache": "perfect", "bus_ratio": 2.0, "fifo": 100}
      ]
    }

Every machine entry accepts ``family`` (``block``/``sli``/``morton``/
``bands``/``single``), ``processors``, ``size``, plus the optional knobs
``cache`` (lru/perfect/none), ``cache_kb``, ``ways``, ``bus_ratio``,
``fifo``, ``geometry_engines`` and ``geometry_cycles``.  Results come
back as :class:`MachineResult` rows (speedups against each scene's
matching single-processor baseline) and can be exported with
:func:`repro.analysis.export.results_to_csv`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.analysis.export import results_to_csv
from repro.cache.config import CacheConfig
from repro.core.config import MachineConfig
from repro.core.machine import simulate_machine, single_processor_baseline
from repro.core.results import MachineResult
from repro.distribution.base import Distribution
from repro.distribution.block import BlockInterleaved
from repro.distribution.contiguous import ContiguousBands
from repro.distribution.morton import MortonInterleaved
from repro.distribution.single import SingleProcessor
from repro.distribution.sli import ScanLineInterleaved
from repro.errors import ConfigurationError
from repro.workloads.scenes import build_scene


def distribution_from_spec(spec: Dict, screen_height: int) -> Distribution:
    """Build a distribution from one machine entry."""
    family = spec.get("family", "block")
    processors = int(spec.get("processors", 1))
    size = int(spec.get("size", 16))
    if family == "block":
        return BlockInterleaved(processors, size)
    if family == "sli":
        return ScanLineInterleaved(processors, size)
    if family == "morton":
        return MortonInterleaved(processors, size)
    if family == "bands":
        return ContiguousBands(processors, screen_height)
    if family == "single":
        return SingleProcessor()
    raise ConfigurationError(f"unknown distribution family {family!r}")


def machine_config_from_spec(spec: Dict, distribution: Distribution) -> MachineConfig:
    """Build a MachineConfig from one machine entry."""
    cache_config = None
    if "cache_kb" in spec or "ways" in spec:
        cache_config = CacheConfig(
            total_bytes=int(spec.get("cache_kb", 16)) * 1024,
            ways=int(spec.get("ways", 4)),
        )
    return MachineConfig(
        distribution=distribution,
        cache=spec.get("cache", "lru"),
        cache_config=cache_config,
        bus_ratio=float(spec.get("bus_ratio", 1.0)),
        fifo_capacity=int(spec.get("fifo", 10000)),
        geometry_engines=int(spec.get("geometry_engines", 0)),
        geometry_cycles=float(spec.get("geometry_cycles", 100.0)),
    )


def run_batch(campaign: Dict) -> List[MachineResult]:
    """Execute a campaign dict; returns one result per (scene, machine)."""
    if "machines" not in campaign or not campaign["machines"]:
        raise ConfigurationError("a campaign needs at least one machine entry")
    scale = float(campaign.get("scale", 0.25))
    scene_names = campaign.get("scenes", ["truc640"])

    results: List[MachineResult] = []
    for name in scene_names:
        scene = build_scene(name, scale)
        baselines: Dict[tuple, float] = {}
        for spec in campaign["machines"]:
            distribution = distribution_from_spec(spec, scene.height)
            config = machine_config_from_spec(spec, distribution)
            baseline_key = (
                config.cache if isinstance(config.cache, str) else "custom",
                config.cache_config,
                config.bus_ratio,
            )
            if baseline_key not in baselines:
                baselines[baseline_key] = single_processor_baseline(scene, config)
            results.append(
                simulate_machine(
                    scene, config, baseline_cycles=baselines[baseline_key]
                )
            )
    return results


def run_batch_file(
    path: Union[str, Path], csv_out: Union[str, Path, None] = None
) -> List[MachineResult]:
    """Load a campaign JSON file, run it, optionally write CSV."""
    try:
        campaign = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: invalid JSON ({exc})") from exc
    results = run_batch(campaign)
    if csv_out is not None:
        results_to_csv(results, path=csv_out)
    return results

"""Triangle-buffer study (Figure 8).

Sweeps the FIFO depth in front of the texture-mapping engines.  For
each block width the expensive part — routing and cache replay — is
computed once and reused across every buffer size, since the FIFO only
affects timing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.analysis.load_balance import make_distribution
from repro.cache.config import CacheConfig
from repro.core.config import MachineConfig
from repro.core.machine import simulate_machine
from repro.core.routing import build_routed_work
from repro.distribution.single import SingleProcessor
from repro.geometry.scene import Scene


def buffer_sweep(
    scene: Scene,
    family: str,
    sizes: Iterable[int],
    buffer_sizes: Iterable[int],
    num_processors: int = 64,
    cache: Union[str, object] = "lru",
    cache_config: Optional[CacheConfig] = None,
    bus_ratio: float = 2.0,
) -> Dict[Tuple[int, int], float]:
    """Speedup for every (tile size, buffer entries) point of Figure 8.

    The paper's panel uses ``truc640``, 64 processors, the block
    distribution, and either a perfect cache or the 16 KB cache with a
    2 texels/pixel bus; all of those are parameters here.
    """
    baseline_config = MachineConfig(
        distribution=SingleProcessor(),
        cache=cache,
        cache_config=cache_config,
        bus_ratio=bus_ratio,
    )
    baseline = simulate_machine(scene, baseline_config).cycles

    results: Dict[Tuple[int, int], float] = {}
    for size in sizes:
        distribution = make_distribution(family, num_processors, size)
        routed = build_routed_work(
            scene, distribution, cache_spec=cache, cache_config=cache_config
        )
        for buffer_size in buffer_sizes:
            config = MachineConfig(
                distribution=distribution,
                cache=cache,
                cache_config=cache_config,
                bus_ratio=bus_ratio,
                fifo_capacity=buffer_size,
            )
            result = simulate_machine(scene, config, routed=routed)
            results[(size, buffer_size)] = (
                baseline / result.cycles if result.cycles else float(num_processors)
            )
    return results

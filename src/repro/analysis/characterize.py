"""Scene characterisation — regenerating Table 1.

Measures the statistics the paper tabulates for each benchmark scene:
pixels rendered (all drawn fragments; no Z-buffer is simulated), depth
complexity, triangle and texture counts, the texture-memory footprint
and the *unique* texel-to-fragment ratio (distinct texels touched per
fragment — the compulsory-miss floor of an ideal cache).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.scene import Scene, SceneStatistics
from repro.texture.filtering import TrilinearFilter

#: Fragments per chunk while scanning for unique texels.
_CHUNK = 1 << 18


def unique_texels_touched(scene: Scene) -> int:
    """Number of distinct texels any fragment of the scene samples."""
    fragments = scene.fragments()
    layout = scene.memory_layout()
    tex_filter = TrilinearFilter(layout)
    seen = np.zeros(layout.total_texels, dtype=bool)
    for start in range(0, len(fragments), _CHUNK):
        stop = min(len(fragments), start + _CHUNK)
        texels = tex_filter.texel_addresses(
            fragments.u[start:stop],
            fragments.v[start:stop],
            fragments.level[start:stop].astype(np.int64),
            fragments.texture[start:stop].astype(np.int64),
        )
        seen[texels.reshape(-1)] = True
    return int(seen.sum())


def characterize_scene(scene: Scene) -> SceneStatistics:
    """Measure the scene's Table-1 row."""
    fragments = scene.fragments()
    pixels = len(fragments)
    unique = unique_texels_touched(scene) if pixels else 0
    return SceneStatistics(
        name=scene.name,
        screen_width=scene.width,
        screen_height=scene.height,
        pixels_rendered=pixels,
        depth_complexity=pixels / scene.screen_pixels,
        num_triangles=scene.num_triangles,
        num_textures=len(scene.textures),
        texture_bytes=scene.texture_bytes(),
        unique_texel_to_fragment=(unique / pixels) if pixels else 0.0,
    )

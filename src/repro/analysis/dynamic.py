"""Dynamic load balancing study (the paper's future work, Section 9).

"Future performance studies should include impact of dynamic load
balancing on such a cache and evaluate the trade-offs between the cost
of its implementation in a PC 3D accelerator with the performance
gains."  This module runs that study: per-tile work is measured with
the identity tile grid, an idealised dynamic balancer (LPT greedy)
computes the assignment a runtime tile queue would converge to, and
the resulting machine is simulated with the ordinary pipeline — cache
effects included, which is the part the paper flags as unknown (a
dynamically assigned tile set is scattered, so locality may suffer
exactly like small static tiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Union

from repro.analysis.performance import SpeedupStudy
from repro.analysis.tables import format_table
from repro.core.config import DEFAULT_SETUP_CYCLES
from repro.core.routing import build_routed_work
from repro.distribution.assigned import AssignedTiles, TileGrid, lpt_assignment
from repro.distribution.block import BlockInterleaved
from repro.geometry.scene import Scene


@dataclass
class DynamicComparison:
    """Static-vs-dynamic outcome for one tile width."""

    width: int
    static_imbalance: float
    dynamic_imbalance: float
    static_speedup: float
    dynamic_speedup: float
    static_ratio: float
    dynamic_ratio: float


def dynamic_assignment_for(
    scene: Scene, width: int, num_processors: int, setup_cycles: int = DEFAULT_SETUP_CYCLES
) -> AssignedTiles:
    """The idealised dynamic (LPT) assignment of a scene's tiles."""
    grid = TileGrid(width, scene.width, scene.height)
    per_tile = build_routed_work(
        scene, grid, cache_spec="perfect", setup_cycles=setup_cycles
    )
    assignment = lpt_assignment(per_tile.node_work, num_processors)
    return AssignedTiles(grid, assignment, num_processors, label="dynamic")


def compare_static_dynamic(
    scene: Scene,
    widths: Iterable[int],
    num_processors: int,
    cache: Union[str, object] = "lru",
    bus_ratio: float = 1.0,
) -> List[DynamicComparison]:
    """Run both machines for every tile width."""
    study = SpeedupStudy(scene, cache=cache, bus_ratio=bus_ratio)
    rows: List[DynamicComparison] = []
    for width in widths:
        static = BlockInterleaved(num_processors, width)
        dynamic = dynamic_assignment_for(scene, width, num_processors)
        static_result = study.run(static)
        dynamic_result = study.run(dynamic)
        rows.append(
            DynamicComparison(
                width=width,
                static_imbalance=static_result.work_imbalance_percent(),
                dynamic_imbalance=dynamic_result.work_imbalance_percent(),
                static_speedup=static_result.speedup or 0.0,
                dynamic_speedup=dynamic_result.speedup or 0.0,
                static_ratio=static_result.texel_to_fragment,
                dynamic_ratio=dynamic_result.texel_to_fragment,
            )
        )
    return rows


def render_comparison(
    scene_name: str,
    rows: List[DynamicComparison],
    num_processors: int,
    scale: float,
) -> str:
    """Paper-style text table for the study."""
    table = format_table(
        [
            "width",
            "imbal% static",
            "imbal% dynamic",
            "speedup static",
            "speedup dynamic",
            "t/f static",
            "t/f dynamic",
        ],
        [
            [
                row.width,
                round(row.static_imbalance, 1),
                round(row.dynamic_imbalance, 1),
                round(row.static_speedup, 2),
                round(row.dynamic_speedup, 2),
                round(row.static_ratio, 3),
                round(row.dynamic_ratio, 3),
            ]
            for row in rows
        ],
    )
    return (
        f"Future work (Sec. 9): static interleave vs idealised dynamic (LPT) "
        f"tile assignment, {scene_name}, {num_processors} processors "
        f"(scale={scale})\n{table}"
    )

"""Canonical experiment definitions.

One function per table/figure of the paper, each returning the rendered
plain-text result.  The pytest-benchmark harness (``benchmarks/``) and
the ``repro-experiments`` CLI are both thin wrappers over this module,
so the grids and rendering exist in exactly one place.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.analysis.buffering import buffer_sweep
from repro.analysis.load_balance import imbalance_percent, imbalance_sweep
from repro.analysis.locality import locality_sweep, texel_to_fragment_ratio
from repro.analysis.performance import SpeedupStudy
from repro.analysis.tables import format_series, format_table
from repro.cache import CacheConfig
from repro.distribution import BlockInterleaved, ContiguousBands, ScanLineInterleaved, SingleProcessor
from repro.texture.layout import TextureMemoryLayout
from repro.workloads import SCENE_NAMES, build_scene

#: Paper sweep vocabulary.
BLOCK_WIDTHS = (4, 8, 16, 32, 64, 128)
SLI_LINES = (1, 2, 4, 8, 16, 32)
PROCESSOR_COUNTS = (4, 16, 64)
ALL_PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32, 64)
BUFFER_SIZES = (1, 5, 10, 20, 50, 100, 500, 10000)
FIG8_WIDTHS = (2, 4, 8, 16, 32, 64, 128)

_FAMILY_SIZES = {"block": BLOCK_WIDTHS, "sli": SLI_LINES}
_FAMILY_ROW_LABEL = {"block": "width", "sli": "lines"}


def _sizes(family: str) -> Tuple[int, ...]:
    return _FAMILY_SIZES[family]


def table1(scale: float) -> str:
    """Table 1: characteristics of the seven benchmark scenes."""
    rows = []
    for name in SCENE_NAMES:
        stats = build_scene(name, scale).statistics()
        rows.append(
            [
                stats.name,
                f"{stats.screen_width}x{stats.screen_height}",
                round(stats.pixels_rendered / 1e6, 3),
                round(stats.depth_complexity, 2),
                stats.num_triangles,
                stats.num_textures,
                round(stats.texture_megabytes, 2),
                round(stats.unique_texel_to_fragment * stats.pixels_rendered * 4 / 2**20, 2),
                round(stats.unique_texel_to_fragment, 3),
            ]
        )
    table = format_table(
        ["scene", "screen", "Mpixels", "depth", "triangles", "textures",
         "alloc MB", "used MB", "uniq t/f"],
        rows,
    )
    return f"Table 1 (scale={scale}): scene characteristics\n{table}"


def fig5_imbalance(family: str, scale: float, processors: int = 64) -> str:
    """Figure 5 (top): % work imbalance at 64 processors, perfect cache."""
    sizes = _sizes(family)
    rows = []
    for name in SCENE_NAMES:
        scene = build_scene(name, scale)
        sweep = imbalance_sweep(scene, family, sizes, processors)
        rows.append([name] + [round(sweep[size], 1) for size in sizes])
    prefix = "w" if family == "block" else "l"
    table = format_table(["scene"] + [f"{prefix}{s}" for s in sizes], rows)
    return (
        f"Figure 5 (top, {family}): % imbalance, {processors} processors "
        f"(scale={scale})\n{table}"
    )


def fig5_speedup(family: str, scale: float, scene_name: str = "massive32_1255") -> str:
    """Figure 5 (bottom): perfect-cache speedup vs processors."""
    study = SpeedupStudy(build_scene(scene_name, scale), cache="perfect")
    sweep = study.sweep(family, _sizes(family), ALL_PROCESSOR_COUNTS)
    rounded = {key: round(value, 2) for key, value in sweep.items()}
    return format_series(
        f"Figure 5 (bottom, {family}): perfect-cache speedup, {scene_name} "
        f"(scale={scale})",
        rounded,
        row_label=_FAMILY_ROW_LABEL[family],
    )


def fig6(scene_name: str, family: str, scale: float) -> str:
    """Figure 6: texel-to-fragment ratio, 16 KB caches, infinite bus."""
    scene = build_scene(scene_name, scale)
    sweep = locality_sweep(scene, family, _sizes(family), ALL_PROCESSOR_COUNTS)
    rounded = {key: round(value, 3) for key, value in sweep.items()}
    return format_series(
        f"Figure 6: texel/fragment, {scene_name}, {family} (scale={scale})",
        rounded,
        row_label=_FAMILY_ROW_LABEL[family],
    )


def fig7_panel(
    scene_name: str, family: str, scale: float, bus_ratio: float = 1.0
) -> Dict[Tuple[int, int], float]:
    """One scene's Figure-7 sweep: {(size, processors): speedup}."""
    study = SpeedupStudy(build_scene(scene_name, scale), cache="lru", bus_ratio=bus_ratio)
    sweep = study.sweep(family, _sizes(family), PROCESSOR_COUNTS)
    return {key: round(value, 2) for key, value in sweep.items()}


def fig7(
    family: str,
    scale: float,
    bus_ratio: float = 1.0,
    scenes: Iterable[str] = SCENE_NAMES,
    workers: Optional[int] = None,
) -> str:
    """Figure 7: speedups, 16 KB cache, bandwidth-limited bus.

    Scene panels are independent, so they fan out over ``workers``
    processes (default: the ``REPRO_WORKERS`` environment variable).
    """
    from repro.analysis.parallel import keyed_tasks, worker_count

    scenes = list(scenes)
    if workers is None:
        workers = worker_count()
    panels = keyed_tasks(
        fig7_panel,
        [(name, (name, family, scale, bus_ratio)) for name in scenes],
        workers=workers,
    )
    blocks = [
        format_series(
            name,
            panels[name],
            row_label=_FAMILY_ROW_LABEL[family],
        )
        for name in scenes
    ]
    header = (
        f"Figure 7 ({family}): speedup, 16KB cache, bus {bus_ratio:g} "
        f"texel/pixel (scale={scale})"
    )
    return header + "\n\n" + "\n\n".join(blocks)


def fig8(cache: str, scale: float, bus_ratio: float = 2.0) -> str:
    """Figure 8: speedup vs block width and triangle-buffer size."""
    scene = build_scene("truc640", scale)
    sweep = buffer_sweep(
        scene,
        "block",
        sizes=FIG8_WIDTHS,
        buffer_sizes=BUFFER_SIZES,
        num_processors=64,
        cache=cache,
        bus_ratio=bus_ratio,
    )
    rounded = {key: round(value, 2) for key, value in sweep.items()}
    label = "perfect cache" if cache == "perfect" else f"16KB cache + {bus_ratio:g}x bus"
    return format_series(
        f"Figure 8: speedup, truc640, 64P block, {label} (scale={scale})",
        rounded,
        row_label="width",
        column_label="buffer",
    )


def ablation_cache_size(scale: float, sizes_kb=(4, 8, 16, 32, 64)) -> str:
    scene = build_scene("massive32_1255", scale)
    dist = BlockInterleaved(16, 16)
    rows = [
        [f"{kb}KB", round(texel_to_fragment_ratio(scene, dist, CacheConfig(total_bytes=kb * 1024)), 3)]
        for kb in sizes_kb
    ]
    return (
        f"Ablation: texel/fragment vs cache size, massive32_1255, block16x16 "
        f"(scale={scale})\n" + format_table(["cache", "texel/frag"], rows)
    )


def ablation_cache_associativity(scale: float, ways=(1, 2, 4, 8)) -> str:
    scene = build_scene("massive32_1255", scale)
    dist = BlockInterleaved(16, 16)
    rows = [
        [f"{w}-way", round(texel_to_fragment_ratio(scene, dist, CacheConfig(ways=w)), 3)]
        for w in ways
    ]
    return (
        f"Ablation: texel/fragment vs associativity (16KB), massive32_1255, "
        f"block16x16 (scale={scale})\n"
        + format_table(["organisation", "texel/frag"], rows)
    )


def ablation_interleaving(scale: float, processors: int = 16) -> str:
    rows = []
    for name in SCENE_NAMES:
        scene = build_scene(name, scale)
        interleaved = BlockInterleaved(processors, 16)
        bands = ContiguousBands(processors, scene.height)
        study = SpeedupStudy(scene, cache="perfect")
        rows.append(
            [
                name,
                round(imbalance_percent(scene, interleaved), 1),
                round(imbalance_percent(scene, bands), 1),
                round(study.speedup(interleaved), 2),
                round(study.speedup(bands), 2),
            ]
        )
    return (
        f"Ablation: interleaved block16 vs contiguous bands, {processors} "
        f"processors, perfect cache (scale={scale})\n"
        + format_table(
            ["scene", "imbal% interleaved", "imbal% bands",
             "speedup interleaved", "speedup bands"],
            rows,
        )
    )


def ablation_texture_blocking(scale: float) -> str:
    scene = build_scene("massive32_1255", scale)
    blocked = TextureMemoryLayout(scene.textures, block_shape=(4, 4))
    linear = TextureMemoryLayout(scene.textures, block_shape=(16, 1))
    rows = []
    for dist in (
        SingleProcessor(),
        BlockInterleaved(16, 16),
        ScanLineInterleaved(16, 2),
        ScanLineInterleaved(16, 1),
    ):
        rows.append(
            [
                dist.describe(),
                round(texel_to_fragment_ratio(scene, dist, layout=blocked), 3),
                round(texel_to_fragment_ratio(scene, dist, layout=linear), 3),
            ]
        )
    return (
        f"Ablation: texel/fragment with 4x4 blocking vs 16x1 raster lines, "
        f"massive32_1255 (scale={scale})\n"
        + format_table(["distribution", "blocked 4x4", "raster 16x1"], rows)
    )


def ablation_submission_order(scale: float, num_processors: int = 64) -> str:
    """How triangle submission order interacts with the triangle buffer.

    One might expect a clustered (BSP-walk-like) stream to need much
    deeper buffers than a raster or random re-emission of the same
    workload.  Measured finding: with an *interleaved* distribution the
    orders are nearly indistinguishable — fine interleaving spatially
    de-clusters any stream (every burst still touches every node), so
    the Figure-8 buffer requirement is a property of the machine, not
    of scene traversal order.  A negative result, and a reassuring one
    for the synthetic traces.
    """
    from dataclasses import replace as dataclass_replace

    from repro.workloads import SCENE_SPECS
    from repro.workloads.generator import generate_scene

    buffers = (1, 5, 20, 10000)
    rows = []
    for order in ("clustered", "raster", "random"):
        spec = dataclass_replace(SCENE_SPECS["truc640"], emit_order=order)
        scene = generate_scene(spec, scale=scale)
        sweep = buffer_sweep(
            scene,
            "block",
            sizes=[16],
            buffer_sizes=buffers,
            num_processors=num_processors,
            cache="perfect",
        )
        ideal = sweep[(16, buffers[-1])]
        rows.append(
            [order]
            + [round(sweep[(16, b)], 2) for b in buffers]
            + [f"{sweep[(16, buffers[0])] / ideal:.0%}"]
        )
    table = format_table(
        ["submission order"] + [f"buf{b}" for b in buffers] + ["buf1 retains"],
        rows,
    )
    return (
        f"Ablation: submission order vs triangle-buffer need, truc640, "
        f"{num_processors}P block16, perfect cache (scale={scale})\n{table}"
    )


def ablation_routing(scale: float, num_processors: int = 64) -> str:
    """Bounding-box routing vs oracle exact-coverage routing.

    Quantifies the grazed-tile setup slots a real distributor pays:
    the gap widens as tiles shrink below the triangle size.
    """
    from repro.core.config import MachineConfig
    from repro.core.machine import simulate_machine
    from repro.core.routing import build_routed_work

    scene = build_scene("room3", scale)
    rows = []
    for width in (4, 8, 16, 32):
        dist = BlockInterleaved(num_processors, width)
        config = MachineConfig(distribution=dist, cache="perfect")
        cycles = {}
        for mode in ("bbox", "coverage"):
            work = build_routed_work(
                scene, dist, cache_spec="perfect", route_by=mode
            )
            cycles[mode] = simulate_machine(scene, config, routed=work).cycles
        overhead = cycles["bbox"] / cycles["coverage"] - 1.0
        rows.append(
            [width, round(cycles["bbox"]), round(cycles["coverage"]), f"{overhead:.1%}"]
        )
    table = format_table(
        ["width", "cycles bbox", "cycles oracle", "setup overhead"], rows
    )
    return (
        f"Ablation: bbox vs oracle coverage routing, room3, "
        f"{num_processors}P block, perfect cache (scale={scale})\n{table}"
    )


def ablation_texel_format(scale: float, num_processors: int = 16) -> str:
    """32-bit vs 16-bit texels — a format axis the paper fixes.

    The paper assumes 4-byte texels, so a 64-byte line holds a 4x4
    block.  Many era parts stored 16-bit textures: a line then holds an
    8x4 block, halving the *byte* cost of a fill and widening the
    spatial footprint a line covers.  The metric here is external
    **bytes per fragment** (texel counts are not comparable across
    formats).
    """
    scene = build_scene("massive32_1255", scale)
    from repro.core.routing import build_routed_work

    rows = []
    for label, bytes_per_texel in (("32-bit (paper)", 4), ("16-bit", 2)):
        layout = TextureMemoryLayout(scene.textures, bytes_per_texel=bytes_per_texel)
        per_dist = []
        for dist in (SingleProcessor(), BlockInterleaved(num_processors, 16),
                     ScanLineInterleaved(num_processors, 1)):
            work = build_routed_work(scene, dist, cache_spec="lru", layout=layout)
            bytes_per_fragment = (
                work.cache.misses * 64 / work.cache.fragments
                if work.cache.fragments
                else 0.0
            )
            per_dist.append(round(bytes_per_fragment, 2))
        rows.append([label, f"{layout.block_shape[0]}x{layout.block_shape[1]}"] + per_dist)
    table = format_table(
        ["texel format", "line block", "B/frag single",
         f"B/frag block16x{num_processors}", f"B/frag sli1x{num_processors}"],
        rows,
    )
    return (
        f"Ablation: texel format (bytes/fragment of external traffic), "
        f"massive32_1255 (scale={scale})\n{table}"
    )


def ablation_interleave_pattern(scale: float, widths=(8, 16, 32)) -> str:
    """Grid-repeat vs Morton-curve dealing of the same square tiles.

    Two ways to interleave identical blocks: the repeating processor
    grid the machine uses, and a Z-curve round-robin (adopted by some
    real rasterisers).  For power-of-two processor counts the two are
    *provably the same partition* — Morton-code mod ``2^(2k)`` is a
    bit-relabelling of the square ``2^k x 2^k`` grid — which the 16P
    and 64P rows confirm to the cycle.  At awkward (non-power-of-two)
    counts the patterns diverge and the *grid* wins: a Z-curve dealt
    round-robin over a count that does not divide its period clusters
    consecutive tiles onto the same node.  Either way the design space
    the paper studies — tile size and shape — dominates the dealing
    pattern wherever the pattern is sane.
    """
    from repro.distribution.morton import MortonInterleaved

    scene = build_scene("massive32_1255", scale)
    study = SpeedupStudy(scene, cache="lru", bus_ratio=1.0)
    rows = []
    for processors in (12, 16, 48, 64):
        for width in widths:
            grid = BlockInterleaved(processors, width)
            morton = MortonInterleaved(processors, width)
            rows.append(
                [
                    processors,
                    width,
                    round(imbalance_percent(scene, grid), 1),
                    round(imbalance_percent(scene, morton), 1),
                    round(study.speedup(grid), 2),
                    round(study.speedup(morton), 2),
                ]
            )
    table = format_table(
        ["procs", "width", "imbal% grid", "imbal% morton",
         "speedup grid", "speedup morton"],
        rows,
    )
    return (
        f"Ablation: grid vs Morton block interleave, massive32_1255 "
        f"(scale={scale})\n{table}"
    )


def ablation_early_z(scale: float, num_processors: int = 16) -> str:
    """Quantify the paper's 'no Z-buffer' assumption against early-Z.

    The paper textures every rasterised fragment (hidden-surface
    removal happens after texturing), arguing the Z-buffer cannot
    affect the texture system.  A modern early-Z engine rejects
    occluded fragments *before* texturing; this ablation re-runs the
    machine on the depth-resolved survivor stream and reports how much
    texture traffic, load imbalance and frame time actually move.
    """
    from repro.core.config import MachineConfig
    from repro.core.machine import simulate_machine
    from repro.core.routing import build_routed_work
    from repro.distribution.single import SingleProcessor
    from repro.raster.depth import resolve_depth

    rows = []
    for name in ("room3", "massive32_1255", "truc640"):
        scene = build_scene(name, scale)
        full = scene.fragments()
        survivors = resolve_depth(full, scene.width, scene.height)
        dist = BlockInterleaved(num_processors, 16)
        config = MachineConfig(distribution=dist, cache="lru", bus_ratio=1.0)

        results = {}
        for label, stream in (("late-Z", full), ("early-Z", survivors)):
            work = build_routed_work(scene, dist, cache_spec="lru", fragments=stream)
            solo = build_routed_work(
                scene, SingleProcessor(), cache_spec="lru", fragments=stream
            )
            baseline = simulate_machine(
                scene, config.with_distribution(SingleProcessor()), routed=solo
            ).cycles
            results[label] = simulate_machine(
                scene, config, routed=work, baseline_cycles=baseline
            )
        late, early = results["late-Z"], results["early-Z"]
        rows.append(
            [
                name,
                f"{len(survivors) / len(full):.0%}",
                round(late.texel_to_fragment, 3),
                round(early.texel_to_fragment, 3),
                round(late.speedup or 0.0, 2),
                round(early.speedup or 0.0, 2),
                round(late.work_imbalance_percent(), 1),
                round(early.work_imbalance_percent(), 1),
            ]
        )
    table = format_table(
        [
            "scene",
            "fragments kept",
            "t/f late-Z",
            "t/f early-Z",
            "speedup late-Z",
            "speedup early-Z",
            "imbal% late-Z",
            "imbal% early-Z",
        ],
        rows,
    )
    return (
        f"Ablation: late-Z (the paper's machine) vs early-Z fragment "
        f"rejection, {num_processors}P block16, 1x bus (scale={scale})\n{table}"
    )


def seed_sensitivity(scale: float, seeds=(104, 1, 2, 3, 4), num_processors: int = 16) -> str:
    """Generator-noise check: do the conclusions survive a reseed?

    The workloads are synthetic, so the headline findings must not
    hinge on one random draw.  Regenerates ``massive32_1255`` under
    several seeds and reports the best block width, its speedup and the
    block-16 texel/fragment ratio per seed.
    """
    from dataclasses import replace as dataclass_replace

    from repro.workloads import SCENE_SPECS
    from repro.workloads.generator import generate_scene

    rows = []
    for seed in seeds:
        spec = dataclass_replace(SCENE_SPECS["massive32_1255"], seed=seed)
        scene = generate_scene(spec, scale=scale)
        study = SpeedupStudy(scene, cache="lru", bus_ratio=1.0)
        best_width, best_speedup = study.best_size(
            "block", BLOCK_WIDTHS, num_processors
        )
        ratio = texel_to_fragment_ratio(
            scene, BlockInterleaved(num_processors, 16)
        )
        rows.append([seed, best_width, round(best_speedup, 2), round(ratio, 3)])
    table = format_table(
        ["seed", "best width", "best speedup", "t/f @ block16"], rows
    )
    return (
        f"Robustness: massive32_1255 regenerated under different seeds, "
        f"{num_processors} processors (scale={scale})\n{table}"
    )


def extension_geometry_stage(
    scale: float,
    num_processors: int = 16,
    engines=(1, 2, 4, 8, 16),
    geometry_cycles: float = 100.0,
) -> str:
    """Balanced-machine study: when does geometry become the bottleneck?

    The paper idealises the geometry stage (Section 2.3, factor 1).
    This extension gives it a finite rate — round-robin engines at a
    fixed per-triangle cost — and shows how many geometry engines a
    texture-mapping configuration needs before the idealisation holds.
    """
    from repro.core.config import MachineConfig
    from repro.core.machine import simulate_machine
    from repro.core.routing import build_routed_work

    scene = build_scene("massive32_1255", scale)
    dist = BlockInterleaved(num_processors, 16)
    work = build_routed_work(scene, dist, cache_spec="lru")
    ideal = simulate_machine(
        scene, MachineConfig(distribution=dist, cache="lru"), routed=work
    ).cycles
    rows = []
    for count in engines:
        config = MachineConfig(
            distribution=dist,
            cache="lru",
            geometry_engines=count,
            geometry_cycles=geometry_cycles,
        )
        cycles = simulate_machine(scene, config, routed=work).cycles
        rows.append(
            [count, round(cycles), f"{ideal / cycles:.0%}"]
        )
    rows.append(["ideal", round(ideal), "100%"])
    table = format_table(
        ["geometry engines", "frame cycles", "of ideal throughput"], rows
    )
    return (
        f"Extension: finite-rate geometry stage "
        f"({geometry_cycles:g} cycles/triangle/engine), massive32_1255, "
        f"{num_processors}P block16 (scale={scale})\n{table}"
    )


def validation_overlap_model(scale: float, tiles=(4, 8, 16, 32, 64)) -> str:
    """Measured routing overlap vs the Chen et al. closed form."""
    from repro.analysis.overlap import overlap_validation

    scene = build_scene("truc640", scale)
    return overlap_validation(scene, tiles)


def future_dynamic(scale: float, num_processors: int = 16, widths=(8, 16, 32, 64)) -> str:
    """Section-9 future work: static vs idealised dynamic tile assignment."""
    from repro.analysis.dynamic import compare_static_dynamic, render_comparison

    scene = build_scene("massive32_1255", scale)
    rows = compare_static_dynamic(scene, widths, num_processors)
    return render_comparison("massive32_1255", rows, num_processors, scale)


def future_l2_interframe(
    scale: float,
    num_processors: int = 16,
    pans=(0, 8, 32, 96),
    widths=(16, 64),
    frames: int = 4,
    scene_name: str = "quake",
) -> str:
    """Section-9 future work: inter-frame L2 efficiency vs viewpoint pan.

    ``quake`` is the right testbed: its texels are spatially bound to
    the surfaces that use them (unique t/f > 1), so a viewpoint
    translation genuinely moves texture demand between nodes.  Scenes
    with screen-global texture repetition (the massive family) keep
    most of their L2 benefit at any pan, because every node's L2 holds
    the shared texture set regardless of which tiles it owns.
    """
    from repro.analysis.interframe import (
        render_interframe_table,
        replay_sequence,
        warm_frame_ratio,
    )
    from repro.workloads import SCENE_SPECS
    from repro.workloads.sequence import pan_sequence

    rows = []
    for pan in pans:
        for width in widths:
            sequence = pan_sequence(SCENE_SPECS[scene_name], scale, frames, pan)
            traffic = replay_sequence(sequence, BlockInterleaved(num_processors, width))
            rows.append(
                (pan, width, traffic[0].memory_ratio, warm_frame_ratio(traffic))
            )
    return render_interframe_table(rows, scene_name, num_processors, scale)


def cad_contrast(scale: float, num_processors: int = 16) -> str:
    """Why the paper rejected SPEC Viewperf (Section 4.2), measured.

    A Viewperf-like CAD frame next to a VR frame: the CAD scene's huge
    magnified-texture triangles leave the cache almost nothing to do
    (texel/fragment near the compulsory floor for every distribution),
    so a texture-cache distribution study run on it would conclude the
    design choice barely matters — which is exactly why the paper built
    its own virtual-reality benchmarks.
    """
    from repro.workloads.generator import generate_scene
    from repro.workloads.scenes import CAD_CONTRAST_SPEC

    cad = generate_scene(CAD_CONTRAST_SPEC, scale=scale)
    vr = build_scene("massive32_1255", scale)
    rows = []
    for scene in (cad, vr):
        stats = scene.statistics()
        ratios = {}
        for label, dist in (
            ("block16", BlockInterleaved(num_processors, 16)),
            ("sli1", ScanLineInterleaved(num_processors, 1)),
        ):
            ratios[label] = texel_to_fragment_ratio(scene, dist)
        spread = (
            ratios["sli1"] / ratios["block16"] if ratios["block16"] else 1.0
        )
        rows.append(
            [
                stats.name,
                round(stats.depth_complexity, 2),
                round(stats.pixels_per_triangle),
                round(stats.unique_texel_to_fragment, 3),
                round(ratios["block16"], 3),
                round(ratios["sli1"], 3),
                f"{spread:.2f}x",
            ]
        )
    table = format_table(
        [
            "scene",
            "depth",
            "px/tri",
            "uniq t/f",
            "t/f block16",
            "t/f sli1 (worst case)",
            "distribution sensitivity",
        ],
        rows,
    )
    return (
        f"Contrast: Viewperf-style CAD frame vs VR frame, "
        f"{num_processors} processors (scale={scale})\n{table}"
    )


def scale_stability(
    scale: float, scales=(0.0625, 0.125, 0.25), num_processors: int = 16
) -> str:
    """Which conclusions survive the scene-scale substitution?

    The reproduction runs reduced frames; this study re-measures the
    headline quantities at several scales so readers can see what is
    scale-stable (texel/fragment regimes, best-width plateau) and what
    shifts (absolute imbalance, buffer knees).  The ``scale`` argument
    is ignored — the sweep IS the scales.
    """
    del scale
    rows = []
    for s in scales:
        scene = build_scene("massive32_1255", s)
        study = SpeedupStudy(scene, cache="lru", bus_ratio=1.0)
        best_width, best = study.best_size("block", BLOCK_WIDTHS, num_processors)
        ratio = texel_to_fragment_ratio(scene, BlockInterleaved(num_processors, 16))
        imbalance = imbalance_percent(scene, BlockInterleaved(num_processors, 16))
        rows.append(
            [
                s,
                f"{scene.width}x{scene.height}",
                best_width,
                round(best, 2),
                round(ratio, 3),
                round(imbalance, 1),
            ]
        )
    table = format_table(
        ["scale", "screen", "best width", "best speedup",
         "t/f @ block16", "imbal% @ block16"],
        rows,
    )
    return (
        f"Methodology: scale stability of the headline metrics, "
        f"massive32_1255, {num_processors} processors\n{table}"
    )


def comparison_sort_last(scale: float, num_processors: int = 16) -> str:
    """Sort-middle vs sort-last (the architecture of refs [13]/[14]).

    Sort-last deals whole objects to nodes, keeping each texture on one
    engine — better locality — but it gives up the strict OpenGL
    drawing order that motivates the paper's sort-middle choice, and
    its balance depends on object sizes rather than the tile grid.
    """
    from repro.core.machine import simulate_machine, single_processor_baseline
    from repro.core.config import MachineConfig
    from repro.core.sortlast import simulate_sort_last

    rows = []
    for name in SCENE_NAMES:
        scene = build_scene(name, scale)
        config = MachineConfig(
            distribution=BlockInterleaved(num_processors, 16),
            cache="lru",
            bus_ratio=1.0,
        )
        baseline = single_processor_baseline(scene, config)
        middle = simulate_machine(scene, config, baseline_cycles=baseline)
        # Chunk ~ one generated object (object_grid**2 quads).
        chunk = max(1, 2 * 3 * 3)
        last = simulate_sort_last(
            scene,
            num_processors,
            chunk_size=chunk,
            cache="lru",
            bus_ratio=1.0,
            baseline_cycles=baseline,
        )
        rows.append(
            [
                name,
                round(middle.speedup or 0.0, 2),
                round(last.speedup or 0.0, 2),
                round(middle.texel_to_fragment, 3),
                round(last.texel_to_fragment, 3),
            ]
        )
    table = format_table(
        ["scene", "speedup sort-middle", "speedup sort-last",
         "t/f sort-middle", "t/f sort-last"],
        rows,
    )
    return (
        f"Comparison: sort-middle block16 vs sort-last (object chunks), "
        f"{num_processors} processors, 16KB cache, 1x bus (scale={scale})\n{table}"
    )


def validation_prefetch(scale: float, latency: float = 50.0) -> str:
    """Validate the zero-latency assumption (Igehy prefetching).

    The machine model treats memory latency as fully hidden; this sweep
    shows how deep the pixel FIFO must be for that to hold on a real
    miss stream, and that a deep-enough FIFO lands within ~1% of the
    zero-latency model.
    """
    import numpy as np

    from repro.cache.models import make_cache_model
    from repro.cache.stream import replay_fragments
    from repro.core.prefetch import latency_hiding_curve
    from repro.texture.filtering import TrilinearFilter

    scene = build_scene("massive32_1255", scale)
    fragments = scene.fragments()
    tex_filter = TrilinearFilter(scene.memory_layout())
    model = make_cache_model("lru")
    run = replay_fragments(fragments, tex_filter, model)
    # Rebuild the per-fragment miss counts from a second replay pass at
    # fragment granularity using the per-triangle attribution spread
    # evenly — a faithful stand-in for the stream's burst structure is
    # the per-triangle grouping itself.
    counts = np.zeros(len(fragments), dtype=np.int64)
    per_triangle = run.texels_by_triangle // 16
    pixel_counts = fragments.triangle_pixel_counts()
    with np.errstate(divide="ignore", invalid="ignore"):
        rate = np.where(pixel_counts > 0, per_triangle / np.maximum(pixel_counts, 1), 0.0)
    rng = np.random.default_rng(0)
    counts = (rng.random(len(fragments)) < rate[fragments.triangle]).astype(np.int64)

    depths = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    curve = latency_hiding_curve(counts, depths, latency, bus_ratio=2.0)
    table = format_table(
        ["pixel FIFO depth", "slowdown vs zero-latency"],
        [[depth, round(value, 3)] for depth, value in curve.items()],
    )
    return (
        f"Validation: prefetch pixel-FIFO vs {latency:g}-cycle memory "
        f"latency, massive32_1255 miss stream, 2x bus (scale={scale})\n{table}"
    )


#: Registry for the CLI: name -> (description, callable(scale) -> text).
EXPERIMENTS: Dict[str, Tuple[str, Callable[[float], str]]] = {
    "table1": ("scene characteristics", table1),
    "fig5-imbalance": (
        "load imbalance, both distributions",
        lambda scale: fig5_imbalance("block", scale) + "\n\n" + fig5_imbalance("sli", scale),
    ),
    "fig5-speedup": (
        "perfect-cache speedup vs processors",
        lambda scale: fig5_speedup("block", scale) + "\n\n" + fig5_speedup("sli", scale),
    ),
    "fig6": (
        "texel/fragment locality",
        lambda scale: "\n\n".join(
            fig6(scene, family, scale)
            for scene in ("massive32_1255", "teapot_full")
            for family in ("block", "sli")
        ),
    ),
    "fig7": (
        "speedups, 1x bus",
        lambda scale: fig7("block", scale) + "\n\n" + fig7("sli", scale),
    ),
    "fig7-ratio2": (
        "speedups, 2x bus (tech-report companion)",
        lambda scale: fig7("block", scale, bus_ratio=2.0, scenes=("massive32_1255", "teapot_full"))
        + "\n\n"
        + fig7("sli", scale, bus_ratio=2.0, scenes=("massive32_1255", "teapot_full")),
    ),
    "fig8": (
        "triangle-buffer study",
        lambda scale: fig8("perfect", scale) + "\n\n" + fig8("lru", scale),
    ),
    "ablations": (
        "cache geometry, interleaving and blocking ablations",
        lambda scale: "\n\n".join(
            (
                ablation_cache_size(scale),
                ablation_cache_associativity(scale),
                ablation_interleaving(scale),
                ablation_texture_blocking(scale),
            )
        ),
    ),
    "future-dynamic": (
        "Sec. 9 future work: dynamic tile assignment",
        future_dynamic,
    ),
    "future-l2": (
        "Sec. 9 future work: inter-frame L2 vs viewpoint pan",
        future_l2_interframe,
    ),
    "ablation-order": (
        "ablation: submission order vs triangle-buffer need",
        ablation_submission_order,
    ),
    "ablation-routing": (
        "ablation: bounding-box vs oracle coverage routing",
        ablation_routing,
    ),
    "ablation-texel-format": (
        "ablation: 32-bit vs 16-bit texel formats",
        ablation_texel_format,
    ),
    "ablation-interleave-pattern": (
        "ablation: grid vs Morton-curve block dealing",
        ablation_interleave_pattern,
    ),
    "ablation-early-z": (
        "ablation: late-Z (paper) vs early-Z fragment rejection",
        ablation_early_z,
    ),
    "seeds": (
        "robustness: conclusions across generator seeds",
        seed_sensitivity,
    ),
    "sort-last": (
        "comparison: sort-middle vs sort-last architecture",
        comparison_sort_last,
    ),
    "prefetch": (
        "validation: pixel-FIFO latency hiding (Igehy assumption)",
        validation_prefetch,
    ),
    "overlap": (
        "validation: routing overlap vs the Chen et al. model",
        validation_overlap_model,
    ),
    "cad-contrast": (
        "contrast: Viewperf-style CAD frame vs VR frame (Sec. 4.2)",
        cad_contrast,
    ),
    "scale-stability": (
        "methodology: headline metrics across scene scales",
        scale_stability,
    ),
    "geometry-stage": (
        "extension: finite-rate geometry stage (balanced machine)",
        extension_geometry_stage,
    ),
}

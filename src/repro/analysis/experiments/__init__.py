"""Canonical experiment definitions — registry shim.

One module per figure/table family; importing them here populates the
:data:`EXPERIMENTS` registry that the ``repro-experiments`` CLI and the
pytest-benchmark harness resolve names from.  Every public experiment
function is re-exported so ``from repro.analysis import experiments``
keeps working unchanged.
"""

from __future__ import annotations

from repro.analysis.experiments.common import (
    ALL_PROCESSOR_COUNTS,
    BLOCK_WIDTHS,
    BUFFER_SIZES,
    FIG8_WIDTHS,
    PROCESSOR_COUNTS,
    SLI_LINES,
)
from repro.analysis.experiments.registry import EXPERIMENTS, register, resolve
from repro.analysis.experiments.table1 import table1
from repro.analysis.experiments.fig5 import fig5_imbalance, fig5_speedup
from repro.analysis.experiments.fig6 import fig6
from repro.analysis.experiments.fig7 import fig7, fig7_panel
from repro.analysis.experiments.fig8 import fig8
from repro.analysis.experiments.ablations import (
    ablation_cache_associativity,
    ablation_cache_size,
    ablation_early_z,
    ablation_interleave_pattern,
    ablation_interleaving,
    ablation_routing,
    ablation_submission_order,
    ablation_texel_format,
    ablation_texture_blocking,
)
from repro.analysis.experiments.robustness import (
    cad_contrast,
    scale_stability,
    seed_sensitivity,
)
from repro.analysis.experiments.future import (
    extension_geometry_stage,
    future_dynamic,
    future_l2_interframe,
)
from repro.analysis.experiments.comparisons import comparison_sort_last
from repro.analysis.experiments.validation import (
    validation_overlap_model,
    validation_prefetch,
)
from repro.analysis.experiments.vt import vt_distribution

__all__ = [
    "ALL_PROCESSOR_COUNTS",
    "BLOCK_WIDTHS",
    "BUFFER_SIZES",
    "EXPERIMENTS",
    "FIG8_WIDTHS",
    "PROCESSOR_COUNTS",
    "SLI_LINES",
    "ablation_cache_associativity",
    "ablation_cache_size",
    "ablation_early_z",
    "ablation_interleave_pattern",
    "ablation_interleaving",
    "ablation_routing",
    "ablation_submission_order",
    "ablation_texel_format",
    "ablation_texture_blocking",
    "cad_contrast",
    "comparison_sort_last",
    "extension_geometry_stage",
    "fig5_imbalance",
    "fig5_speedup",
    "fig6",
    "fig7",
    "fig7_panel",
    "fig8",
    "future_dynamic",
    "future_l2_interframe",
    "register",
    "resolve",
    "scale_stability",
    "seed_sensitivity",
    "table1",
    "validation_overlap_model",
    "validation_prefetch",
    "vt_distribution",
]

"""Ablations: cache geometry, interleaving, blocking, routing, order."""

from __future__ import annotations

from repro.analysis.buffering import buffer_sweep
from repro.analysis.experiments.registry import register
from repro.analysis.load_balance import imbalance_percent
from repro.analysis.locality import texel_to_fragment_ratio
from repro.analysis.performance import SpeedupStudy
from repro.analysis.tables import format_table
from repro.cache import CacheConfig
from repro.distribution import BlockInterleaved, ContiguousBands, ScanLineInterleaved, SingleProcessor
from repro.texture.layout import TextureMemoryLayout
from repro.workloads import SCENE_NAMES, build_scene


def ablation_cache_size(scale: float, sizes_kb=(4, 8, 16, 32, 64)) -> str:
    scene = build_scene("massive32_1255", scale)
    dist = BlockInterleaved(16, 16)
    rows = [
        [f"{kb}KB", round(texel_to_fragment_ratio(scene, dist, CacheConfig(total_bytes=kb * 1024)), 3)]
        for kb in sizes_kb
    ]
    return (
        f"Ablation: texel/fragment vs cache size, massive32_1255, block16x16 "
        f"(scale={scale})\n" + format_table(["cache", "texel/frag"], rows)
    )


def ablation_cache_associativity(scale: float, ways=(1, 2, 4, 8)) -> str:
    scene = build_scene("massive32_1255", scale)
    dist = BlockInterleaved(16, 16)
    rows = [
        [f"{w}-way", round(texel_to_fragment_ratio(scene, dist, CacheConfig(ways=w)), 3)]
        for w in ways
    ]
    return (
        f"Ablation: texel/fragment vs associativity (16KB), massive32_1255, "
        f"block16x16 (scale={scale})\n"
        + format_table(["organisation", "texel/frag"], rows)
    )


def ablation_interleaving(scale: float, processors: int = 16) -> str:
    rows = []
    for name in SCENE_NAMES:
        scene = build_scene(name, scale)
        interleaved = BlockInterleaved(processors, 16)
        bands = ContiguousBands(processors, scene.height)
        study = SpeedupStudy(scene, cache="perfect")
        rows.append(
            [
                name,
                round(imbalance_percent(scene, interleaved), 1),
                round(imbalance_percent(scene, bands), 1),
                round(study.speedup(interleaved), 2),
                round(study.speedup(bands), 2),
            ]
        )
    return (
        f"Ablation: interleaved block16 vs contiguous bands, {processors} "
        f"processors, perfect cache (scale={scale})\n"
        + format_table(
            ["scene", "imbal% interleaved", "imbal% bands",
             "speedup interleaved", "speedup bands"],
            rows,
        )
    )


def ablation_texture_blocking(scale: float) -> str:
    scene = build_scene("massive32_1255", scale)
    blocked = TextureMemoryLayout(scene.textures, block_shape=(4, 4))
    linear = TextureMemoryLayout(scene.textures, block_shape=(16, 1))
    rows = []
    for dist in (
        SingleProcessor(),
        BlockInterleaved(16, 16),
        ScanLineInterleaved(16, 2),
        ScanLineInterleaved(16, 1),
    ):
        rows.append(
            [
                dist.describe(),
                round(texel_to_fragment_ratio(scene, dist, layout=blocked), 3),
                round(texel_to_fragment_ratio(scene, dist, layout=linear), 3),
            ]
        )
    return (
        f"Ablation: texel/fragment with 4x4 blocking vs 16x1 raster lines, "
        f"massive32_1255 (scale={scale})\n"
        + format_table(["distribution", "blocked 4x4", "raster 16x1"], rows)
    )


def ablation_submission_order(scale: float, num_processors: int = 64) -> str:
    """How triangle submission order interacts with the triangle buffer.

    One might expect a clustered (BSP-walk-like) stream to need much
    deeper buffers than a raster or random re-emission of the same
    workload.  Measured finding: with an *interleaved* distribution the
    orders are nearly indistinguishable — fine interleaving spatially
    de-clusters any stream (every burst still touches every node), so
    the Figure-8 buffer requirement is a property of the machine, not
    of scene traversal order.  A negative result, and a reassuring one
    for the synthetic traces.
    """
    from dataclasses import replace as dataclass_replace

    from repro.workloads import SCENE_SPECS
    from repro.workloads.generator import generate_scene

    buffers = (1, 5, 20, 10000)
    rows = []
    for order in ("clustered", "raster", "random"):
        spec = dataclass_replace(SCENE_SPECS["truc640"], emit_order=order)
        scene = generate_scene(spec, scale=scale)
        sweep = buffer_sweep(
            scene,
            "block",
            sizes=[16],
            buffer_sizes=buffers,
            num_processors=num_processors,
            cache="perfect",
        )
        ideal = sweep[(16, buffers[-1])]
        rows.append(
            [order]
            + [round(sweep[(16, b)], 2) for b in buffers]
            + [f"{sweep[(16, buffers[0])] / ideal:.0%}"]
        )
    table = format_table(
        ["submission order"] + [f"buf{b}" for b in buffers] + ["buf1 retains"],
        rows,
    )
    return (
        f"Ablation: submission order vs triangle-buffer need, truc640, "
        f"{num_processors}P block16, perfect cache (scale={scale})\n{table}"
    )


def ablation_routing(scale: float, num_processors: int = 64) -> str:
    """Bounding-box routing vs oracle exact-coverage routing.

    Quantifies the grazed-tile setup slots a real distributor pays:
    the gap widens as tiles shrink below the triangle size.
    """
    from repro.core.config import MachineConfig
    from repro.core.machine import simulate_machine
    from repro.core.routing import build_routed_work

    scene = build_scene("room3", scale)
    rows = []
    for width in (4, 8, 16, 32):
        dist = BlockInterleaved(num_processors, width)
        config = MachineConfig(distribution=dist, cache="perfect")
        cycles = {}
        for mode in ("bbox", "coverage"):
            work = build_routed_work(
                scene, dist, cache_spec="perfect", route_by=mode
            )
            cycles[mode] = simulate_machine(scene, config, routed=work).cycles
        overhead = cycles["bbox"] / cycles["coverage"] - 1.0
        rows.append(
            [width, round(cycles["bbox"]), round(cycles["coverage"]), f"{overhead:.1%}"]
        )
    table = format_table(
        ["width", "cycles bbox", "cycles oracle", "setup overhead"], rows
    )
    return (
        f"Ablation: bbox vs oracle coverage routing, room3, "
        f"{num_processors}P block, perfect cache (scale={scale})\n{table}"
    )


def ablation_texel_format(scale: float, num_processors: int = 16) -> str:
    """32-bit vs 16-bit texels — a format axis the paper fixes.

    The paper assumes 4-byte texels, so a 64-byte line holds a 4x4
    block.  Many era parts stored 16-bit textures: a line then holds an
    8x4 block, halving the *byte* cost of a fill and widening the
    spatial footprint a line covers.  The metric here is external
    **bytes per fragment** (texel counts are not comparable across
    formats).
    """
    scene = build_scene("massive32_1255", scale)
    from repro.core.routing import build_routed_work

    rows = []
    for label, bytes_per_texel in (("32-bit (paper)", 4), ("16-bit", 2)):
        layout = TextureMemoryLayout(scene.textures, bytes_per_texel=bytes_per_texel)
        per_dist = []
        for dist in (SingleProcessor(), BlockInterleaved(num_processors, 16),
                     ScanLineInterleaved(num_processors, 1)):
            work = build_routed_work(scene, dist, cache_spec="lru", layout=layout)
            bytes_per_fragment = (
                work.cache.misses * 64 / work.cache.fragments
                if work.cache.fragments
                else 0.0
            )
            per_dist.append(round(bytes_per_fragment, 2))
        rows.append([label, f"{layout.block_shape[0]}x{layout.block_shape[1]}"] + per_dist)
    table = format_table(
        ["texel format", "line block", "B/frag single",
         f"B/frag block16x{num_processors}", f"B/frag sli1x{num_processors}"],
        rows,
    )
    return (
        f"Ablation: texel format (bytes/fragment of external traffic), "
        f"massive32_1255 (scale={scale})\n{table}"
    )


def ablation_interleave_pattern(scale: float, widths=(8, 16, 32)) -> str:
    """Grid-repeat vs Morton-curve dealing of the same square tiles.

    Two ways to interleave identical blocks: the repeating processor
    grid the machine uses, and a Z-curve round-robin (adopted by some
    real rasterisers).  For power-of-two processor counts the two are
    *provably the same partition* — Morton-code mod ``2^(2k)`` is a
    bit-relabelling of the square ``2^k x 2^k`` grid — which the 16P
    and 64P rows confirm to the cycle.  At awkward (non-power-of-two)
    counts the patterns diverge and the *grid* wins: a Z-curve dealt
    round-robin over a count that does not divide its period clusters
    consecutive tiles onto the same node.  Either way the design space
    the paper studies — tile size and shape — dominates the dealing
    pattern wherever the pattern is sane.
    """
    from repro.distribution.morton import MortonInterleaved

    scene = build_scene("massive32_1255", scale)
    study = SpeedupStudy(scene, cache="lru", bus_ratio=1.0)
    rows = []
    for processors in (12, 16, 48, 64):
        for width in widths:
            grid = BlockInterleaved(processors, width)
            morton = MortonInterleaved(processors, width)
            rows.append(
                [
                    processors,
                    width,
                    round(imbalance_percent(scene, grid), 1),
                    round(imbalance_percent(scene, morton), 1),
                    round(study.speedup(grid), 2),
                    round(study.speedup(morton), 2),
                ]
            )
    table = format_table(
        ["procs", "width", "imbal% grid", "imbal% morton",
         "speedup grid", "speedup morton"],
        rows,
    )
    return (
        f"Ablation: grid vs Morton block interleave, massive32_1255 "
        f"(scale={scale})\n{table}"
    )


def ablation_early_z(scale: float, num_processors: int = 16) -> str:
    """Quantify the paper's 'no Z-buffer' assumption against early-Z.

    The paper textures every rasterised fragment (hidden-surface
    removal happens after texturing), arguing the Z-buffer cannot
    affect the texture system.  A modern early-Z engine rejects
    occluded fragments *before* texturing; this ablation re-runs the
    machine on the depth-resolved survivor stream and reports how much
    texture traffic, load imbalance and frame time actually move.
    """
    from repro.core.config import MachineConfig
    from repro.core.machine import simulate_machine
    from repro.core.routing import build_routed_work
    from repro.raster.depth import resolve_depth

    rows = []
    for name in ("room3", "massive32_1255", "truc640"):
        scene = build_scene(name, scale)
        full = scene.fragments()
        survivors = resolve_depth(full, scene.width, scene.height)
        dist = BlockInterleaved(num_processors, 16)
        config = MachineConfig(distribution=dist, cache="lru", bus_ratio=1.0)

        results = {}
        for label, stream in (("late-Z", full), ("early-Z", survivors)):
            work = build_routed_work(scene, dist, cache_spec="lru", fragments=stream)
            solo = build_routed_work(
                scene, SingleProcessor(), cache_spec="lru", fragments=stream
            )
            baseline = simulate_machine(
                scene, config.with_distribution(SingleProcessor()), routed=solo
            ).cycles
            results[label] = simulate_machine(
                scene, config, routed=work, baseline_cycles=baseline
            )
        late, early = results["late-Z"], results["early-Z"]
        rows.append(
            [
                name,
                f"{len(survivors) / len(full):.0%}",
                round(late.texel_to_fragment, 3),
                round(early.texel_to_fragment, 3),
                round(late.speedup or 0.0, 2),
                round(early.speedup or 0.0, 2),
                round(late.work_imbalance_percent(), 1),
                round(early.work_imbalance_percent(), 1),
            ]
        )
    table = format_table(
        [
            "scene",
            "fragments kept",
            "t/f late-Z",
            "t/f early-Z",
            "speedup late-Z",
            "speedup early-Z",
            "imbal% late-Z",
            "imbal% early-Z",
        ],
        rows,
    )
    return (
        f"Ablation: late-Z (the paper's machine) vs early-Z fragment "
        f"rejection, {num_processors}P block16, 1x bus (scale={scale})\n{table}"
    )


register("ablations", "cache geometry, interleaving and blocking ablations")(
    lambda scale: "\n\n".join(
        (
            ablation_cache_size(scale),
            ablation_cache_associativity(scale),
            ablation_interleaving(scale),
            ablation_texture_blocking(scale),
        )
    )
)
register("ablation-order", "ablation: submission order vs triangle-buffer need")(
    ablation_submission_order
)
register("ablation-routing", "ablation: bounding-box vs oracle coverage routing")(
    ablation_routing
)
register("ablation-texel-format", "ablation: 32-bit vs 16-bit texel formats")(
    ablation_texel_format
)
register("ablation-interleave-pattern", "ablation: grid vs Morton-curve block dealing")(
    ablation_interleave_pattern
)
register("ablation-early-z", "ablation: late-Z (paper) vs early-Z fragment rejection")(
    ablation_early_z
)

"""Shared sweep vocabulary of the paper's figures."""

from __future__ import annotations

from typing import Tuple

#: Paper sweep vocabulary.
BLOCK_WIDTHS = (4, 8, 16, 32, 64, 128)
SLI_LINES = (1, 2, 4, 8, 16, 32)
PROCESSOR_COUNTS = (4, 16, 64)
ALL_PROCESSOR_COUNTS = (1, 2, 4, 8, 16, 32, 64)
BUFFER_SIZES = (1, 5, 10, 20, 50, 100, 500, 10000)
FIG8_WIDTHS = (2, 4, 8, 16, 32, 64, 128)

FAMILY_SIZES = {"block": BLOCK_WIDTHS, "sli": SLI_LINES}
FAMILY_ROW_LABEL = {"block": "width", "sli": "lines"}


def family_sizes(family: str) -> Tuple[int, ...]:
    return FAMILY_SIZES[family]

"""Architecture comparison: sort-middle vs sort-last."""

from __future__ import annotations

from repro.analysis.experiments.registry import register
from repro.analysis.tables import format_table
from repro.distribution import BlockInterleaved
from repro.workloads import SCENE_NAMES, build_scene


def comparison_sort_last(scale: float, num_processors: int = 16) -> str:
    """Sort-middle vs sort-last (the architecture of refs [13]/[14]).

    Sort-last deals whole objects to nodes, keeping each texture on one
    engine — better locality — but it gives up the strict OpenGL
    drawing order that motivates the paper's sort-middle choice, and
    its balance depends on object sizes rather than the tile grid.
    """
    from repro.core.machine import simulate_machine, single_processor_baseline
    from repro.core.config import MachineConfig
    from repro.core.sortlast import simulate_sort_last

    rows = []
    for name in SCENE_NAMES:
        scene = build_scene(name, scale)
        config = MachineConfig(
            distribution=BlockInterleaved(num_processors, 16),
            cache="lru",
            bus_ratio=1.0,
        )
        baseline = single_processor_baseline(scene, config)
        middle = simulate_machine(scene, config, baseline_cycles=baseline)
        # Chunk ~ one generated object (object_grid**2 quads).
        chunk = max(1, 2 * 3 * 3)
        last = simulate_sort_last(
            scene,
            num_processors,
            chunk_size=chunk,
            cache="lru",
            bus_ratio=1.0,
            baseline_cycles=baseline,
        )
        rows.append(
            [
                name,
                round(middle.speedup or 0.0, 2),
                round(last.speedup or 0.0, 2),
                round(middle.texel_to_fragment, 3),
                round(last.texel_to_fragment, 3),
            ]
        )
    table = format_table(
        ["scene", "speedup sort-middle", "speedup sort-last",
         "t/f sort-middle", "t/f sort-last"],
        rows,
    )
    return (
        f"Comparison: sort-middle block16 vs sort-last (object chunks), "
        f"{num_processors} processors, 16KB cache, 1x bus (scale={scale})\n{table}"
    )


register("sort-last", "comparison: sort-middle vs sort-last architecture")(
    comparison_sort_last
)

"""Figure 5: load imbalance and perfect-cache speedup."""

from __future__ import annotations

from repro.analysis.experiments.common import ALL_PROCESSOR_COUNTS, FAMILY_ROW_LABEL, family_sizes
from repro.analysis.experiments.registry import register
from repro.analysis.load_balance import imbalance_sweep
from repro.analysis.performance import SpeedupStudy
from repro.analysis.tables import format_series, format_table
from repro.workloads import SCENE_NAMES, build_scene


def fig5_imbalance(family: str, scale: float, processors: int = 64) -> str:
    """Figure 5 (top): % work imbalance at 64 processors, perfect cache."""
    sizes = family_sizes(family)
    rows = []
    for name in SCENE_NAMES:
        scene = build_scene(name, scale)
        sweep = imbalance_sweep(scene, family, sizes, processors)
        rows.append([name] + [round(sweep[size], 1) for size in sizes])
    prefix = "w" if family == "block" else "l"
    table = format_table(["scene"] + [f"{prefix}{s}" for s in sizes], rows)
    return (
        f"Figure 5 (top, {family}): % imbalance, {processors} processors "
        f"(scale={scale})\n{table}"
    )


def fig5_speedup(family: str, scale: float, scene_name: str = "massive32_1255") -> str:
    """Figure 5 (bottom): perfect-cache speedup vs processors."""
    study = SpeedupStudy(build_scene(scene_name, scale), cache="perfect")
    sweep = study.sweep(family, family_sizes(family), ALL_PROCESSOR_COUNTS)
    rounded = {key: round(value, 2) for key, value in sweep.items()}
    return format_series(
        f"Figure 5 (bottom, {family}): perfect-cache speedup, {scene_name} "
        f"(scale={scale})",
        rounded,
        row_label=FAMILY_ROW_LABEL[family],
    )


register("fig5-imbalance", "load imbalance, both distributions")(
    lambda scale: fig5_imbalance("block", scale) + "\n\n" + fig5_imbalance("sli", scale)
)
register("fig5-speedup", "perfect-cache speedup vs processors")(
    lambda scale: fig5_speedup("block", scale) + "\n\n" + fig5_speedup("sli", scale)
)

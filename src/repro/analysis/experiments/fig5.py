"""Figure 5: load imbalance and perfect-cache speedup.

Both experiments are declared as :class:`~repro.expfw.spec.ExperimentSpec`
objects: the parameter space (family, processors, scene, scale) replaces
the hand-rolled ``block``/``sli`` registration lambdas, and the
``family`` panel axis reproduces the legacy two-panel CLI text
byte-for-byte.
"""

from __future__ import annotations

from typing import Mapping

from repro.analysis.experiments.common import ALL_PROCESSOR_COUNTS, FAMILY_ROW_LABEL, family_sizes
from repro.analysis.load_balance import imbalance_sweep
from repro.analysis.performance import SpeedupStudy
from repro.analysis.tables import format_series, format_table
from repro.expfw.params import Param, ParamSpace
from repro.expfw.spec import ExperimentSpec, RunResult, TrialTemplate, register_spec
from repro.workloads import SCENE_NAMES, build_scene

FAMILIES = ("block", "sli")


def fig5_imbalance(family: str, scale: float, processors: int = 64) -> str:
    """Figure 5 (top): % work imbalance at 64 processors, perfect cache."""
    sizes = family_sizes(family)
    rows = []
    for name in SCENE_NAMES:
        scene = build_scene(name, scale)
        sweep = imbalance_sweep(scene, family, sizes, processors)
        rows.append([name] + [round(sweep[size], 1) for size in sizes])
    prefix = "w" if family == "block" else "l"
    table = format_table(["scene"] + [f"{prefix}{s}" for s in sizes], rows)
    return (
        f"Figure 5 (top, {family}): % imbalance, {processors} processors "
        f"(scale={scale})\n{table}"
    )


def fig5_speedup(family: str, scale: float, scene_name: str = "massive32_1255") -> str:
    """Figure 5 (bottom): perfect-cache speedup vs processors."""
    study = SpeedupStudy(build_scene(scene_name, scale), cache="perfect")
    sweep = study.sweep(family, family_sizes(family), ALL_PROCESSOR_COUNTS)
    rounded = {key: round(value, 2) for key, value in sweep.items()}
    return format_series(
        f"Figure 5 (bottom, {family}): perfect-cache speedup, {scene_name} "
        f"(scale={scale})",
        rounded,
        row_label=FAMILY_ROW_LABEL[family],
    )


def _run_imbalance(params: Mapping[str, object]) -> RunResult:
    return RunResult(
        text=fig5_imbalance(
            params["family"], params["scale"], processors=params["processors"]
        )
    )


def _run_speedup(params: Mapping[str, object]) -> RunResult:
    return RunResult(
        text=fig5_speedup(params["family"], params["scale"], scene_name=params["scene"])
    )


def _speedup_axes(params: Mapping[str, object]) -> dict:
    """Search tile size / SLI height under a perfect cache."""
    return {"size": family_sizes(params["family"])}


FIG5_IMBALANCE = register_spec(
    ExperimentSpec(
        name="fig5-imbalance",
        description="load imbalance, both distributions",
        space=ParamSpace(
            (
                Param.number("scale", 0.25, minimum=0.001, maximum=1.0, help="scene scale"),
                Param.choice("family", "block", FAMILIES, help="distribution family"),
                Param.integer("processors", 64, minimum=1, maximum=1024, help="node count"),
            )
        ),
        runner=_run_imbalance,
        panels={"family": FAMILIES},
    )
)

FIG5_SPEEDUP = register_spec(
    ExperimentSpec(
        name="fig5-speedup",
        description="perfect-cache speedup vs processors",
        space=ParamSpace(
            (
                Param.number("scale", 0.25, minimum=0.001, maximum=1.0, help="scene scale"),
                Param.choice("family", "block", FAMILIES, help="distribution family"),
                Param.choice("scene", "massive32_1255", SCENE_NAMES, help="workload"),
            )
        ),
        runner=_run_speedup,
        panels={"family": FAMILIES},
        trial=TrialTemplate(
            base={"scene": "massive32_1255", "processors": 64, "cache": "perfect"},
            axes=_speedup_axes,
            carry=("scale", "family"),
        ),
    )
)

"""Figure 6: texel-to-fragment locality curves."""

from __future__ import annotations

from repro.analysis.experiments.common import ALL_PROCESSOR_COUNTS, FAMILY_ROW_LABEL, family_sizes
from repro.analysis.experiments.registry import register
from repro.analysis.locality import locality_sweep
from repro.analysis.tables import format_series
from repro.workloads import build_scene


def fig6(scene_name: str, family: str, scale: float) -> str:
    """Figure 6: texel-to-fragment ratio, 16 KB caches, infinite bus."""
    scene = build_scene(scene_name, scale)
    sweep = locality_sweep(scene, family, family_sizes(family), ALL_PROCESSOR_COUNTS)
    rounded = {key: round(value, 3) for key, value in sweep.items()}
    return format_series(
        f"Figure 6: texel/fragment, {scene_name}, {family} (scale={scale})",
        rounded,
        row_label=FAMILY_ROW_LABEL[family],
    )


register("fig6", "texel/fragment locality")(
    lambda scale: "\n\n".join(
        fig6(scene, family, scale)
        for scene in ("massive32_1255", "teapot_full")
        for family in ("block", "sli")
    )
)

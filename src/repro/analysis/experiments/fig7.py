"""Figure 7: the headline speedup sweeps (bandwidth-limited bus).

``fig7_panel`` stays module-level so it pickles for the process pool;
scene panels fan out over ``REPRO_WORKERS`` processes, sharing their
scene/routing/replay artifacts through the pipeline's disk store.

The experiment is declared as an :class:`~repro.expfw.spec.ExperimentSpec`:
``fig7-ratio2`` is no longer a copy-pasted lambda but a derived child
spec (same runner, ``bus_ratio=2.0`` default and a narrower scene
list), and the ``family`` panel axis rebuilds the legacy two-panel CLI
text byte-for-byte.  The trial template is what the auto-search driver
tunes: tile size / SLI height following the family, FIFO depth, and
cache geometry.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.analysis.experiments.common import FAMILY_ROW_LABEL, PROCESSOR_COUNTS, family_sizes
from repro.analysis.performance import SpeedupStudy
from repro.analysis.tables import format_series
from repro.expfw.params import Param, ParamSpace
from repro.expfw.spec import ExperimentSpec, RunResult, TrialTemplate, register_spec
from repro.workloads import SCENE_NAMES, build_scene

FAMILIES = ("block", "sli")

#: Search axes beyond the distribution size (the paper's §4 knobs).
FIFO_DEPTHS = (10, 100, 10000)
CACHE_KILOBYTES = (8, 16, 32)


def fig7_panel(
    scene_name: str, family: str, scale: float, bus_ratio: float = 1.0
) -> Dict[Tuple[int, int], float]:
    """One scene's Figure-7 sweep: {(size, processors): speedup}."""
    study = SpeedupStudy(build_scene(scene_name, scale), cache="lru", bus_ratio=bus_ratio)
    sweep = study.sweep(family, family_sizes(family), PROCESSOR_COUNTS)
    return {key: round(value, 2) for key, value in sweep.items()}


def fig7(
    family: str,
    scale: float,
    bus_ratio: float = 1.0,
    scenes: Iterable[str] = SCENE_NAMES,
    workers: Optional[int] = None,
) -> str:
    """Figure 7: speedups, 16 KB cache, bandwidth-limited bus.

    Scene panels are independent, so they fan out over ``workers``
    processes (default: the ``REPRO_WORKERS`` environment variable).
    """
    from repro.analysis.parallel import keyed_tasks, worker_count

    scenes = list(scenes)
    if workers is None:
        workers = worker_count()
    panels = keyed_tasks(
        fig7_panel,
        [(name, (name, family, scale, bus_ratio)) for name in scenes],
        workers=workers,
    )
    blocks = [
        format_series(
            name,
            panels[name],
            row_label=FAMILY_ROW_LABEL[family],
        )
        for name in scenes
    ]
    header = (
        f"Figure 7 ({family}): speedup, 16KB cache, bus {bus_ratio:g} "
        f"texel/pixel (scale={scale})"
    )
    return header + "\n\n" + "\n\n".join(blocks)


def _run_fig7(params: Mapping[str, object]) -> RunResult:
    return RunResult(
        text=fig7(
            params["family"],
            params["scale"],
            bus_ratio=params["bus_ratio"],
            scenes=params["scenes"],
        )
    )


def _fig7_axes(params: Mapping[str, object]) -> dict:
    """The tunable machine point: size follows the family."""
    return {
        "size": family_sizes(params["family"]),
        "fifo": FIFO_DEPTHS,
        "cache_kb": CACHE_KILOBYTES,
    }


FIG7 = register_spec(
    ExperimentSpec(
        name="fig7",
        description="speedups, 1x bus",
        space=ParamSpace(
            (
                Param.number("scale", 0.25, minimum=0.001, maximum=1.0, help="scene scale"),
                Param.choice("family", "block", FAMILIES, help="distribution family"),
                Param.number("bus_ratio", 1.0, minimum=0.1, maximum=16.0, help="bus texel/pixel"),
                Param.names("scenes", SCENE_NAMES, SCENE_NAMES, help="scene panels"),
            )
        ),
        runner=_run_fig7,
        panels={"family": FAMILIES},
        trial=TrialTemplate(
            base={"scene": "massive32_1255", "processors": 64, "cache": "lru"},
            axes=_fig7_axes,
        ),
    )
)

FIG7_RATIO2 = register_spec(
    FIG7.derive(
        name="fig7-ratio2",
        description="speedups, 2x bus (tech-report companion)",
        defaults={"bus_ratio": 2.0, "scenes": ("massive32_1255", "teapot_full")},
    )
)

"""Figure 7: the headline speedup sweeps (bandwidth-limited bus).

``fig7_panel`` stays module-level so it pickles for the process pool;
scene panels fan out over ``REPRO_WORKERS`` processes, sharing their
scene/routing/replay artifacts through the pipeline's disk store.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.analysis.experiments.common import FAMILY_ROW_LABEL, PROCESSOR_COUNTS, family_sizes
from repro.analysis.experiments.registry import register
from repro.analysis.performance import SpeedupStudy
from repro.analysis.tables import format_series
from repro.workloads import SCENE_NAMES, build_scene


def fig7_panel(
    scene_name: str, family: str, scale: float, bus_ratio: float = 1.0
) -> Dict[Tuple[int, int], float]:
    """One scene's Figure-7 sweep: {(size, processors): speedup}."""
    study = SpeedupStudy(build_scene(scene_name, scale), cache="lru", bus_ratio=bus_ratio)
    sweep = study.sweep(family, family_sizes(family), PROCESSOR_COUNTS)
    return {key: round(value, 2) for key, value in sweep.items()}


def fig7(
    family: str,
    scale: float,
    bus_ratio: float = 1.0,
    scenes: Iterable[str] = SCENE_NAMES,
    workers: Optional[int] = None,
) -> str:
    """Figure 7: speedups, 16 KB cache, bandwidth-limited bus.

    Scene panels are independent, so they fan out over ``workers``
    processes (default: the ``REPRO_WORKERS`` environment variable).
    """
    from repro.analysis.parallel import keyed_tasks, worker_count

    scenes = list(scenes)
    if workers is None:
        workers = worker_count()
    panels = keyed_tasks(
        fig7_panel,
        [(name, (name, family, scale, bus_ratio)) for name in scenes],
        workers=workers,
    )
    blocks = [
        format_series(
            name,
            panels[name],
            row_label=FAMILY_ROW_LABEL[family],
        )
        for name in scenes
    ]
    header = (
        f"Figure 7 ({family}): speedup, 16KB cache, bus {bus_ratio:g} "
        f"texel/pixel (scale={scale})"
    )
    return header + "\n\n" + "\n\n".join(blocks)


register("fig7", "speedups, 1x bus")(
    lambda scale: fig7("block", scale) + "\n\n" + fig7("sli", scale)
)
register("fig7-ratio2", "speedups, 2x bus (tech-report companion)")(
    lambda scale: fig7("block", scale, bus_ratio=2.0, scenes=("massive32_1255", "teapot_full"))
    + "\n\n"
    + fig7("sli", scale, bus_ratio=2.0, scenes=("massive32_1255", "teapot_full"))
)

"""Figure 8: the triangle-buffer study."""

from __future__ import annotations

from repro.analysis.buffering import buffer_sweep
from repro.analysis.experiments.common import BUFFER_SIZES, FIG8_WIDTHS
from repro.analysis.experiments.registry import register
from repro.analysis.tables import format_series
from repro.workloads import build_scene


def fig8(cache: str, scale: float, bus_ratio: float = 2.0) -> str:
    """Figure 8: speedup vs block width and triangle-buffer size."""
    scene = build_scene("truc640", scale)
    sweep = buffer_sweep(
        scene,
        "block",
        sizes=FIG8_WIDTHS,
        buffer_sizes=BUFFER_SIZES,
        num_processors=64,
        cache=cache,
        bus_ratio=bus_ratio,
    )
    rounded = {key: round(value, 2) for key, value in sweep.items()}
    label = "perfect cache" if cache == "perfect" else f"16KB cache + {bus_ratio:g}x bus"
    return format_series(
        f"Figure 8: speedup, truc640, 64P block, {label} (scale={scale})",
        rounded,
        row_label="width",
        column_label="buffer",
    )


register("fig8", "triangle-buffer study")(
    lambda scale: fig8("perfect", scale) + "\n\n" + fig8("lru", scale)
)

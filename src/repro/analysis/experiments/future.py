"""Section-9 future work and the finite-geometry extension."""

from __future__ import annotations

from repro.analysis.experiments.registry import register
from repro.analysis.tables import format_table
from repro.distribution import BlockInterleaved
from repro.workloads import build_scene


def future_dynamic(scale: float, num_processors: int = 16, widths=(8, 16, 32, 64)) -> str:
    """Section-9 future work: static vs idealised dynamic tile assignment."""
    from repro.analysis.dynamic import compare_static_dynamic, render_comparison

    scene = build_scene("massive32_1255", scale)
    rows = compare_static_dynamic(scene, widths, num_processors)
    return render_comparison("massive32_1255", rows, num_processors, scale)


def future_l2_interframe(
    scale: float,
    num_processors: int = 16,
    pans=(0, 8, 32, 96),
    widths=(16, 64),
    frames: int = 4,
    scene_name: str = "quake",
) -> str:
    """Section-9 future work: inter-frame L2 efficiency vs viewpoint pan.

    ``quake`` is the right testbed: its texels are spatially bound to
    the surfaces that use them (unique t/f > 1), so a viewpoint
    translation genuinely moves texture demand between nodes.  Scenes
    with screen-global texture repetition (the massive family) keep
    most of their L2 benefit at any pan, because every node's L2 holds
    the shared texture set regardless of which tiles it owns.
    """
    from repro.analysis.interframe import (
        render_interframe_table,
        replay_sequence,
        warm_frame_ratio,
    )
    from repro.workloads import SCENE_SPECS
    from repro.workloads.sequence import pan_sequence

    rows = []
    for pan in pans:
        for width in widths:
            sequence = pan_sequence(SCENE_SPECS[scene_name], scale, frames, pan)
            traffic = replay_sequence(sequence, BlockInterleaved(num_processors, width))
            rows.append(
                (pan, width, traffic[0].memory_ratio, warm_frame_ratio(traffic))
            )
    return render_interframe_table(rows, scene_name, num_processors, scale)


def extension_geometry_stage(
    scale: float,
    num_processors: int = 16,
    engines=(1, 2, 4, 8, 16),
    geometry_cycles: float = 100.0,
) -> str:
    """Balanced-machine study: when does geometry become the bottleneck?

    The paper idealises the geometry stage (Section 2.3, factor 1).
    This extension gives it a finite rate — round-robin engines at a
    fixed per-triangle cost — and shows how many geometry engines a
    texture-mapping configuration needs before the idealisation holds.
    """
    from repro.core.config import MachineConfig
    from repro.core.machine import simulate_machine
    from repro.core.routing import build_routed_work

    scene = build_scene("massive32_1255", scale)
    dist = BlockInterleaved(num_processors, 16)
    work = build_routed_work(scene, dist, cache_spec="lru")
    ideal = simulate_machine(
        scene, MachineConfig(distribution=dist, cache="lru"), routed=work
    ).cycles
    rows = []
    for count in engines:
        config = MachineConfig(
            distribution=dist,
            cache="lru",
            geometry_engines=count,
            geometry_cycles=geometry_cycles,
        )
        cycles = simulate_machine(scene, config, routed=work).cycles
        rows.append(
            [count, round(cycles), f"{ideal / cycles:.0%}"]
        )
    rows.append(["ideal", round(ideal), "100%"])
    table = format_table(
        ["geometry engines", "frame cycles", "of ideal throughput"], rows
    )
    return (
        f"Extension: finite-rate geometry stage "
        f"({geometry_cycles:g} cycles/triangle/engine), massive32_1255, "
        f"{num_processors}P block16 (scale={scale})\n{table}"
    )


register("future-dynamic", "Sec. 9 future work: dynamic tile assignment")(future_dynamic)
register("future-l2", "Sec. 9 future work: inter-frame L2 vs viewpoint pan")(
    future_l2_interframe
)
register("geometry-stage", "extension: finite-rate geometry stage (balanced machine)")(
    extension_geometry_stage
)

"""The experiment registry: CLI names → (description, runner).

Each per-experiment module registers its entries at import time with
:func:`register`; the CLI and the benchmark harness resolve names
through :data:`EXPERIMENTS` / :func:`resolve`.  Splitting the registry
from the experiments keeps every module independently importable (a
sweep worker importing ``fig7`` does not drag in the prefetch study).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError

#: Registry for the CLI: name -> (description, callable(scale) -> text).
EXPERIMENTS: Dict[str, Tuple[str, Callable[[float], str]]] = {}


def register(name: str, description: str) -> Callable:
    """Decorator registering ``runner(scale) -> str`` under ``name``."""

    def decorator(runner: Callable[[float], str]) -> Callable[[float], str]:
        if name in EXPERIMENTS:
            raise ConfigurationError(f"experiment {name!r} registered twice")
        EXPERIMENTS[name] = (description, runner)
        return runner

    return decorator


def resolve(name: str) -> Tuple[str, Callable[[float], str]]:
    """Look up one experiment, with a helpful error for unknown names."""
    if name not in EXPERIMENTS:
        known = ", ".join(EXPERIMENTS)
        raise ConfigurationError(f"unknown experiment {name!r}; choose from {known}")
    return EXPERIMENTS[name]

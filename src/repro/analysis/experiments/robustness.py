"""Robustness and methodology studies: seeds, CAD contrast, scale."""

from __future__ import annotations

from repro.analysis.experiments.common import BLOCK_WIDTHS
from repro.analysis.experiments.registry import register
from repro.analysis.load_balance import imbalance_percent
from repro.analysis.locality import texel_to_fragment_ratio
from repro.analysis.performance import SpeedupStudy
from repro.analysis.tables import format_table
from repro.distribution import BlockInterleaved, ScanLineInterleaved
from repro.workloads import build_scene


def seed_sensitivity(scale: float, seeds=(104, 1, 2, 3, 4), num_processors: int = 16) -> str:
    """Generator-noise check: do the conclusions survive a reseed?

    The workloads are synthetic, so the headline findings must not
    hinge on one random draw.  Regenerates ``massive32_1255`` under
    several seeds and reports the best block width, its speedup and the
    block-16 texel/fragment ratio per seed.
    """
    from dataclasses import replace as dataclass_replace

    from repro.workloads import SCENE_SPECS
    from repro.workloads.generator import generate_scene

    rows = []
    for seed in seeds:
        spec = dataclass_replace(SCENE_SPECS["massive32_1255"], seed=seed)
        scene = generate_scene(spec, scale=scale)
        study = SpeedupStudy(scene, cache="lru", bus_ratio=1.0)
        best_width, best_speedup = study.best_size(
            "block", BLOCK_WIDTHS, num_processors
        )
        ratio = texel_to_fragment_ratio(
            scene, BlockInterleaved(num_processors, 16)
        )
        rows.append([seed, best_width, round(best_speedup, 2), round(ratio, 3)])
    table = format_table(
        ["seed", "best width", "best speedup", "t/f @ block16"], rows
    )
    return (
        f"Robustness: massive32_1255 regenerated under different seeds, "
        f"{num_processors} processors (scale={scale})\n{table}"
    )


def cad_contrast(scale: float, num_processors: int = 16) -> str:
    """Why the paper rejected SPEC Viewperf (Section 4.2), measured.

    A Viewperf-like CAD frame next to a VR frame: the CAD scene's huge
    magnified-texture triangles leave the cache almost nothing to do
    (texel/fragment near the compulsory floor for every distribution),
    so a texture-cache distribution study run on it would conclude the
    design choice barely matters — which is exactly why the paper built
    its own virtual-reality benchmarks.
    """
    from repro.workloads.generator import generate_scene
    from repro.workloads.scenes import CAD_CONTRAST_SPEC

    cad = generate_scene(CAD_CONTRAST_SPEC, scale=scale)
    vr = build_scene("massive32_1255", scale)
    rows = []
    for scene in (cad, vr):
        stats = scene.statistics()
        ratios = {}
        for label, dist in (
            ("block16", BlockInterleaved(num_processors, 16)),
            ("sli1", ScanLineInterleaved(num_processors, 1)),
        ):
            ratios[label] = texel_to_fragment_ratio(scene, dist)
        spread = (
            ratios["sli1"] / ratios["block16"] if ratios["block16"] else 1.0
        )
        rows.append(
            [
                stats.name,
                round(stats.depth_complexity, 2),
                round(stats.pixels_per_triangle),
                round(stats.unique_texel_to_fragment, 3),
                round(ratios["block16"], 3),
                round(ratios["sli1"], 3),
                f"{spread:.2f}x",
            ]
        )
    table = format_table(
        [
            "scene",
            "depth",
            "px/tri",
            "uniq t/f",
            "t/f block16",
            "t/f sli1 (worst case)",
            "distribution sensitivity",
        ],
        rows,
    )
    return (
        f"Contrast: Viewperf-style CAD frame vs VR frame, "
        f"{num_processors} processors (scale={scale})\n{table}"
    )


def scale_stability(
    scale: float, scales=(0.0625, 0.125, 0.25), num_processors: int = 16
) -> str:
    """Which conclusions survive the scene-scale substitution?

    The reproduction runs reduced frames; this study re-measures the
    headline quantities at several scales so readers can see what is
    scale-stable (texel/fragment regimes, best-width plateau) and what
    shifts (absolute imbalance, buffer knees).  The ``scale`` argument
    is ignored — the sweep IS the scales.
    """
    del scale
    rows = []
    for s in scales:
        scene = build_scene("massive32_1255", s)
        study = SpeedupStudy(scene, cache="lru", bus_ratio=1.0)
        best_width, best = study.best_size("block", BLOCK_WIDTHS, num_processors)
        ratio = texel_to_fragment_ratio(scene, BlockInterleaved(num_processors, 16))
        imbalance = imbalance_percent(scene, BlockInterleaved(num_processors, 16))
        rows.append(
            [
                s,
                f"{scene.width}x{scene.height}",
                best_width,
                round(best, 2),
                round(ratio, 3),
                round(imbalance, 1),
            ]
        )
    table = format_table(
        ["scale", "screen", "best width", "best speedup",
         "t/f @ block16", "imbal% @ block16"],
        rows,
    )
    return (
        f"Methodology: scale stability of the headline metrics, "
        f"massive32_1255, {num_processors} processors\n{table}"
    )


register("seeds", "robustness: conclusions across generator seeds")(seed_sensitivity)
register("cad-contrast", "contrast: Viewperf-style CAD frame vs VR frame (Sec. 4.2)")(
    cad_contrast
)
register("scale-stability", "methodology: headline metrics across scene scales")(
    scale_stability
)

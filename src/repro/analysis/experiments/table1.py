"""Table 1: characteristics of the seven benchmark scenes."""

from __future__ import annotations

from repro.analysis.experiments.registry import register
from repro.analysis.tables import format_table
from repro.workloads import SCENE_NAMES, build_scene


def table1(scale: float) -> str:
    """Table 1: characteristics of the seven benchmark scenes."""
    rows = []
    for name in SCENE_NAMES:
        stats = build_scene(name, scale).statistics()
        rows.append(
            [
                stats.name,
                f"{stats.screen_width}x{stats.screen_height}",
                round(stats.pixels_rendered / 1e6, 3),
                round(stats.depth_complexity, 2),
                stats.num_triangles,
                stats.num_textures,
                round(stats.texture_megabytes, 2),
                round(stats.unique_texel_to_fragment * stats.pixels_rendered * 4 / 2**20, 2),
                round(stats.unique_texel_to_fragment, 3),
            ]
        )
    table = format_table(
        ["scene", "screen", "Mpixels", "depth", "triangles", "textures",
         "alloc MB", "used MB", "uniq t/f"],
        rows,
    )
    return f"Table 1 (scale={scale}): scene characteristics\n{table}"


register("table1", "scene characteristics")(table1)

"""Model validations: routing overlap and latency hiding."""

from __future__ import annotations

from repro.analysis.experiments.registry import register
from repro.analysis.tables import format_table
from repro.workloads import build_scene


def validation_overlap_model(scale: float, tiles=(4, 8, 16, 32, 64)) -> str:
    """Measured routing overlap vs the Chen et al. closed form."""
    from repro.analysis.overlap import overlap_validation

    scene = build_scene("truc640", scale)
    return overlap_validation(scene, tiles)


def validation_prefetch(scale: float, latency: float = 50.0) -> str:
    """Validate the zero-latency assumption (Igehy prefetching).

    The machine model treats memory latency as fully hidden; this sweep
    shows how deep the pixel FIFO must be for that to hold on a real
    miss stream, and that a deep-enough FIFO lands within ~1% of the
    zero-latency model.
    """
    import numpy as np

    from repro.cache.models import make_cache_model
    from repro.cache.stream import replay_fragments
    from repro.core.prefetch import latency_hiding_curve
    from repro.texture.filtering import TrilinearFilter

    scene = build_scene("massive32_1255", scale)
    fragments = scene.fragments()
    tex_filter = TrilinearFilter(scene.memory_layout())
    model = make_cache_model("lru")
    run = replay_fragments(fragments, tex_filter, model)
    # Rebuild the per-fragment miss counts from a second replay pass at
    # fragment granularity using the per-triangle attribution spread
    # evenly — a faithful stand-in for the stream's burst structure is
    # the per-triangle grouping itself.
    counts = np.zeros(len(fragments), dtype=np.int64)
    per_triangle = run.texels_by_triangle // 16
    pixel_counts = fragments.triangle_pixel_counts()
    with np.errstate(divide="ignore", invalid="ignore"):
        rate = np.where(pixel_counts > 0, per_triangle / np.maximum(pixel_counts, 1), 0.0)
    rng = np.random.default_rng(0)
    counts = (rng.random(len(fragments)) < rate[fragments.triangle]).astype(np.int64)

    depths = (1, 2, 4, 8, 16, 32, 64, 128, 256)
    curve = latency_hiding_curve(counts, depths, latency, bus_ratio=2.0)
    table = format_table(
        ["pixel FIFO depth", "slowdown vs zero-latency"],
        [[depth, round(value, 3)] for depth, value in curve.items()],
    )
    return (
        f"Validation: prefetch pixel-FIFO vs {latency:g}-cycle memory "
        f"latency, massive32_1255 miss stream, 2x bus (scale={scale})\n{table}"
    )


register("prefetch", "validation: pixel-FIFO latency hiding (Igehy assumption)")(
    validation_prefetch
)
register("overlap", "validation: routing overlap vs the Chen et al. model")(
    validation_overlap_model
)

"""The distribution question re-asked under virtual texturing.

Figure 5/7 asked which screen-space distribution wins when every node
streams real (fully resident) texture lines.  Virtual texturing
changes the memory system underneath: line addresses go through a
page table, only a fraction of pages are resident, and residency
chases the camera via per-frame feedback.  ``vt-distribution`` sweeps
the same four families over page size × residency fraction and
reports, per cell, each family's cycles/speedup alongside the paging
behaviour (which is distribution-independent by construction — the
table's feedback comes from the submission-order stream, so every
family pages identically and the comparison isolates the
distribution).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.tables import format_table
from repro.expfw.params import Param, ParamSpace
from repro.expfw.spec import ExperimentSpec, RunResult, TrialTemplate, register_spec
from repro.workloads.vt import VT_SCENE_NAMES, require_vt_spec, run_vt_sequence, vt_frames

#: The families Figure 5/7 compared, now over a paged texture system.
VT_FAMILIES = ("block", "bands", "sli", "morton")

#: The per-family size knob at its Figure-7 sweet spot (bands ignores it).
VT_FAMILY_SIZE = {"block": 16, "sli": 2, "morton": 16, "bands": 0}

#: Search axes for the auto-search driver (VT knobs join the machine's).
VT_SEARCH_PAGES = (8, 32)
VT_SEARCH_RESIDENCIES = (0.25, 0.5, 1.0)


def vt_distribution(
    scale: float,
    scenes: Sequence[str] = ("vt-quake",),
    pages: Sequence[int] = (8, 32),
    residencies: Sequence[float] = (0.25, 0.5),
    processors: int = 16,
) -> str:
    """One table per (scene, page size, residency): families compared."""
    blocks = []
    for scene_name in scenes:
        spec = require_vt_spec(scene_name)
        frames = vt_frames(spec, scale)
        for page_lines in pages:
            for residency in residencies:
                rows = []
                for family in VT_FAMILIES:
                    machine = {"family": family, "processors": processors}
                    if VT_FAMILY_SIZE[family]:
                        machine["size"] = VT_FAMILY_SIZE[family]
                    result = run_vt_sequence(
                        spec,
                        machine,
                        scale=scale,
                        page_lines=page_lines,
                        residency=residency,
                        scenes=frames,
                    )
                    rows.append(
                        [
                            result.distribution,
                            round(result.total_cycles),
                            f"{result.final.speedup:.2f}",
                            f"{result.final.miss_rate:.4f}",
                            f"{result.mean_fault_rate:.4f}",
                            result.total_paged_in,
                        ]
                    )
                header = (
                    f"{scene_name}: {page_lines}-line pages, "
                    f"{residency:g} resident, {processors}P "
                    f"({spec.frames}-frame pan, scale={scale})"
                )
                table = format_table(
                    [
                        "distribution",
                        "total cycles",
                        "final speedup",
                        "final miss rate",
                        "mean fault rate",
                        "pages paged in",
                    ],
                    rows,
                )
                blocks.append(f"{header}\n{table}")
    return (
        "VT distribution study: Figure 5/7 re-asked over a paged texture "
        "system\n(residency chases the pan via frame feedback; paging is "
        "identical across\nfamilies, so differences are the distribution's)"
        "\n\n" + "\n\n".join(blocks)
    )


def _run_vt_distribution(params: Mapping[str, object]) -> RunResult:
    scale = params["scale"]
    text = vt_distribution(
        scale,
        scenes=params["scenes"],
        pages=tuple(int(p) for p in params["pages"]),
        residencies=tuple(float(r) for r in params["residencies"]),
        processors=params["processors"],
    )
    return RunResult(text=text)


def _vt_axes(params: Mapping[str, object]) -> dict:
    """The searched point: family, size, cache geometry, VT knobs."""
    return {
        "family": ("block", "sli", "morton"),
        "size": (2, 8, 16),
        "cache_kb": (8, 16),
        "vt_pages": VT_SEARCH_PAGES,
        "vt_residency": VT_SEARCH_RESIDENCIES,
    }


#: String-valued grids for the ``names`` param kind (converted at use).
_PAGE_CHOICES = ("4", "8", "16", "32", "64")
_RESIDENCY_CHOICES = ("0.125", "0.25", "0.5", "0.75", "1.0")

VT_DISTRIBUTION = register_spec(
    ExperimentSpec(
        name="vt-distribution",
        description="distribution families under virtual texturing",
        space=ParamSpace(
            (
                Param.number("scale", 0.25, minimum=0.001, maximum=1.0, help="scene scale"),
                Param.integer("processors", 16, minimum=1, maximum=64, help="node count"),
                Param.names("scenes", ("vt-quake",), VT_SCENE_NAMES, help="VT scenes"),
                Param.names("pages", ("8", "32"), _PAGE_CHOICES, help="page sizes (lines)"),
                Param.names(
                    "residencies", ("0.25", "0.5"), _RESIDENCY_CHOICES,
                    help="resident fractions",
                ),
            )
        ),
        runner=_run_vt_distribution,
        trial=TrialTemplate(
            base={"vt_scene": "vt-quake", "processors": 16, "cache": "lru", "vt_frames": 2},
            axes=_vt_axes,
            carry=("scale",),
        ),
    )
)

"""CSV export of sweep results.

Every experiment driver returns either ``{(row, column): value}``
sweeps or :class:`MachineResult` objects; these helpers flatten both
into CSV so the data can leave the terminal (spreadsheets, gnuplot,
pandas) without adding plotting dependencies to the library.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.core.results import MachineResult


def sweep_to_csv(
    sweep: Dict[Tuple[int, int], float],
    row_label: str = "size",
    column_label: str = "processors",
    value_label: str = "value",
    path: Optional[Union[str, Path]] = None,
) -> str:
    """Write a ``{(row, column): value}`` sweep as long-format CSV.

    Returns the CSV text; also writes it to ``path`` when given.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow([row_label, column_label, value_label])
    for (row, column), value in sorted(sweep.items()):
        writer.writerow([row, column, value])
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


RESULT_FIELDS = (
    "scene_name",
    "distribution",
    "cache_name",
    "bus_ratio",
    "fifo_capacity",
    "num_processors",
    "cycles",
    "speedup",
    "efficiency",
    "texel_to_fragment",
    "imbalance_percent",
)


def results_to_csv(
    results: Iterable[MachineResult],
    path: Optional[Union[str, Path]] = None,
) -> str:
    """One CSV row per machine simulation."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(RESULT_FIELDS)
    for result in results:
        writer.writerow(
            [
                result.scene_name,
                result.distribution,
                result.cache_name,
                result.bus_ratio,
                result.fifo_capacity,
                result.num_processors,
                result.cycles,
                "" if result.speedup is None else result.speedup,
                "" if result.efficiency is None else result.efficiency,
                result.texel_to_fragment,
                result.work_imbalance_percent(),
            ]
        )
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text

"""Terminal visualisation: depth-complexity heatmaps and load bars.

The paper's load-balance argument is spatial — depth complexity is
clustered, so big tiles capture unequal work.  These helpers make that
visible in a terminal: the overdraw field of a scene as an ASCII
heatmap, the ownership pattern of a distribution, and per-node load as
a bar chart.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.results import MachineResult
from repro.distribution.base import Distribution
from repro.errors import ConfigurationError
from repro.geometry.scene import Scene

#: Dark-to-bright shading ramp.
PALETTE = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, max_value: Optional[float] = None) -> str:
    """Render a 2D array as shaded characters (row 0 on top)."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ConfigurationError(f"heatmap needs a 2D array, got shape {values.shape}")
    ceiling = max_value if max_value is not None else float(values.max())
    if ceiling <= 0:
        ceiling = 1.0
    levels = np.clip(values / ceiling, 0.0, 1.0) * (len(PALETTE) - 1)
    indices = np.rint(levels).astype(int)
    return "\n".join("".join(PALETTE[i] for i in row) for row in indices)


def depth_complexity_map(scene: Scene, columns: int = 64, rows: int = 24) -> np.ndarray:
    """Average overdraw per character cell, shape ``(rows, columns)``."""
    if columns < 1 or rows < 1:
        raise ConfigurationError("heatmap needs at least one cell")
    fragments = scene.fragments()
    cell_x = np.minimum(fragments.x * columns // scene.width, columns - 1)
    cell_y = np.minimum(fragments.y * rows // scene.height, rows - 1)
    counts = np.bincount(cell_y * columns + cell_x, minlength=rows * columns)
    pixels_per_cell = (scene.width / columns) * (scene.height / rows)
    return counts.reshape(rows, columns) / pixels_per_cell


def ownership_map(
    distribution: Distribution, width: int, height: int, columns: int = 64, rows: int = 24
) -> str:
    """Character map of tile ownership (one symbol per processor)."""
    symbols = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    xs = (np.arange(columns) * width) // columns
    ys = (np.arange(rows) * height) // rows
    grid_x, grid_y = np.meshgrid(xs, ys)
    owners = distribution.owners(grid_x.ravel(), grid_y.ravel()).reshape(rows, columns)
    return "\n".join(
        "".join(symbols[owner % len(symbols)] for owner in row) for row in owners
    )


def node_load_bars(result: MachineResult, width: int = 50) -> str:
    """Horizontal bars of per-node finish time, busiest marked."""
    finish = result.timings.finish
    peak = finish.max() if len(finish) else 1.0
    if peak <= 0:
        peak = 1.0
    lines = []
    for node, value in enumerate(finish):
        bar = "#" * max(1, int(round(value / peak * width)))
        marker = " <- critical" if node == result.timings.critical_node else ""
        lines.append(f"node {node:3d} |{bar:<{width}}| {value:,.0f}{marker}")
    return "\n".join(lines)

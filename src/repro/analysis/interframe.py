"""Inter-frame L2 texture-cache study (the paper's future work, Sec. 9).

The paper's closing hypothesis: in a parallel machine each node's L2
holds only its own tiles' textures, so if the viewpoint translates by
more than the tile size between frames, a tile's content lands on a
*different* node and its L2 warmth is wasted.  This study measures it:
frames of a panning camera are replayed through persistent per-node
L1+L2 hierarchies, and the metric is memory texels per fragment on the
frames after the first — low when the L2 still holds the frame,
rising toward the cold-frame value as the pan outruns the tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.cache.config import CacheConfig
from repro.cache.hierarchy import DEFAULT_L2, TwoLevelCache
from repro.cache.stream import replay_fragments
from repro.distribution.base import Distribution
from repro.geometry.scene import Scene
from repro.texture.filtering import TrilinearFilter


@dataclass
class FrameTraffic:
    """Per-frame memory/bandwidth outcome, machine-wide."""

    frame: int
    fragments: int
    memory_texels: int
    l1_to_l2_texels: int

    @property
    def memory_ratio(self) -> float:
        """Memory texels per fragment (the L2-efficiency metric)."""
        if self.fragments == 0:
            return 0.0
        return self.memory_texels / self.fragments


def replay_sequence(
    frames: Sequence[Scene],
    distribution: Distribution,
    l1_config: CacheConfig = CacheConfig(),
    l2_config: CacheConfig = DEFAULT_L2,
) -> List[FrameTraffic]:
    """Replay a frame sequence through persistent per-node hierarchies.

    All frames must share one texture table (pan_sequence guarantees
    it).  L1s are cold per frame; L2s stay warm across frames.
    """
    layout = frames[0].memory_layout()
    tex_filter = TrilinearFilter(layout)
    nodes = [
        TwoLevelCache(l1_config, l2_config)
        for _ in range(distribution.num_processors)
    ]
    results: List[FrameTraffic] = []
    for index, frame in enumerate(frames):
        fragments = frame.fragments()
        owners = distribution.owners(fragments.x, fragments.y)
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        starts = np.searchsorted(sorted_owners, np.arange(distribution.num_processors))
        ends = np.searchsorted(sorted_owners, np.arange(distribution.num_processors) + 1)
        memory_texels = 0
        l1_to_l2 = 0
        for node_id, cache in enumerate(nodes):
            cache.reset_l1_only()
            l1_before, l2_before = cache.l1_misses, cache.l2_misses
            rows = order[starts[node_id] : ends[node_id]]
            replay_fragments(
                fragments.select(rows), tex_filter, cache, reset=False
            )
            memory_texels += (cache.l2_misses - l2_before) * cache.texels_per_fetch
            l1_to_l2 += (cache.l1_misses - l1_before) * cache.texels_per_fetch
        results.append(
            FrameTraffic(
                frame=index,
                fragments=len(fragments),
                memory_texels=memory_texels,
                l1_to_l2_texels=l1_to_l2,
            )
        )
    return results


def warm_frame_ratio(traffic: Sequence[FrameTraffic]) -> float:
    """Mean memory texels/fragment over the warm (non-first) frames."""
    warm = [t.memory_ratio for t in traffic[1:]]
    if not warm:
        return traffic[0].memory_ratio if traffic else 0.0
    return float(np.mean(warm))


def render_interframe_table(
    rows: Iterable[tuple],
    scene_name: str,
    num_processors: int,
    scale: float,
) -> str:
    """Render (pan, width, cold, warm) rows in paper style."""
    table = format_table(
        ["pan px/frame", "tile width", "cold frame t/f", "warm frames t/f",
         "L2 benefit"],
        [
            [
                pan,
                width,
                round(cold, 3),
                round(warm, 3),
                f"{1 - warm / cold:.0%}" if cold else "-",
            ]
            for pan, width, cold, warm in rows
        ],
    )
    return (
        f"Future work (Sec. 9): inter-frame L2 efficiency vs viewpoint pan, "
        f"{scene_name}, {num_processors} processors (scale={scale})\n{table}"
    )

"""Load-balance analysis (Figure 5, top row).

Measures the work distribution over processors assuming a perfect
texture cache, exactly as Section 5 of the paper does: the work of a
node is the sum over its routed triangles of ``max(25, pixels)``, and
the imbalance is the percent difference between the busiest and the
average processor.
"""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from repro.core.config import DEFAULT_SETUP_CYCLES
from repro.core.routing import build_routed_work
from repro.distribution.base import Distribution
from repro.distribution.block import BlockInterleaved
from repro.distribution.sli import ScanLineInterleaved
from repro.errors import ConfigurationError
from repro.geometry.scene import Scene


def work_distribution(
    scene: Scene,
    distribution: Distribution,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
) -> np.ndarray:
    """Per-node work (cycles, perfect cache) under a distribution."""
    work = build_routed_work(
        scene, distribution, cache_spec="perfect", setup_cycles=setup_cycles
    )
    return work.node_work


def imbalance_percent(
    scene: Scene,
    distribution: Distribution,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
) -> float:
    """Percent extra work of the busiest node over the average node."""
    node_work = work_distribution(scene, distribution, setup_cycles)
    average = node_work.mean()
    if average == 0:
        return 0.0
    return float((node_work.max() / average - 1.0) * 100.0)


def make_distribution(family: str, num_processors: int, size: int) -> Distribution:
    """Build a distribution from the sweep vocabulary.

    ``family`` is ``"block"`` (size == block width in pixels) or
    ``"sli"`` (size == adjacent lines per group).
    """
    if family == "block":
        return BlockInterleaved(num_processors, size)
    if family == "sli":
        return ScanLineInterleaved(num_processors, size)
    raise ConfigurationError(f"unknown distribution family {family!r}")


def imbalance_sweep(
    scene: Scene,
    family: str,
    sizes: Iterable[int],
    num_processors: int,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
) -> Dict[int, float]:
    """Imbalance for each tile size of a family — one Figure-5 bar group."""
    return {
        size: imbalance_percent(
            scene, make_distribution(family, num_processors, size), setup_cycles
        )
        for size in sizes
    }

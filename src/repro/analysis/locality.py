"""Texel-locality analysis (Figure 6).

The paper's locality experiment: simulate every node's 16 KB cache with
an infinite-bandwidth bus and report the machine-wide *texel-to-fragment
ratio* — external texels fetched per fragment drawn.  Splitting the
image over more processors cuts a cache line's reuse (Figure 2), so the
ratio grows as tiles shrink or processors multiply; a scene whose whole
working set fits in the *combined* caches bends the other way.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.cache.config import CacheConfig
from repro.analysis.load_balance import make_distribution
from repro.core.routing import build_routed_work
from repro.distribution.base import Distribution
from repro.distribution.single import SingleProcessor
from repro.geometry.scene import Scene


def texel_to_fragment_ratio(
    scene: Scene,
    distribution: Distribution,
    cache_config: Optional[CacheConfig] = None,
    layout=None,
) -> float:
    """Machine-wide external texels per fragment for one configuration.

    ``layout`` overrides the block-linear texture layout (ablations).
    """
    work = build_routed_work(
        scene, distribution, cache_spec="lru", cache_config=cache_config, layout=layout
    )
    return work.cache.texel_to_fragment


def locality_sweep(
    scene: Scene,
    family: str,
    sizes: Iterable[int],
    processor_counts: Iterable[int],
    cache_config: Optional[CacheConfig] = None,
) -> Dict[Tuple[int, int], float]:
    """Ratio for every (size, processors) point — one Figure-6 panel."""
    results: Dict[Tuple[int, int], float] = {}
    solo_ratio: Optional[float] = None
    for size in sizes:
        for count in processor_counts:
            if count == 1:
                # One processor renders the whole screen whatever the
                # tile size; compute that ratio once per scene.
                if solo_ratio is None:
                    solo_ratio = texel_to_fragment_ratio(
                        scene, SingleProcessor(), cache_config
                    )
                results[(size, count)] = solo_ratio
                continue
            distribution = make_distribution(family, count, size)
            results[(size, count)] = texel_to_fragment_ratio(
                scene, distribution, cache_config
            )
    return results

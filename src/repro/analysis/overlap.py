"""Primitive-overlap model validation (Chen et al. / Molnar).

Section 2.3 cites analytical models of primitive overlap in bucket
rendering: a triangle whose bounding box spans ``w x h`` pixels on a
grid of ``T x T`` tiles overlaps, in expectation over placement,

    O(w, h, T) = (w / T + 1) * (h / T + 1)

tiles.  The simulator measures overlap directly (bounding-box routing
against the identity tile grid); this module computes both sides so the
routing machinery is validated against the published closed form —
and so users can reason analytically about the setup overhead of a
tile size before running a simulation.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.analysis.tables import format_table
from repro.core.routing import route_triangles
from repro.distribution.assigned import TileGrid
from repro.errors import ConfigurationError
from repro.geometry.scene import Scene


def predicted_overlap(bbox_w: float, bbox_h: float, tile: int) -> float:
    """Expected tiles overlapped by one box under random placement."""
    if tile < 1:
        raise ConfigurationError(f"tile size must be >= 1, got {tile}")
    return (bbox_w / tile + 1.0) * (bbox_h / tile + 1.0)


def scene_predicted_overlap(scene: Scene, tile: int) -> float:
    """Mean predicted overlap over a scene's triangle boxes."""
    if scene.num_triangles == 0:
        return 0.0
    total = 0.0
    for triangle in scene.triangles:
        min_x, min_y, max_x, max_y = triangle.bounding_box()
        width = min(max_x, scene.width) - max(min_x, 0.0)
        height = min(max_y, scene.height) - max(min_y, 0.0)
        total += predicted_overlap(max(width, 0.0), max(height, 0.0), tile)
    return total / scene.num_triangles


def scene_measured_overlap(scene: Scene, tile: int) -> float:
    """Mean tiles the router actually sends each triangle to."""
    if scene.num_triangles == 0:
        return 0.0
    grid = TileGrid(tile, scene.width, scene.height)
    routed = route_triangles(scene, grid)
    return float(np.mean([len(nodes) for nodes in routed]))


def overlap_validation(scene: Scene, tiles: Iterable[int]) -> str:
    """Predicted vs measured mean overlap per tile size, as text."""
    rows: List[list] = []
    for tile in tiles:
        predicted = scene_predicted_overlap(scene, tile)
        measured = scene_measured_overlap(scene, tile)
        error = (measured / predicted - 1.0) if predicted else 0.0
        rows.append([tile, round(predicted, 3), round(measured, 3), f"{error:+.1%}"])
    table = format_table(
        ["tile", "predicted overlap", "measured overlap", "error"], rows
    )
    return (
        f"Overlap-model validation (Chen et al.), {scene.name}: "
        f"mean tiles per triangle\n{table}"
    )

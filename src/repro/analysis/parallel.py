"""Multi-process sweep execution.

A full-scale (``REPRO_SCALE=1.0``) Figure-7 run is hundreds of
independent cache replays; this helper fans the per-scene panels out
over worker processes.  Workers rebuild scenes from their (name,
scale) identity — scenes are deterministic — so nothing heavyweight is
pickled.

Before pooling, the parent spills its in-memory pipeline artifacts to
a shared on-disk store (creating a temporary one when
``REPRO_ARTIFACT_DIR`` is unset) so workers hydrate already-computed
scene/routing/replay stages instead of recomputing them, and artifacts
computed by one worker are visible to the others.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Environment variable selecting the worker count for experiments.
WORKERS_ENV_VAR = "REPRO_WORKERS"


def worker_count() -> int:
    """Worker processes for sweeps (0 = run inline), from the env."""
    raw = os.environ.get(WORKERS_ENV_VAR)
    if raw is None:
        return 0
    try:
        workers = int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{WORKERS_ENV_VAR} must be an int, got {raw!r}") from exc
    if workers < 0:
        raise ConfigurationError(f"{WORKERS_ENV_VAR} must be >= 0, got {workers}")
    return workers


def run_tasks(
    fn: Callable,
    argument_tuples: Sequence[Tuple],
    workers: int = 0,
) -> List:
    """Apply ``fn`` to each argument tuple, optionally across processes.

    Results come back in submission order.  ``fn`` must be a
    module-level callable (picklable) when ``workers > 0``.
    """
    if workers <= 1:
        return [fn(*arguments) for arguments in argument_tuples]
    from repro import pipeline

    pipeline.ensure_shared_store()
    pipeline.store().flush_to_disk()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(fn, *arguments) for arguments in argument_tuples]
        return [future.result() for future in futures]


def keyed_tasks(
    fn: Callable,
    keyed_arguments: Iterable[Tuple[object, Tuple]],
    workers: int = 0,
) -> Dict:
    """Like :func:`run_tasks` but returns ``{key: result}``."""
    keyed = list(keyed_arguments)
    results = run_tasks(fn, [arguments for _key, arguments in keyed], workers)
    return {key: result for (key, _), result in zip(keyed, results)}

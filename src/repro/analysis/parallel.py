"""Multi-process sweep execution.

A full-scale (``REPRO_SCALE=1.0``) Figure-7 run is hundreds of
independent cache replays; this helper fans the per-scene panels out
over worker processes.  Workers rebuild scenes from their (name,
scale) identity — scenes are deterministic — so nothing heavyweight is
pickled.

Before pooling, the parent spills its in-memory pipeline artifacts to
a shared on-disk store (creating a temporary one when
``REPRO_ARTIFACT_DIR`` is unset) so workers hydrate already-computed
scene/routing/replay stages instead of recomputing them, and artifacts
computed by one worker are visible to the others.

Failure semantics: a task that raises gets its argument tuple attached
to the exception (``exc.failing_arguments``) so the failing sweep point
is identifiable; a worker process that dies (``BrokenProcessPool``)
degrades the sweep to inline execution with a warning instead of
crashing it.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Environment variable selecting the worker count for experiments.
WORKERS_ENV_VAR = "REPRO_WORKERS"


def parse_worker_count(raw, label: str = "--workers") -> int:
    """Validate a worker count (int >= 0); ``label`` names the source.

    Shared by the CLI's ``--workers`` flag and the ``REPRO_WORKERS``
    environment variable so both reject bad values identically.
    """
    try:
        workers = int(raw)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{label} must be an int, got {raw!r}") from exc
    if workers < 0:
        raise ConfigurationError(f"{label} must be >= 0, got {workers}")
    return workers


def worker_count() -> int:
    """Worker processes for sweeps (0 = run inline), from the env."""
    raw = os.environ.get(WORKERS_ENV_VAR)
    if raw is None:
        return 0
    return parse_worker_count(raw, label=WORKERS_ENV_VAR)


def share_artifacts() -> None:
    """Spill the parent's pipeline artifacts to the shared disk tier.

    Guarantees a ``REPRO_ARTIFACT_DIR`` exists (exported through the
    environment so child processes inherit it) and flushes every
    disk-eligible memory entry, so workers hydrate already-computed
    stage prefixes instead of rebuilding them.  Called before any
    process pool is created — both by :func:`run_tasks` and by the
    experiment job service's supervised pool.
    """
    from repro import pipeline

    pipeline.ensure_shared_store()
    pipeline.store().flush_to_disk()


def run_tasks(
    fn: Callable,
    argument_tuples: Sequence[Tuple],
    workers: int = 0,
) -> List:
    """Apply ``fn`` to each argument tuple, optionally across processes.

    Results come back in submission order.  ``fn`` must be a
    module-level callable (picklable) when ``workers > 0``.  If a task
    raises, the exception propagates with the failing argument tuple
    attached as ``exc.failing_arguments``; if the pool itself breaks
    (a worker was killed), the sweep reruns inline with a warning.
    """
    if workers <= 1:
        return _run_inline(fn, argument_tuples)
    share_artifacts()
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (arguments, pool.submit(fn, *arguments))
                for arguments in argument_tuples
            ]
            results = []
            for arguments, future in futures:
                try:
                    results.append(future.result())
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    exc.failing_arguments = arguments
                    raise
            return results
    except BrokenProcessPool:
        warnings.warn(
            "sweep worker pool died; rerunning the sweep inline",
            RuntimeWarning,
            stacklevel=2,
        )
        return _run_inline(fn, argument_tuples)


def _run_inline(fn: Callable, argument_tuples: Sequence[Tuple]) -> List:
    results = []
    for arguments in argument_tuples:
        try:
            results.append(fn(*arguments))
        except Exception as exc:
            exc.failing_arguments = arguments
            raise
    return results


def keyed_tasks(
    fn: Callable,
    keyed_arguments: Iterable[Tuple[object, Tuple]],
    workers: int = 0,
) -> Dict:
    """Like :func:`run_tasks` but returns ``{key: result}``."""
    keyed = list(keyed_arguments)
    results = run_tasks(fn, [arguments for _key, arguments in keyed], workers)
    return {key: result for (key, _), result in zip(keyed, results)}

"""Speedup studies (Figure 5 bottom, Figure 7, and the ratio-2 variant).

A :class:`SpeedupStudy` fixes a scene, cache model and bus ratio, and
memoises the single-processor baseline so a whole sweep of
distributions pays for it once.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

from repro.analysis.load_balance import make_distribution
from repro.cache.config import CacheConfig
from repro.core.config import DEFAULT_FIFO_CAPACITY, MachineConfig
from repro.core.machine import simulate_machine
from repro.core.results import MachineResult
from repro.distribution.base import Distribution
from repro.distribution.single import SingleProcessor
from repro.geometry.scene import Scene


class SpeedupStudy:
    """Speedups of one scene over many distributions, shared baseline."""

    def __init__(
        self,
        scene: Scene,
        cache: Union[str, object] = "lru",
        cache_config: Optional[CacheConfig] = None,
        bus_ratio: float = 1.0,
        fifo_capacity: int = DEFAULT_FIFO_CAPACITY,
    ) -> None:
        self.scene = scene
        self.cache = cache
        self.cache_config = cache_config
        self.bus_ratio = bus_ratio
        self.fifo_capacity = fifo_capacity
        self._baseline: Optional[float] = None

    def _config(self, distribution: Distribution) -> MachineConfig:
        return MachineConfig(
            distribution=distribution,
            cache=self.cache,
            cache_config=self.cache_config,
            bus_ratio=self.bus_ratio,
            fifo_capacity=self.fifo_capacity,
        )

    @property
    def baseline_cycles(self) -> float:
        """Frame time of the one-processor machine (memoised)."""
        if self._baseline is None:
            result = simulate_machine(self.scene, self._config(SingleProcessor()))
            self._baseline = result.cycles
        return self._baseline

    def run(self, distribution: Distribution) -> MachineResult:
        """Simulate one distribution, with the baseline attached."""
        return simulate_machine(
            self.scene, self._config(distribution), baseline_cycles=self.baseline_cycles
        )

    def speedup(self, distribution: Distribution) -> float:
        result = self.run(distribution)
        if result.cycles == 0:
            return float(distribution.num_processors)
        return self.baseline_cycles / result.cycles

    def sweep(
        self,
        family: str,
        sizes: Iterable[int],
        processor_counts: Iterable[int],
    ) -> Dict[Tuple[int, int], float]:
        """Speedup at every (size, processors) point — a Figure-7 panel."""
        return {
            (size, count): self.speedup(make_distribution(family, count, size))
            for size in sizes
            for count in processor_counts
        }

    def best_size(
        self, family: str, sizes: Iterable[int], num_processors: int
    ) -> Tuple[int, float]:
        """The tile size with the highest speedup, and that speedup."""
        sweep = self.sweep(family, sizes, [num_processors])
        best = max(sweep.items(), key=lambda item: item[1])
        (size, _count), value = best
        return size, value


def speedup_sweep(
    scene: Scene,
    family: str,
    sizes: Iterable[int],
    processor_counts: Iterable[int],
    cache: Union[str, object] = "lru",
    bus_ratio: float = 1.0,
    cache_config: Optional[CacheConfig] = None,
) -> Dict[Tuple[int, int], float]:
    """One-shot convenience wrapper over :class:`SpeedupStudy`."""
    study = SpeedupStudy(
        scene, cache=cache, cache_config=cache_config, bus_ratio=bus_ratio
    )
    return study.sweep(family, sizes, processor_counts)

"""PPM image export — figures without plotting dependencies.

Binary PPM (P6) is the simplest raster format there is; these helpers
turn the library's spatial data — overdraw fields, ownership maps,
per-pixel work — into image files any viewer opens, keeping the
library free of matplotlib.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import ConfigurationError
from repro.geometry.scene import Scene


def write_ppm(path: Union[str, Path], rgb: np.ndarray) -> None:
    """Write an ``(height, width, 3)`` uint8 array as binary PPM."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ConfigurationError(f"PPM needs (h, w, 3) data, got shape {rgb.shape}")
    if rgb.dtype != np.uint8:
        rgb = np.clip(rgb, 0, 255).astype(np.uint8)
    height, width, _ = rgb.shape
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    Path(path).write_bytes(header + rgb.tobytes())


def read_ppm(path: Union[str, Path]) -> np.ndarray:
    """Read back a binary PPM written by :func:`write_ppm`."""
    data = Path(path).read_bytes()
    fields = data.split(maxsplit=4)
    if fields[0] != b"P6":
        raise ConfigurationError(f"{path}: not a binary PPM file")
    width, height, maxval = int(fields[1]), int(fields[2]), int(fields[3])
    if maxval != 255:
        raise ConfigurationError(f"{path}: unsupported max value {maxval}")
    pixels = np.frombuffer(fields[4], dtype=np.uint8, count=width * height * 3)
    return pixels.reshape(height, width, 3)


def heat_colormap(values: np.ndarray, ceiling: float = 0.0) -> np.ndarray:
    """Black -> red -> yellow -> white heat ramp over a 2D field."""
    values = np.asarray(values, dtype=float)
    top = ceiling if ceiling > 0 else float(values.max()) or 1.0
    t = np.clip(values / top, 0.0, 1.0)
    r = np.clip(3.0 * t, 0, 1)
    g = np.clip(3.0 * t - 1.0, 0, 1)
    b = np.clip(3.0 * t - 2.0, 0, 1)
    return (np.stack([r, g, b], axis=-1) * 255).astype(np.uint8)


def _node_palette(count: int) -> np.ndarray:
    """Deterministic, visually spread RGB colours for node ids."""
    hues = (np.arange(count) * 0.61803398875) % 1.0
    saturation, value = 0.65, 0.95
    i = np.floor(hues * 6).astype(int)
    f = hues * 6 - i
    p = value * (1 - saturation)
    q = value * (1 - f * saturation)
    t = value * (1 - (1 - f) * saturation)
    v = np.full(count, value)
    lookup = {
        0: (v, t, np.full(count, p)),
        1: (q, v, np.full(count, p)),
        2: (np.full(count, p), v, t),
        3: (np.full(count, p), q, v),
        4: (t, np.full(count, p), v),
        5: (v, np.full(count, p), q),
    }
    rgb = np.empty((count, 3))
    for sector, (r, g, b) in lookup.items():
        mask = (i % 6) == sector
        rgb[mask, 0] = r[mask]
        rgb[mask, 1] = g[mask]
        rgb[mask, 2] = b[mask]
    return (rgb * 255).astype(np.uint8)


def owner_map_image(distribution: Distribution, width: int, height: int) -> np.ndarray:
    """Colour image of pixel ownership under a distribution."""
    owners = distribution.owner_map(width, height)
    palette = _node_palette(distribution.num_processors)
    return palette[owners]


def overdraw_image(scene: Scene, ceiling: float = 0.0) -> np.ndarray:
    """Per-pixel overdraw of a scene as a heat image."""
    fragments = scene.fragments()
    counts = np.bincount(
        fragments.y.astype(np.int64) * scene.width + fragments.x,
        minlength=scene.screen_pixels,
    ).reshape(scene.height, scene.width)
    return heat_colormap(counts, ceiling)


def save_owner_map(distribution: Distribution, width: int, height: int, path) -> None:
    """Render and write a distribution's ownership image."""
    write_ppm(path, owner_map_image(distribution, width, height))


def save_overdraw(scene: Scene, path, ceiling: float = 0.0) -> None:
    """Render and write a scene's overdraw heat image."""
    write_ppm(path, overdraw_image(scene, ceiling))

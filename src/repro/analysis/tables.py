"""Plain-text rendering of experiment output.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and uniform.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def _stringify(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned monospace table."""
    text_rows: List[List[str]] = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    title: str,
    series: Dict[Tuple[int, int], float],
    row_label: str = "size",
    column_label: str = "processors",
) -> str:
    """Render a {(row, column): value} sweep as a matrix with a title.

    This is the shape every figure sweep produces: tile size down the
    rows, processor count across the columns.
    """
    row_keys = sorted({key[0] for key in series})
    column_keys = sorted({key[1] for key in series})
    headers = [f"{row_label}\\{column_label}"] + [str(c) for c in column_keys]
    rows = []
    for row_key in row_keys:
        row: List = [row_key]
        for column_key in column_keys:
            value = series.get((row_key, column_key))
            row.append("-" if value is None else value)
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"

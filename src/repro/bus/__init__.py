"""Texture memory-bus model."""

from repro.bus.bus import BusModel, INFINITE_BANDWIDTH

__all__ = ["BusModel", "INFINITE_BANDWIDTH"]

"""Bandwidth-limited texture bus.

Following Section 3.1 of the paper, the bus is characterised by a
single figure: the maximum *texel-to-fragment ratio* it can sustain —
texels delivered per pixel-drawing cycle.  (Latency never appears
because prefetching hides it completely; only sustained bandwidth can
stall the engine.)  The paper evaluates ratios of 1 and 2; a ratio of 1
corresponds to a 400 Mpixel/s engine on a 64-bit 200 MHz SDRAM bus.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

#: Sentinel ratio for the infinite-bandwidth bus used by the locality
#: study (Figure 6), where only miss counts matter.
INFINITE_BANDWIDTH = math.inf


class BusModel:
    """Tracks the busy horizon of one node's private texture bus."""

    def __init__(self, texels_per_cycle: float) -> None:
        if texels_per_cycle <= 0:
            raise ConfigurationError(
                f"bus bandwidth must be positive, got {texels_per_cycle}"
            )
        self.texels_per_cycle = texels_per_cycle
        self.free_at: float = 0.0
        #: Lifetime accounting (instrumentation; never affects timing).
        self.transfers = 0
        self.texels_delivered = 0
        self.busy_cycles: float = 0.0

    def reset(self) -> None:
        self.free_at = 0.0
        self.transfers = 0
        self.texels_delivered = 0
        self.busy_cycles = 0.0

    def transfer_cycles(self, texels: int) -> float:
        """Cycles needed to move ``texels`` across the bus."""
        if texels == 0 or math.isinf(self.texels_per_cycle):
            return 0.0
        return texels / self.texels_per_cycle

    def request(self, start: float, texels: int) -> float:
        """Queue a transfer issued at ``start``; returns completion time.

        Transfers serialise on the bus, so a burst of misses backs the
        bus up — the mechanism behind the paper's remark that average
        bandwidth under the bus limit can still saturate it in bursts.
        """
        begin = max(self.free_at, start)
        cycles = self.transfer_cycles(texels)
        self.free_at = begin + cycles
        self.transfers += 1
        self.texels_delivered += texels
        self.busy_cycles += cycles
        return self.free_at

    def totals(self) -> dict:
        """Lifetime transfer accounting, for :func:`publish_bus_totals`."""
        return {
            "transfers": self.transfers,
            "texels": self.texels_delivered,
            "busy_cycles": self.busy_cycles,
        }


def publish_bus_totals(registry, totals: dict, **labels) -> None:
    """Add one machine run's bus totals into the metrics registry.

    ``registry`` is a :class:`repro.obs.MetricsRegistry`; counters are
    cumulative across runs, per the usual metrics semantics.
    """
    for field, amount in totals.items():
        counter = registry.counter(f"bus.{field}")
        if labels:
            counter = counter.labels(**labels)
        counter.inc(amount)

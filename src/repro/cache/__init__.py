"""Texture-cache simulator.

Implements the cache organisation of Hakura & Gupta that the paper
fixes for every node: 16 KB, 4-way set-associative, 64-byte lines
holding one 4x4 texel block, LRU replacement — plus the *perfect* cache
(always hits) used for the load-balancing study and the *cacheless*
machine (8 texels fetched per fragment) used as the bandwidth baseline.
"""

from repro.cache.config import CacheConfig, DEFAULT_CACHE
from repro.cache.lru import LruCache
from repro.cache.models import NoCache, PerfectCache, TextureCacheModel, make_cache_model
from repro.cache.stats import CacheRunResult
from repro.cache.stream import replay_fragments
from repro.cache.hierarchy import DEFAULT_L2, TwoLevelCache

__all__ = [
    "CacheConfig",
    "DEFAULT_CACHE",
    "LruCache",
    "PerfectCache",
    "NoCache",
    "TextureCacheModel",
    "make_cache_model",
    "CacheRunResult",
    "replay_fragments",
    "TwoLevelCache",
    "DEFAULT_L2",
]

"""Chunk-parallel vectorized LRU replay.

:meth:`repro.cache.lru.LruCache.simulate` historically replayed each
set's substream with a per-access Python loop — the dominant cost of
every cache run.  This module replaces that loop with numpy passes
built on three exact identities (derivations in DESIGN.md §10):

1. **Self-synchronization.**  A true-LRU set's stack after any access
   sequence is exactly its W most-recently-used *distinct* lines in
   recency order — independent of hit/miss outcomes and of whatever
   the stack held before those W distinct lines appeared.
2. **Chunk decomposition.**  Splitting a set's substream into chunks,
   the stack after a chunk equals the chunk's own recency list (as if
   replayed from an empty stack) merged in front of the pre-chunk
   stack's not-reaccessed lines, truncated to W.  So every (set, chunk)
   group can be replayed from an *empty* stack in parallel, and only
   the short merge is sequential across chunks.
3. **Boundary distances.**  Within a group, any access after the first
   occurrence of its line has a stack distance fully determined by the
   group's own history, so the empty-stack replay classifies it
   exactly.  A group-first access to line L hits iff L sits at depth k
   in the group's start stack and ``A + |{lines above L in the start
   stack not reaccessed in-group before this access}| < W`` where A is
   the number of distinct in-group lines seen so far — the start-stack
   lines already reaccessed would otherwise be double counted.

The replay therefore runs three vector stages: a round-based replay of
all (set, chunk) groups at once from empty stacks, a short sequential
stitch that merges per-chunk recency lists into running per-set stacks,
and one batch pass resolving every group-first access against its
recorded start stack.  The scalar path in ``lru.py`` remains the
bit-exact reference; property tests assert equivalence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

#: Deduped accesses per chunk.  More chunks widen the parallel replay
#: (more groups per round, fewer rounds) but add boundary accesses and
#: merge-scan work.
CHUNK_TARGET_LEN = 8192

#: Once fewer than this many groups still have unreplayed accesses, the
#: round loop hands the stragglers to a scalar finish — per-call numpy
#: overhead would dominate such narrow rounds.
MIN_ROUND_WIDTH = 64

_PAD = np.int64(-1)


def replay(
    deduped: np.ndarray,
    num_sets: int,
    ways: int,
    initial: Dict[int, List[int]],
) -> Optional[Tuple[np.ndarray, Dict[int, List[int]]]]:
    """Vectorized equivalent of the scalar per-set LRU replay.

    ``deduped`` is the access stream with consecutive duplicates
    already collapsed; ``initial`` is the current MRU-first content of
    each set (not mutated).  Returns the per-access miss mask and the
    replacement set contents, or ``None`` when the stream needs the
    scalar reference path (negative lines, or address ranges whose
    sort keys would overflow int64).
    """
    n = int(len(deduped))
    if n == 0:
        return np.zeros(0, dtype=bool), {k: list(v) for k, v in initial.items()}
    if int(deduped.min()) < 0:
        return None

    sets_total = int(num_sets)
    width = int(ways)
    chunk_len = int(CHUNK_TARGET_LEN)
    chunks = max(1, -(-n // chunk_len))

    max_line = int(deduped.max())
    # Line-major boundary keys are line * chunks + chunk; guard the
    # int64 arithmetic for both the stream and the start stacks.
    key_cap = 2**62 // chunks
    if max_line >= key_cap:
        return None
    for ways_list in initial.values():
        for held in ways_list:
            if held < 0 or held >= key_cap:
                return None

    if sets_total & (sets_total - 1) == 0:
        line_sets = deduped & (sets_total - 1)
    else:
        line_sets = deduped % sets_total
    positions = np.arange(n, dtype=np.int32)
    if chunk_len & (chunk_len - 1) == 0:
        chunk_id = positions >> (chunk_len.bit_length() - 1)
    else:
        chunk_id = positions // chunk_len

    # Work order: stably sorting by *set* alone yields exactly the
    # stable sort by (set, chunk) group id — chunk ids are already
    # non-decreasing in stream order — and set indices are narrow
    # enough for numpy's radix pass (stable sort of <= 16-bit keys).
    if sets_total <= 256:
        sort_sets = line_sets.astype(np.uint8)
    elif sets_total <= 65536:
        sort_sets = line_sets.astype(np.uint16)
    elif sets_total < 2**31:
        sort_sets = line_sets.astype(np.int32)
    else:
        sort_sets = line_sets
    order = np.argsort(sort_sets, kind="stable")
    ws = sort_sets[order]
    wl = deduped[order]
    wc = chunk_id[order]

    bounds = np.flatnonzero((ws[1:] != ws[:-1]) | (wc[1:] != wc[:-1])) + 1
    gstarts = np.concatenate(([0], bounds))
    counts = np.diff(np.concatenate((gstarts, [n])))
    num_groups = len(gstarts)
    gids = ws[gstarts].astype(np.int64) * chunks + wc[gstarts]

    # First occurrence of each (group, line) pair from one stable sort
    # by line value.  A (group, line) pair maps 1:1 to (line, chunk) —
    # the line fixes the set — and ties keep work order, chunk
    # ascending, so ``line * chunks + chunk`` comes out sorted: the
    # boundary pass below can binary-search it directly.
    if max_line <= 65535:
        by_key = np.argsort(wl.astype(np.uint16), kind="stable")
    else:
        by_key = np.argsort(wl, kind="stable")
    keys_sorted = wl[by_key].astype(np.int64) * chunks + wc[by_key]
    fo_sorted = np.empty(n, dtype=bool)
    fo_sorted[0] = True
    np.not_equal(keys_sorted[1:], keys_sorted[:-1], out=fo_sorted[1:])
    first_occ = np.empty(n, dtype=bool)
    first_occ[by_key] = fo_sorted
    # In-group rank of each first occurrence, without materialising a
    # full per-access rank array: rank = position - its group's start.
    fo_positions = by_key[fo_sorted]
    fo_keys = keys_sorted[fo_sorted]
    fo_ranks = fo_positions - gstarts[
        np.searchsorted(gstarts, fo_positions, side="right") - 1
    ]

    # Distinct in-group lines seen before each access (exclusive),
    # needed only at group-first accesses.
    fo_cum = np.cumsum(first_occ)
    fo_cum -= first_occ

    # -- phase 1: replay every group from an empty stack ----------------
    # Round r touches each group's r-th access; sorting groups by length
    # makes the still-active groups a shrinking prefix.  The stack is
    # kept transposed — one contiguous row per way — so each round runs
    # a handful of 1-D column ops instead of 2-D reductions: an access
    # hits iff some way matches, and way k inherits way k-1's line
    # exactly while no shallower way has matched.
    by_len = np.argsort(-counts, kind="stable")
    starts_l = gstarts[by_len]
    counts_l = counts[by_len]
    neg_counts = -counts_l
    wl_narrow = wl.astype(np.int32, copy=False) if max_line < 2**31 else wl
    stack = np.full((width, num_groups), _PAD, dtype=wl_narrow.dtype)
    miss = np.zeros(n, dtype=bool)
    cols = np.arange(width)

    r = 0
    max_rounds = int(counts_l[0])
    while r < max_rounds:
        active = int(np.searchsorted(neg_counts, -(r + 1), side="right"))
        if active == 0:
            break
        if active < MIN_ROUND_WIDTH:
            _finish_scalar(stack, miss, wl, starts_l, counts_l, active, r, width)
            break
        at_r = starts_l[:active] + r
        lines_r = wl_narrow[at_r]
        matched = [stack[k, :active] == lines_r for k in range(width)]
        # shifts[k-1]: no way shallower than k matched, so way k
        # inherits way k-1's line.  Writing deepest-first needs no
        # copies of the displaced lines.
        seen = matched[0].copy()
        shifts = [~seen]
        for k in range(1, width - 1):
            seen |= matched[k]
            shifts.append(~seen)
        hit = seen | matched[width - 1] if width > 1 else seen
        for k in range(width - 1, 0, -1):
            stack[k, :active] = np.where(
                shifts[k - 1], stack[k - 1, :active], stack[k, :active]
            )
        stack[0, :active] = lines_r
        miss[at_r] = ~hit
        r += 1

    # -- phase 2: merge per-chunk recency lists into per-set stacks -----
    # Stack merge is associative (DESIGN.md §10), so the running stack
    # ahead of every chunk is an inclusive prefix scan of the per-chunk
    # finals under :func:`_merge_stacks` — O(log chunks) vectorized
    # doubling steps instead of a sequential chunk loop.
    finals = np.full((chunks, sets_total, width), _PAD, dtype=np.int64)
    g_sorted = gids[by_len]
    finals[g_sorted % chunks, g_sorted // chunks] = stack.T

    init_stack = np.full((sets_total, width), _PAD, dtype=np.int64)
    for set_index, ways_list in initial.items():
        head = ways_list[:width]
        init_stack[set_index, : len(head)] = head

    prefix = finals
    d = 1
    while d < chunks:
        prefix[d:] = _merge_stacks(prefix[d:], prefix[:-d], width)
        d *= 2

    start_states = np.empty((chunks, sets_total, width), dtype=np.int64)
    start_states[0] = init_stack
    if chunks > 1:
        behind = np.broadcast_to(init_stack, (chunks - 1, sets_total, width))
        start_states[1:] = _merge_stacks(prefix[:-1], behind, width)
    cur = _merge_stacks(prefix[-1], init_stack, width)

    # -- phase 3: resolve every group-first access against its start stack
    boundary = np.flatnonzero(first_occ)
    b_index = np.searchsorted(gstarts, boundary, side="right") - 1
    b_start = gstarts[b_index]
    b_rank = boundary - b_start
    b_group = gids[b_index]
    b_chunk = b_group % chunks
    rows = start_states[b_chunk, b_group // chunks]
    eq = rows == wl[boundary][:, None]
    found = eq.any(axis=1)
    depth = eq.argmax(axis=1)
    above = cols[None, :] < depth[:, None]
    # Rank of each start-stack line's own first in-group access (n when
    # never reaccessed); lines reaccessed before this access are
    # already counted in distinct_before.  Pad entries never sit above
    # a found line, so their negative keys are harmless.
    row_keys = rows * chunks + b_chunk[:, None]
    at = np.minimum(np.searchsorted(fo_keys, row_keys), len(fo_keys) - 1)
    known = fo_keys[at] == row_keys
    row_rank = np.where(known, fo_ranks[at], np.int64(n))
    surviving = row_rank >= b_rank[:, None]
    distinct_before = fo_cum[boundary] - fo_cum[b_start]
    dist = distinct_before + np.sum(above & surviving, axis=1)
    miss[boundary] = ~(found & (dist < width))

    result_sets: Dict[int, List[int]] = {}
    for set_index in range(sets_total):
        row_list = [int(v) for v in cur[set_index] if v != _PAD]
        if row_list:
            result_sets[set_index] = row_list

    out = np.zeros(n, dtype=bool)
    out[order] = miss
    return out, result_sets


def _merge_stacks(newer: np.ndarray, older: np.ndarray, width: int) -> np.ndarray:
    """Recency-merge stack arrays of shape ``(..., width)``.

    ``newer`` holds the most recent distinct lines; ``older`` lines
    already present in ``newer`` sit there at their new recency and are
    dropped, the rest follow in order, truncated to ``width``.  The
    operation is associative, which is what lets the caller scan it.
    """
    big = 2 * width + 1
    cols = np.arange(width)
    carried = (older[..., :, None] == newer[..., None, :]).any(axis=-1)
    key_new = np.where(newer != _PAD, cols, big)
    key_old = np.where((older != _PAD) & ~carried, width + cols, big)
    keys = np.concatenate((key_new, key_old), axis=-1)
    vals = np.concatenate((newer, older), axis=-1)
    sel = np.argsort(keys, axis=-1, kind="stable")
    merged_vals = np.take_along_axis(vals, sel, axis=-1)[..., :width]
    merged_keys = np.take_along_axis(keys, sel, axis=-1)[..., :width]
    return np.where(merged_keys == big, _PAD, merged_vals)


def _finish_scalar(
    stack: np.ndarray,
    miss: np.ndarray,
    wl: np.ndarray,
    starts_l: np.ndarray,
    counts_l: np.ndarray,
    active: int,
    r: int,
    width: int,
) -> None:
    """Replay the remaining accesses of the last few groups scalarly.

    ``stack`` is the transposed (way, group) layout of phase 1.
    """
    for gi in range(active):
        base = int(starts_l[gi])
        stop = base + int(counts_l[gi])
        ways_list = [int(v) for v in stack[:, gi] if v != _PAD]
        for j in range(base + r, stop):
            line = int(wl[j])
            try:
                at = ways_list.index(line)
            except ValueError:
                miss[j] = True
                if len(ways_list) >= width:
                    ways_list.pop()
                ways_list.insert(0, line)
            else:
                if at:
                    del ways_list[at]
                    ways_list.insert(0, line)
        stack[: len(ways_list), gi] = ways_list
        stack[len(ways_list) :, gi] = _PAD

"""Cache geometry configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.texture.layout import LINE_BYTES, TEXELS_PER_LINE


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a set-associative texture cache.

    Defaults follow the paper (after Hakura & Gupta): 16 KB total,
    64-byte lines, 4-way set-associative.
    """

    total_bytes: int = 16384
    line_bytes: int = LINE_BYTES
    ways: int = 4

    def __post_init__(self) -> None:
        if self.line_bytes < 1 or self.total_bytes < self.line_bytes:
            raise ConfigurationError(
                f"cache of {self.total_bytes} B cannot hold {self.line_bytes}-byte lines"
            )
        if self.ways < 1:
            raise ConfigurationError(f"associativity must be >= 1, got {self.ways}")
        if self.total_bytes % (self.line_bytes * self.ways):
            raise ConfigurationError(
                "total size must be a whole number of sets: "
                f"{self.total_bytes} B / ({self.line_bytes} B x {self.ways} ways)"
            )

    @property
    def num_lines(self) -> int:
        return self.total_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways

    @property
    def texels_per_line(self) -> int:
        """Texels a line fill brings in (4-byte texels)."""
        return TEXELS_PER_LINE


#: The paper's fixed node cache.
DEFAULT_CACHE = CacheConfig()

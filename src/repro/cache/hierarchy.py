"""Two-level texture-cache hierarchy.

The paper's future work points at a second cache level (after Cox et
al.): an L2 in the graphics-card memory that catches *inter-frame*
locality.  This model stacks two LRU caches — misses of the on-chip L1
flow into the L2; only L2 misses touch the texture memory — and is
stateful across frames so the inter-frame study can measure how much
of a panned frame the L2 still holds.
"""

from __future__ import annotations

import numpy as np

from repro.cache.config import CacheConfig
from repro.cache.lru import LruCache
from repro.cache.models import TextureCacheModel
from repro.texture.layout import TEXELS_PER_LINE

#: Cox et al. evaluate 2-8 MB second-level caches; default to 2 MB,
#: 8-way, with the same 64-byte lines as the L1.
DEFAULT_L2 = CacheConfig(total_bytes=2 * 1024 * 1024, ways=8)


class TwoLevelCache(TextureCacheModel):
    """L1 -> L2 -> memory; ``misses`` reports memory fetches."""

    texels_per_fetch = TEXELS_PER_LINE

    def __init__(
        self,
        l1_config: CacheConfig = CacheConfig(),
        l2_config: CacheConfig = DEFAULT_L2,
    ) -> None:
        self.l1_config = l1_config
        self.l2_config = l2_config
        self.name = (
            f"lru{l1_config.total_bytes // 1024}k"
            f"+l2-{l2_config.total_bytes // 1024}k"
        )
        self._l1 = LruCache(l1_config)
        self._l2 = LruCache(l2_config)
        #: L1 misses seen since the last reset (L1->L2 traffic).
        self.l1_misses = 0
        #: L2 misses seen since the last reset (memory traffic).
        self.l2_misses = 0

    def misses(self, lines: np.ndarray) -> np.ndarray:
        lines = np.asarray(lines, dtype=np.int64)
        l1_miss_mask = self._l1.simulate(lines)
        memory = np.zeros(len(lines), dtype=bool)
        positions = np.flatnonzero(l1_miss_mask)
        if len(positions):
            l2_miss_mask = self._l2.simulate(lines[positions])
            memory[positions] = l2_miss_mask
            self.l1_misses += len(positions)
            self.l2_misses += int(l2_miss_mask.sum())
        return memory

    def reset(self) -> None:
        self._l1.reset()
        self._l2.reset()
        self.l1_misses = 0
        self.l2_misses = 0

    def reset_l1_only(self) -> None:
        """Start a new frame on the same board: L1 cold, L2 warm.

        (A 16 KB L1 retains nothing useful across a frame anyway; this
        just makes the per-frame accounting clean.)
        """
        self._l1.reset()

"""Set-associative LRU cache simulation.

Two equivalent interfaces are provided:

* :meth:`LruCache.access` — one line at a time; the obvious reference
  implementation, used directly by unit and property tests.
* :meth:`LruCache.simulate` — whole address streams at once.  It
  exploits two exact identities to stay fast in Python: an access to
  the line just accessed always hits (so consecutive duplicates can be
  collapsed), and accesses to different sets never interact (so the
  stream can be stably partitioned per set and each set replayed
  independently).  Both paths produce bit-identical miss masks.

The cache is *stateful across calls*, so long streams can be fed in
chunks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.cache import batchlru
from repro.cache.config import CacheConfig


class LruCache:
    """An N-way set-associative cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: Dict[int, List[int]] = {}
        self._last_line: Optional[int] = None

    def reset(self) -> None:
        """Empty the cache."""
        self._sets.clear()
        self._last_line = None

    # -- reference path ------------------------------------------------------

    def access(self, line: int) -> bool:
        """Access one line; returns True on hit."""
        line = int(line)
        self._last_line = line
        ways = self._sets.setdefault(line % self.config.num_sets, [])
        try:
            position = ways.index(line)
        except ValueError:
            if len(ways) >= self.config.ways:
                ways.pop()
            ways.insert(0, line)
            return False
        if position:
            del ways[position]
            ways.insert(0, line)
        return True

    # -- batched path ----------------------------------------------------------

    def simulate(
        self, lines: np.ndarray, *, force_scalar: bool = False
    ) -> np.ndarray:
        """Access a stream of lines; returns a per-access miss mask.

        The replay normally runs through the chunk-parallel batch path
        (:mod:`repro.cache.batchlru`); ``force_scalar`` pins the scalar
        per-set reference loop instead, which equivalence tests compare
        against bit-exactly.
        """
        lines = np.asarray(lines)
        if lines.dtype != np.int32 and lines.dtype != np.int64:
            lines = lines.astype(np.int64)
        n = len(lines)
        misses = np.zeros(n, dtype=bool)
        if n == 0:
            return misses

        # Collapse consecutive duplicates: repeats always hit.
        keep = np.empty(n, dtype=bool)
        keep[0] = self._last_line is None or lines[0] != self._last_line
        np.not_equal(lines[1:], lines[:-1], out=keep[1:])
        positions = np.flatnonzero(keep)
        self._last_line = int(lines[-1])
        if len(positions) == 0:
            return misses
        deduped = lines[positions]

        if not force_scalar:
            replayed = batchlru.replay(
                deduped, self.config.num_sets, self.config.ways, self._sets
            )
            if replayed is not None:
                deduped_misses, self._sets = replayed
                misses[positions] = deduped_misses
                return misses

        # -- scalar reference replay ---------------------------------------
        # Stable partition by set; each set's subsequence keeps its order.
        sets = deduped % self.config.num_sets
        order = np.argsort(sets, kind="stable")
        sorted_sets = sets[order]
        boundaries = np.flatnonzero(np.diff(sorted_sets)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(order)]))

        deduped_misses = np.zeros(len(positions), dtype=bool)
        max_ways = self.config.ways
        for start, end in zip(starts, ends):
            indices = order[start:end]
            ways = self._sets.setdefault(int(sorted_sets[start]), [])
            for index in indices:
                line = int(deduped[index])
                try:
                    position = ways.index(line)
                except ValueError:
                    deduped_misses[index] = True
                    if len(ways) >= max_ways:
                        ways.pop()
                    ways.insert(0, line)
                else:
                    if position:
                        del ways[position]
                        ways.insert(0, line)

        misses[positions] = deduped_misses
        return misses

    def contents(self) -> Dict[int, List[int]]:
        """Snapshot of each non-empty set, MRU first (for tests)."""
        return {index: list(ways) for index, ways in self._sets.items() if ways}

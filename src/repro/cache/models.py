"""Cache models the machine can be configured with.

Every model answers the only two questions the bandwidth/timing layers
ask: which accesses of a line stream fetch from external memory, and
how many texels each such fetch moves across the bus.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

from repro.cache.config import CacheConfig, DEFAULT_CACHE
from repro.cache.lru import LruCache
from repro.errors import ConfigurationError
from repro.texture.layout import TEXELS_PER_LINE


class TextureCacheModel(ABC):
    """Interface between the cache and the bandwidth accounting."""

    #: Texels one external fetch transfers.
    texels_per_fetch: int
    #: Short label used in reports.
    name: str

    @abstractmethod
    def misses(self, lines: np.ndarray) -> np.ndarray:
        """Boolean per-access fetch mask for a line-address stream."""

    @abstractmethod
    def reset(self) -> None:
        """Forget all cached state (start of a new node stream)."""


class RealCache(TextureCacheModel):
    """A set-associative LRU cache; fetches whole 64-byte lines.

    ``texels_per_fetch`` is an instance attribute so layouts with a
    different texel format (16-bit texels pack 32 per line) can adjust
    the bandwidth accounting.
    """

    texels_per_fetch = TEXELS_PER_LINE

    def __init__(self, config: CacheConfig = DEFAULT_CACHE) -> None:
        self.texels_per_fetch = TEXELS_PER_LINE
        self.config = config
        self.name = f"lru{config.total_bytes // 1024}k"
        self._cache = LruCache(config)

    def misses(self, lines: np.ndarray) -> np.ndarray:
        return self._cache.simulate(lines)

    def reset(self) -> None:
        self._cache.reset()


class PerfectCache(TextureCacheModel):
    """The paper's perfect cache: always hits, even on first touch."""

    texels_per_fetch = TEXELS_PER_LINE
    name = "perfect"

    def misses(self, lines: np.ndarray) -> np.ndarray:
        return np.zeros(len(lines), dtype=bool)

    def reset(self) -> None:  # no state
        pass


class NoCache(TextureCacheModel):
    """A cacheless engine: every texel read is an external fetch.

    The fetch granularity is one texel, which reproduces the paper's
    baseline of 8 texels per pixel.
    """

    texels_per_fetch = 1
    name = "none"

    def misses(self, lines: np.ndarray) -> np.ndarray:
        return np.ones(len(lines), dtype=bool)

    def reset(self) -> None:  # no state
        pass


def make_cache_model(
    spec: Union[str, TextureCacheModel, None],
    config: Optional[CacheConfig] = None,
) -> TextureCacheModel:
    """Build a cache model from a spec string.

    Accepted specs: ``"lru"`` (the 16 KB default or ``config``),
    ``"perfect"``, ``"none"``, an existing model (returned as-is) or
    ``None`` (the default LRU cache).
    """
    if isinstance(spec, TextureCacheModel):
        return spec
    if spec is None or spec == "lru":
        return RealCache(config or DEFAULT_CACHE)
    if spec == "perfect":
        return PerfectCache()
    if spec == "none":
        return NoCache()
    raise ConfigurationError(f"unknown cache model spec {spec!r}")

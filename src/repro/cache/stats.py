"""Cache replay statistics.

The paper's central locality metric is the *texel-to-fragment ratio*
(Igehy et al.): texels fetched from external memory divided by
fragments drawn.  8.0 means cacheless behaviour, lower is better, and
the *unique* ratio (distinct texels / fragments) is the compulsory-miss
floor an ideal cache would achieve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.obs.registry import MetricsRegistry


@dataclass
class CacheRunResult:
    """Outcome of replaying one node's fragment stream through a cache."""

    fragments: int = 0
    texel_accesses: int = 0
    line_accesses: int = 0
    misses: int = 0
    compulsory_misses: int = 0
    texels_fetched: int = 0
    #: Texels fetched attributed to each triangle (bus-demand input of
    #: the timing model); length == scene triangle count.
    texels_by_triangle: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))

    @property
    def miss_rate(self) -> float:
        """Misses per line access."""
        if self.line_accesses == 0:
            return 0.0
        return self.misses / self.line_accesses

    @property
    def texel_to_fragment(self) -> float:
        """External texels per drawn fragment (the Figure-6 metric)."""
        if self.fragments == 0:
            return 0.0
        return self.texels_fetched / self.fragments

    def publish(self, registry: "MetricsRegistry", **labels: object) -> None:
        """Add this replay's totals into a metrics registry.

        ``registry`` is a :class:`repro.obs.MetricsRegistry`; the
        counters (``cache.fragments``, ``cache.misses``, ...) are
        cumulative across runs, and ``labels`` (e.g. ``scene=...``)
        select a labeled child per series.
        """
        totals = {
            "fragments": self.fragments,
            "texel_accesses": self.texel_accesses,
            "line_accesses": self.line_accesses,
            "misses": self.misses,
            "compulsory_misses": self.compulsory_misses,
            "texels_fetched": self.texels_fetched,
        }
        for series, amount in totals.items():
            counter = registry.counter(f"cache.{series}")
            if labels:
                counter = counter.labels(**labels)
            counter.inc(amount)

    def merged_with(self, other: "CacheRunResult") -> "CacheRunResult":
        """Aggregate two runs (e.g. the same machine's nodes)."""
        if len(self.texels_by_triangle) == 0:
            by_triangle = other.texels_by_triangle.copy()
        elif len(other.texels_by_triangle) == 0:
            by_triangle = self.texels_by_triangle.copy()
        else:
            by_triangle = self.texels_by_triangle + other.texels_by_triangle
        return CacheRunResult(
            fragments=self.fragments + other.fragments,
            texel_accesses=self.texel_accesses + other.texel_accesses,
            line_accesses=self.line_accesses + other.line_accesses,
            misses=self.misses + other.misses,
            compulsory_misses=self.compulsory_misses + other.compulsory_misses,
            texels_fetched=self.texels_fetched + other.texels_fetched,
            texels_by_triangle=by_triangle,
        )

"""Replaying fragment streams through a cache model.

Bridges the rasterizer/filter world (fragments with texture
coordinates) and the cache world (line-address streams), in bounded
memory: fragments are processed in chunks, relying on the cache models
being stateful across calls.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.cache.models import TextureCacheModel
from repro.cache.stats import CacheRunResult
from repro.raster.fragments import FragmentBuffer
from repro.texture.filtering import TEXELS_PER_FRAGMENT, TrilinearFilter

#: Fragments per replay chunk; 8 line addresses each keeps peak memory
#: around a few tens of megabytes.
DEFAULT_CHUNK = 1 << 18


def replay_fragments(
    fragments: FragmentBuffer,
    tex_filter: TrilinearFilter,
    model: TextureCacheModel,
    seen_lines: Optional[np.ndarray] = None,
    chunk_size: int = DEFAULT_CHUNK,
    reset: bool = True,
    translate: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> CacheRunResult:
    """Replay one node's fragment stream; returns aggregate statistics.

    ``model`` is reset first (``reset=True``), so a call simulates one
    cold engine drawing the given stream in order; pass ``reset=False``
    to continue with warm state — how the inter-frame L2 study chains
    consecutive frames through one hierarchy.  ``seen_lines`` (a
    boolean array covering the addressed line space) enables
    compulsory-miss classification; pass a fresh zeroed array per node.
    ``translate`` optionally rewrites the flat line-address stream
    before it reaches the cache model — the virtual-texturing page
    table (:mod:`repro.texture.pages`) hooks in here.  It must be a
    pure elementwise function so chunking stays invisible.
    """
    if reset:
        model.reset()
    n = len(fragments)
    result = CacheRunResult(
        fragments=n,
        texels_by_triangle=np.zeros(fragments.num_triangles, dtype=np.int64),
    )
    for start in range(0, n, chunk_size):
        stop = min(n, start + chunk_size)
        lines = tex_filter.line_addresses(
            fragments.u[start:stop],
            fragments.v[start:stop],
            fragments.level[start:stop],
            fragments.texture[start:stop],
        )
        flat = lines.reshape(-1)
        if translate is not None:
            flat = translate(flat)
        miss_mask = model.misses(flat)
        misses = int(miss_mask.sum())

        result.texel_accesses += flat.size
        result.line_accesses += flat.size
        result.misses += misses
        result.texels_fetched += misses * model.texels_per_fetch

        if misses:
            miss_rows = np.flatnonzero(miss_mask)
            if seen_lines is not None:
                missed = flat[miss_rows]
                fresh = ~seen_lines[missed]
                result.compulsory_misses += int(fresh.sum())
                seen_lines[missed] = True
            # Attribute fetched texels to the owning triangles for the
            # timing model's per-triangle bus demand.
            frag_rows = miss_rows // TEXELS_PER_FRAGMENT
            triangles = fragments.triangle[start:stop][frag_rows]
            np.add.at(
                result.texels_by_triangle,
                triangles,
                model.texels_per_fetch,
            )
        elif seen_lines is not None:
            seen_lines[np.unique(flat)] = True
    return result

"""``repro-experiments`` — run the paper's experiments from the shell.

Examples::

    repro-experiments list
    repro-experiments table1
    repro-experiments fig6 --scale 0.5
    repro-experiments all --scale 0.25 --out results/
    repro-experiments run --scene truc640 --processors 4 --size 16 \
        --trace-out trace.json --metrics-out metrics.json
    repro-experiments dump-trace --scene quake --path quake.trace
    repro-experiments replay-trace --path quake.trace --processors 16
    repro-experiments serve --port 8765 --workers 2
    repro-experiments serve --port 8765 --no-local-workers --max-queue-depth 256
    repro-experiments worker --url http://127.0.0.1:8765
    repro-experiments submit --url http://127.0.0.1:8765 --run table1 --wait
    repro-experiments status --url http://127.0.0.1:8765 --id job-1
    repro-experiments search --experiment fig7 --budget 1e9 --strategy halving
    repro-experiments archive
    repro-experiments replay --key trial/fig7/halving/r0/<digest>
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.experiments import EXPERIMENTS
from repro.errors import ConfigurationError, ReproError
from repro.workloads.scenes import experiment_scale

#: Utility commands handled outside the experiment registry.
_COMMANDS = {
    "list": "enumerate registered experiments and utility commands",
    "all": "run every registered experiment",
    "run": "simulate one machine point (--scene, --family, --processors, --size)",
    "dump-trace": "write a scene's triangle trace to --path",
    "replay-trace": "simulate a trace file (--path, --processors, --width)",
    "batch": "run a JSON campaign file (--path, optionally --out)",
    "lint": "run the repro-lint static analyzer (same flags as repro-lint)",
    "serve": "start the experiment job service (--host, --port, --workers)",
    "worker": "start a fleet worker pulling jobs from a coordinator (--url)",
    "submit": "submit a job to a running service (--url, --run/--scene/--job)",
    "status": "show a job (--id) or service metrics from --url",
    "search": "budgeted auto-search over an experiment (--experiment, --budget)",
    "archive": "list archived run/trial/search records (--key for one record)",
    "replay": "re-run an archived record and diff it bit-for-bit (--key)",
}

#: Default address for the job service.
DEFAULT_SERVICE_PORT = 8765
SERVICE_URL_ENV_VAR = "REPRO_SERVICE_URL"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'The Best Distribution "
            "for a Parallel OpenGL 3D Engine with Texture Caches' (HPCA 2000)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name, 'all', 'list' to enumerate, "
            "'dump-trace'/'replay-trace' for trace files, "
            "'serve'/'submit'/'status' for the job service"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "linear scene scale in (0, 1]; 1.0 is the paper's frame size "
            "(default: REPRO_SCALE env var or 0.25)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write each result into (one .txt per experiment)",
    )
    parser.add_argument(
        "--scene",
        default="truc640",
        help="benchmark scene name for dump-trace / submit (default: truc640)",
    )
    parser.add_argument(
        "--path",
        type=Path,
        default=None,
        help="trace file path for dump-trace / replay-trace",
    )
    parser.add_argument(
        "--processors",
        type=int,
        default=16,
        help="processor count for replay-trace / submit (default: 16)",
    )
    parser.add_argument(
        "--width",
        type=int,
        default=16,
        help="block width for replay-trace (default: 16)",
    )
    parser.add_argument(
        "--fifo",
        type=int,
        default=None,
        help="run/submit: triangle FIFO capacity (default: 10000; small values "
        "force the event-driven timing path)",
    )
    parser.add_argument(
        "--bus-ratio",
        type=float,
        default=None,
        help="run/submit: texel-to-fragment bus bandwidth ratio (default: 1.0)",
    )
    parser.add_argument(
        "--workers",
        default=None,
        help=(
            "worker processes for parallel sweeps and the job service, "
            "0 runs inline (overrides the REPRO_WORKERS env var)"
        ),
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print per-stage pipeline timings and artifact hit rates at exit",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        help=(
            "enable the event recorder and write a Chrome trace-event JSON "
            "of the run to FILE (open it in chrome://tracing)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        help=(
            "write a JSON metrics dump (registry snapshot, pipeline stats "
            "and, with --trace-out, trace summaries) to FILE at exit"
        ),
    )
    service = parser.add_argument_group("job service (serve / worker / submit / status)")
    service.add_argument(
        "--host", default="127.0.0.1", help="serve: bind address (default: 127.0.0.1)"
    )
    service.add_argument(
        "--port",
        type=int,
        default=DEFAULT_SERVICE_PORT,
        help=f"serve: TCP port, 0 picks an ephemeral one (default: {DEFAULT_SERVICE_PORT})",
    )
    service.add_argument(
        "--url",
        default=None,
        help=(
            "worker/submit/status: service base URL (default: REPRO_SERVICE_URL "
            f"env var or http://127.0.0.1:{DEFAULT_SERVICE_PORT})"
        ),
    )
    service.add_argument(
        "--no-local-workers",
        action="store_true",
        help=(
            "serve: run as a pure coordinator — no local execution, jobs "
            "are only handed to remote workers through the lease protocol"
        ),
    )
    service.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="serve: reject POST /jobs with 429 past this many queued jobs",
    )
    service.add_argument(
        "--lease-timeout",
        type=float,
        default=30.0,
        help=(
            "serve: seconds a remote worker may go without a heartbeat "
            "before its job is requeued (default: 30)"
        ),
    )
    service.add_argument(
        "--worker-id",
        default=None,
        help="worker: fleet-unique name (default: <hostname>-<pid>)",
    )
    service.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="worker: idle seconds between lease attempts (default: 0.5)",
    )
    service.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        help="worker: exit after this many job attempts (default: run forever)",
    )
    service.add_argument(
        "--run", default=None, help="submit: registered experiment name to run as a job"
    )
    service.add_argument(
        "--job", default=None, help="submit: full job description as inline JSON"
    )
    service.add_argument(
        "--family", default="block", help="submit: distribution family (default: block)"
    )
    service.add_argument(
        "--size", type=int, default=16, help="submit: tile size / SLI lines (default: 16)"
    )
    service.add_argument(
        "--priority", type=int, default=None, help="submit: lower runs first (default: 0)"
    )
    service.add_argument(
        "--job-timeout", type=float, default=None, help="submit: per-attempt timeout (s)"
    )
    service.add_argument(
        "--retries", type=int, default=None, help="submit: extra attempts after the first"
    )
    service.add_argument(
        "--wait", action="store_true", help="submit: poll until done and print the result"
    )
    service.add_argument(
        "--id", default=None, help="status: job id to query (omit for service metrics)"
    )
    expfw = parser.add_argument_group("experiment framework (search / archive / replay)")
    expfw.add_argument(
        "--experiment",
        dest="search_experiment",
        default=None,
        help="search: experiment spec to tune (e.g. fig7)",
    )
    expfw.add_argument(
        "--budget",
        type=float,
        default=None,
        help="search: stop once this much budget is spent (see --budget-unit)",
    )
    expfw.add_argument(
        "--budget-unit",
        choices=("cycles", "seconds"),
        default="cycles",
        help="search: budget currency — simulated cycles or wall seconds",
    )
    expfw.add_argument(
        "--strategy",
        choices=("grid", "halving", "both"),
        default="both",
        help="search: grid sweep, successive halving, or both (default)",
    )
    expfw.add_argument(
        "--seed",
        type=int,
        default=0,
        help="search: explicit PRNG seed for subsampling/trial seeds (default: 0)",
    )
    expfw.add_argument(
        "--max-trials",
        type=int,
        default=None,
        help="search: seeded subsample of the candidate grid to at most N points",
    )
    expfw.add_argument(
        "--eta", type=int, default=2, help="search: halving keep ratio (default: 2)"
    )
    expfw.add_argument(
        "--rungs", type=int, default=3, help="search: halving rung count (default: 3)"
    )
    expfw.add_argument(
        "--wave",
        type=int,
        default=4,
        help="search: trials dispatched per wave (default: 4)",
    )
    expfw.add_argument(
        "--overrides",
        default=None,
        help="search: experiment param overrides as inline JSON",
    )
    expfw.add_argument(
        "--fixed",
        default=None,
        help="search: pinned trial payload fields as inline JSON (e.g. scene)",
    )
    expfw.add_argument(
        "--via-service",
        action="store_true",
        help="search: dispatch trials as jobs to the service at --url",
    )
    expfw.add_argument(
        "--key", default=None, help="archive/replay: record key to fetch or re-run"
    )
    return parser


def _apply_workers(raw: str) -> None:
    """Validate ``--workers`` and export it as ``REPRO_WORKERS``."""
    from repro.analysis.parallel import WORKERS_ENV_VAR, parse_worker_count

    os.environ[WORKERS_ENV_VAR] = str(parse_worker_count(raw, label="--workers"))


def _run_one(name: str, scale: float, out: Optional[Path]) -> None:
    description, runner = EXPERIMENTS[name]
    started = time.perf_counter()
    text = runner(scale)
    elapsed = time.perf_counter() - started
    print(text)
    print(f"[{name}: {description} — {elapsed:.1f}s]\n")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name.replace('-', '_')}.txt").write_text(text + "\n")


def _list_registry() -> None:
    from repro.expfw.spec import SPECS

    width = max(
        max(len(name) for name in EXPERIMENTS),
        max(len(name) for name in _COMMANDS),
    )
    print("experiments:")
    for name, (description, _) in EXPERIMENTS.items():
        print(f"  {name.ljust(width)}  {description}")
        spec = SPECS.get(name)
        if spec is not None:
            print(f"  {'':{width}}    params: {spec.describe_params()}")
    print("\ncommands:")
    for name, description in _COMMANDS.items():
        print(f"  {name.ljust(width)}  {description}")


def _dump_trace(args, scale: float) -> int:
    from repro.geometry.trace import save_trace
    from repro.workloads.scenes import SCENE_NAMES, build_scene

    if args.path is None:
        print("error: dump-trace needs --path", file=sys.stderr)
        return 2
    if args.scene not in SCENE_NAMES:
        print(
            f"error: unknown scene {args.scene!r}; choose from {', '.join(SCENE_NAMES)}",
            file=sys.stderr,
        )
        return 2
    scene = build_scene(args.scene, scale)
    save_trace(scene, args.path)
    print(
        f"wrote {scene.num_triangles} triangles "
        f"({scene.width}x{scene.height}, {len(scene.textures)} textures) "
        f"to {args.path}"
    )
    return 0


def _replay_trace(args) -> int:
    from repro.core.config import MachineConfig
    from repro.core.machine import simulate_machine, single_processor_baseline
    from repro.distribution.block import BlockInterleaved
    from repro.geometry.trace import load_trace

    if args.path is None:
        print("error: replay-trace needs --path", file=sys.stderr)
        return 2
    scene = load_trace(args.path)
    config = MachineConfig(
        distribution=BlockInterleaved(args.processors, args.width)
    )
    baseline = single_processor_baseline(scene, config)
    result = simulate_machine(scene, config, baseline_cycles=baseline)
    print(result.summary())
    return 0


def _run_point(args, scale: float) -> int:
    """``run``: simulate one machine point through the job vocabulary."""
    from repro.service.jobs import execute_payload

    payload = {
        "scene": args.scene,
        "family": args.family,
        "processors": args.processors,
        "size": args.size,
        "scale": scale,
    }
    if args.fifo is not None:
        payload["fifo"] = args.fifo
    if args.bus_ratio is not None:
        payload["bus_ratio"] = args.bus_ratio
    result = execute_payload(payload)
    print(result["text"])
    return 0


def _write_observability(args) -> None:
    """Write the ``--trace-out`` / ``--metrics-out`` files, if asked."""
    from repro import obs, pipeline

    recorder = obs.recorder()
    if args.trace_out is not None and recorder.enabled:
        recorder.write_chrome_trace(args.trace_out)
        print(f"[wrote Chrome trace to {args.trace_out} — open in chrome://tracing]")
    if args.metrics_out is not None:
        dump = {
            "registry": obs.registry().snapshot(),
            "pipeline": pipeline.stats(),
        }
        if recorder.enabled:
            dump["trace"] = recorder.summary()
        args.metrics_out.write_text(json.dumps(dump, indent=2, sort_keys=True) + "\n")
        print(f"[wrote metrics dump to {args.metrics_out}]")


def _run_batch(args) -> int:
    from repro.analysis.batch import run_batch_file

    if args.path is None:
        print("error: batch needs --path <campaign.json>", file=sys.stderr)
        return 2
    csv_out = None
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        csv_out = args.out / "batch.csv"
    results = run_batch_file(args.path, csv_out=csv_out)
    for result in results:
        print(result.summary())
    if csv_out is not None:
        print(f"[wrote {csv_out}]")
    return 0


# -- job service verbs ------------------------------------------------


def _service_url(args) -> str:
    if args.url is not None:
        return args.url
    return os.environ.get(
        SERVICE_URL_ENV_VAR, f"http://127.0.0.1:{DEFAULT_SERVICE_PORT}"
    )


def _serve(args) -> int:
    from repro.analysis.parallel import worker_count
    from repro.service import Scheduler, serve

    scheduler = Scheduler(
        workers=0 if args.no_local_workers else worker_count(),
        local=not args.no_local_workers,
        max_queue_depth=args.max_queue_depth,
        lease_timeout=args.lease_timeout,
    )
    serve(scheduler, host=args.host, port=args.port)
    return 0


def _worker(args) -> int:
    from repro.service import WorkerNode

    node = WorkerNode(
        _service_url(args),
        worker_id=args.worker_id,
        poll=args.poll,
        announce=lambda line: print(line, flush=True),
    )
    try:
        node.run(max_jobs=args.max_jobs)
    except KeyboardInterrupt:
        pass
    return 0


def _submit_payload(args, scale: Optional[float]) -> dict:
    if args.job is not None:
        try:
            return json.loads(args.job)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"--job is not valid JSON: {exc}") from exc
    if args.run is not None:
        payload = {"experiment": args.run}
    else:
        payload = {
            "scene": args.scene,
            "family": args.family,
            "processors": args.processors,
            "size": args.size,
        }
        if args.fifo is not None:
            payload["fifo"] = args.fifo
        if args.bus_ratio is not None:
            payload["bus_ratio"] = args.bus_ratio
    if scale is not None:
        payload["scale"] = scale
    if args.priority is not None:
        payload["priority"] = args.priority
    if args.job_timeout is not None:
        payload["timeout"] = args.job_timeout
    if args.retries is not None:
        payload["retries"] = args.retries
    return payload


def _submit(args) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(_service_url(args))
    job = client.submit(_submit_payload(args, args.scale))
    print(json.dumps(job, indent=2))
    if not args.wait:
        return 0
    job = client.wait(job["id"])
    if job["state"] != "done":
        print(
            f"error: {job['id']} ended {job['state']}: {job.get('error')}",
            file=sys.stderr,
        )
        return 1
    print(client.result(job["result_key"])["text"])
    return 0


def _status(args) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(_service_url(args))
    if args.id is not None:
        print(json.dumps(client.job(args.id), indent=2))
    else:
        print(json.dumps(client.metrics(), indent=2))
    return 0


# -- experiment framework verbs ---------------------------------------


def _inline_json(raw: Optional[str], label: str) -> dict:
    if raw is None:
        return {}
    try:
        value = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{label} is not valid JSON: {exc}") from exc
    if not isinstance(value, dict):
        raise ConfigurationError(f"{label} must be a JSON object, got {value!r}")
    return value


def _search(args, scale: float) -> int:
    from repro.expfw import ClientDispatcher, parse_search_payload, render_report, run_search

    if args.search_experiment is None:
        print("error: search needs --experiment <name>", file=sys.stderr)
        return 2
    if args.budget is None:
        print("error: search needs --budget <amount>", file=sys.stderr)
        return 2
    overrides = _inline_json(args.overrides, "--overrides")
    overrides.setdefault("scale", scale)
    payload = {
        "experiment": args.search_experiment,
        "budget": args.budget,
        "unit": args.budget_unit,
        "strategy": args.strategy,
        "seed": args.seed,
        "overrides": overrides,
        "fixed": _inline_json(args.fixed, "--fixed"),
        "eta": args.eta,
        "rungs": args.rungs,
        "wave": args.wave,
    }
    if args.max_trials is not None:
        payload["max_trials"] = args.max_trials
    config = parse_search_payload(payload)
    dispatcher = None
    if args.via_service:
        from repro.service import ServiceClient

        dispatcher = ClientDispatcher(ServiceClient(_service_url(args)))
    report = run_search(config, dispatcher=dispatcher)
    print(render_report(report))
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / f"search_{config.experiment.replace('-', '_')}.json"
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[wrote search report to {path}]")
    return 0


def _archive(args) -> int:
    from repro.expfw import RunArchive

    archive = RunArchive()
    if args.key is not None:
        print(json.dumps(archive.get(args.key), indent=2, sort_keys=True))
        return 0
    records = archive.records()
    if not records:
        print(f"archive empty ({archive.root})")
        return 0
    print(f"archive {archive.root}: {len(records)} record(s)")
    for record in records:
        stamp = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(record.get("created_at", 0.0))
        )
        print(f"  {record.get('kind', '?'):<7} {stamp}  {record['key']}")
    return 0


def _replay(args) -> int:
    from repro.expfw import RunArchive, replay_record

    if args.key is None:
        print("error: replay needs --key <record key>", file=sys.stderr)
        return 2
    report = replay_record(RunArchive().get(args.key))
    print(report.summary())
    return 0 if report.ok else 1


def _print_timings() -> None:
    from repro import pipeline

    print(pipeline.render_stats(pipeline.stats()))


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output was piped into something like `head`; exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "lint":
        # Delegate before argparse: lint has its own flag vocabulary.
        from repro.lintkit.cli import main as lint_main

        return lint_main(raw[1:])
    args = _build_parser().parse_args(raw)
    if args.workers is not None:
        _apply_workers(args.workers)
    if args.trace_out is not None:
        from repro import obs

        obs.enable_tracing()

    if args.experiment == "list":
        _list_registry()
        return 0
    if args.experiment == "serve":
        return _serve(args)
    if args.experiment == "worker":
        return _worker(args)
    if args.experiment == "status":
        return _status(args)
    if args.experiment == "archive":
        return _archive(args)
    if args.experiment == "replay":
        return _replay(args)

    scale = args.scale if args.scale is not None else experiment_scale()
    if not 0 < scale <= 1:
        print(f"error: --scale must be in (0, 1], got {scale}", file=sys.stderr)
        return 2

    if args.experiment == "submit":
        # An unset --scale defers to the service's default for the job.
        status = _submit(args)
    elif args.experiment == "search":
        status = _search(args, scale)
    elif args.experiment == "run":
        status = _run_point(args, scale)
    elif args.experiment == "dump-trace":
        status = _dump_trace(args, scale)
    elif args.experiment == "replay-trace":
        status = _replay_trace(args)
    elif args.experiment == "batch":
        status = _run_batch(args)
    else:
        if args.experiment == "all":
            names = list(EXPERIMENTS)
        elif args.experiment in EXPERIMENTS:
            names = [args.experiment]
        else:
            known = ", ".join(list(EXPERIMENTS) + list(_COMMANDS))
            print(
                f"error: unknown experiment {args.experiment!r}; choose from {known}",
                file=sys.stderr,
            )
            return 2
        for name in names:
            _run_one(name, scale, args.out)
        status = 0

    if args.timings:
        _print_timings()
    if args.trace_out is not None or args.metrics_out is not None:
        _write_observability(args)
    return status


if __name__ == "__main__":
    raise SystemExit(main())

"""``repro-experiments`` — run the paper's experiments from the shell.

Examples::

    repro-experiments list
    repro-experiments table1
    repro-experiments fig6 --scale 0.5
    repro-experiments all --scale 0.25 --out results/
    repro-experiments dump-trace --scene quake --path quake.trace
    repro-experiments replay-trace --path quake.trace --processors 16
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.experiments import EXPERIMENTS
from repro.errors import ConfigurationError, ReproError
from repro.workloads.scenes import experiment_scale

#: Utility commands handled outside the experiment registry.
_COMMANDS = ("list", "all", "dump-trace", "replay-trace", "batch")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'The Best Distribution "
            "for a Parallel OpenGL 3D Engine with Texture Caches' (HPCA 2000)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name, 'all', 'list' to enumerate, "
            "'dump-trace' or 'replay-trace' for trace files"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help=(
            "linear scene scale in (0, 1]; 1.0 is the paper's frame size "
            "(default: REPRO_SCALE env var or 0.25)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to also write each result into (one .txt per experiment)",
    )
    parser.add_argument(
        "--scene",
        default="truc640",
        help="benchmark scene name for dump-trace (default: truc640)",
    )
    parser.add_argument(
        "--path",
        type=Path,
        default=None,
        help="trace file path for dump-trace / replay-trace",
    )
    parser.add_argument(
        "--processors",
        type=int,
        default=16,
        help="processor count for replay-trace (default: 16)",
    )
    parser.add_argument(
        "--width",
        type=int,
        default=16,
        help="block width for replay-trace (default: 16)",
    )
    parser.add_argument(
        "--workers",
        default=None,
        help=(
            "worker processes for parallel sweeps, 0 runs inline "
            "(overrides the REPRO_WORKERS env var)"
        ),
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print per-stage pipeline timings and artifact hit rates at exit",
    )
    return parser


def _apply_workers(raw: str) -> None:
    """Validate ``--workers`` and export it as ``REPRO_WORKERS``."""
    from repro.analysis.parallel import WORKERS_ENV_VAR

    try:
        workers = int(raw)
    except ValueError as exc:
        raise ConfigurationError(f"--workers must be an int, got {raw!r}") from exc
    if workers < 0:
        raise ConfigurationError(f"--workers must be >= 0, got {workers}")
    os.environ[WORKERS_ENV_VAR] = str(workers)


def _run_one(name: str, scale: float, out: Optional[Path]) -> None:
    description, runner = EXPERIMENTS[name]
    started = time.time()
    text = runner(scale)
    elapsed = time.time() - started
    print(text)
    print(f"[{name}: {description} — {elapsed:.1f}s]\n")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name.replace('-', '_')}.txt").write_text(text + "\n")


def _dump_trace(args, scale: float) -> int:
    from repro.geometry.trace import save_trace
    from repro.workloads.scenes import SCENE_NAMES, build_scene

    if args.path is None:
        print("error: dump-trace needs --path", file=sys.stderr)
        return 2
    if args.scene not in SCENE_NAMES:
        print(
            f"error: unknown scene {args.scene!r}; choose from {', '.join(SCENE_NAMES)}",
            file=sys.stderr,
        )
        return 2
    scene = build_scene(args.scene, scale)
    save_trace(scene, args.path)
    print(
        f"wrote {scene.num_triangles} triangles "
        f"({scene.width}x{scene.height}, {len(scene.textures)} textures) "
        f"to {args.path}"
    )
    return 0


def _replay_trace(args) -> int:
    from repro.core.config import MachineConfig
    from repro.core.machine import simulate_machine, single_processor_baseline
    from repro.distribution.block import BlockInterleaved
    from repro.geometry.trace import load_trace

    if args.path is None:
        print("error: replay-trace needs --path", file=sys.stderr)
        return 2
    scene = load_trace(args.path)
    config = MachineConfig(
        distribution=BlockInterleaved(args.processors, args.width)
    )
    baseline = single_processor_baseline(scene, config)
    result = simulate_machine(scene, config, baseline_cycles=baseline)
    print(result.summary())
    return 0


def _run_batch(args) -> int:
    from repro.analysis.batch import run_batch_file

    if args.path is None:
        print("error: batch needs --path <campaign.json>", file=sys.stderr)
        return 2
    csv_out = None
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        csv_out = args.out / "batch.csv"
    results = run_batch_file(args.path, csv_out=csv_out)
    for result in results:
        print(result.summary())
    if csv_out is not None:
        print(f"[wrote {csv_out}]")
    return 0


def _print_timings() -> None:
    from repro import pipeline

    print(pipeline.render_stats(pipeline.stats()))


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output was piped into something like `head`; exit quietly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.workers is not None:
        _apply_workers(args.workers)

    if args.experiment == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name, (description, _) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0

    scale = args.scale if args.scale is not None else experiment_scale()
    if not 0 < scale <= 1:
        print(f"error: --scale must be in (0, 1], got {scale}", file=sys.stderr)
        return 2

    if args.experiment == "dump-trace":
        status = _dump_trace(args, scale)
    elif args.experiment == "replay-trace":
        status = _replay_trace(args)
    elif args.experiment == "batch":
        status = _run_batch(args)
    else:
        if args.experiment == "all":
            names = list(EXPERIMENTS)
        elif args.experiment in EXPERIMENTS:
            names = [args.experiment]
        else:
            known = ", ".join(list(EXPERIMENTS) + list(_COMMANDS))
            print(
                f"error: unknown experiment {args.experiment!r}; choose from {known}",
                file=sys.stderr,
            )
            return 2
        for name in names:
            _run_one(name, scale, args.out)
        status = 0

    if args.timings:
        _print_timings()
    return status


if __name__ == "__main__":
    raise SystemExit(main())

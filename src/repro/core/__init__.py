"""The parallel sort-middle texture-mapping machine.

This is the paper's primary object of study: N commodity texture-mapping
nodes (Figure 3), each with a triangle FIFO, a setup engine limited to
one triangle per 25 pixels, a 1 pixel/cycle scanner, a private 16 KB
texture cache and a bandwidth-limited texture bus, fed in strict OpenGL
order by an ideal geometry stage through an interleaved static image
distribution (Figure 4).
"""

from repro.core.config import MachineConfig
from repro.core.results import MachineResult, NodeTimings
from repro.core.machine import simulate_machine, single_processor_baseline, speedup
from repro.core.sortlast import simulate_sort_last, sort_last_assignment
from repro.core.prefetch import PrefetchResult, latency_hiding_curve, simulate_prefetch_pipeline

__all__ = [
    "MachineConfig",
    "MachineResult",
    "NodeTimings",
    "simulate_machine",
    "single_processor_baseline",
    "speedup",
    "simulate_sort_last",
    "sort_last_assignment",
    "PrefetchResult",
    "simulate_prefetch_pipeline",
    "latency_hiding_curve",
]

"""Machine configuration."""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Union

from repro.cache.config import CacheConfig
from repro.distribution.base import Distribution
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.cache.models import TextureCacheModel

#: The paper's "big enough" triangle buffer (Section 3.1).
DEFAULT_FIFO_CAPACITY = 10000
#: Setup engine rate: one triangle per 25 pixels (Chen et al. figure).
DEFAULT_SETUP_CYCLES = 25


@dataclass(frozen=True)
class MachineConfig:
    """Everything that defines one simulated machine.

    Attributes
    ----------
    distribution:
        The static image distribution (carries the processor count).
    cache:
        Cache model spec: ``"lru"`` (default, 16 KB 4-way), ``"perfect"``,
        ``"none"``, or a prebuilt :class:`TextureCacheModel`.
    cache_config:
        Geometry override for the ``"lru"`` spec.
    bus_ratio:
        Sustained bus bandwidth in texels per pixel-cycle (the paper
        evaluates 1 and 2; ``math.inf`` disables the bandwidth limit,
        as in the Figure-6 locality study).
    fifo_capacity:
        Triangle-buffer entries in front of each node's setup engine.
    setup_cycles:
        Cycles the setup engine occupies per triangle; a triangle whose
        clipped footprint is below this many pixels is setup-bound.
    geometry_engines:
        Geometry processors feeding the machine; 0 (the default) is the
        paper's ideal geometry stage.
    geometry_cycles:
        Per-triangle transform cost of one geometry engine (only used
        when ``geometry_engines > 0``).
    """

    distribution: Distribution
    cache: Union[str, "TextureCacheModel"] = "lru"
    cache_config: Optional[CacheConfig] = None
    bus_ratio: float = 1.0
    fifo_capacity: int = DEFAULT_FIFO_CAPACITY
    setup_cycles: int = DEFAULT_SETUP_CYCLES
    geometry_engines: int = 0
    geometry_cycles: float = 100.0

    def __post_init__(self) -> None:
        if self.bus_ratio <= 0 and not math.isinf(self.bus_ratio):
            raise ConfigurationError(f"bus ratio must be positive, got {self.bus_ratio}")
        if self.fifo_capacity < 1:
            raise ConfigurationError(
                f"fifo capacity must be >= 1, got {self.fifo_capacity}"
            )
        if self.setup_cycles < 0:
            raise ConfigurationError(
                f"setup cycles must be >= 0, got {self.setup_cycles}"
            )
        if self.geometry_engines < 0:
            raise ConfigurationError(
                f"geometry engine count must be >= 0, got {self.geometry_engines}"
            )
        if self.geometry_cycles < 0:
            raise ConfigurationError(
                f"geometry cost must be >= 0, got {self.geometry_cycles}"
            )

    @property
    def num_processors(self) -> int:
        return self.distribution.num_processors

    def with_distribution(self, distribution: Distribution) -> "MachineConfig":
        """Copy of this config targeting another distribution."""
        return replace(self, distribution=distribution)

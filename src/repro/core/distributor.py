"""Event-driven machine: in-order distributor plus node processes.

This is where the triangle-buffer study (Section 8 / Figure 8) happens.
The geometry stage emits triangles in strict OpenGL order; each is
pushed into the FIFO of every node its bounding box touches.  Because
the stream is a single ordered sequence, ONE full FIFO blocks the
distributor — and therefore starves every other node.  That head-of-line
blocking is the "local load imbalance" a big buffer exists to hide.

When a finite-rate geometry stage is configured, each triangle also
carries a release time the distributor must wait for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bus.bus import BusModel
from repro.core.node import triangle_service_time
from repro.sim.fifo import BoundedFifo
from repro.sim.kernel import ProcessGenerator, Simulator

if TYPE_CHECKING:
    from repro.obs.recorder import RecorderLike

#: FIFO sentinel: end of the triangle stream.
_END = None

#: Stream entry: (triangle id, node, pixels, texels).
StreamEntry = Tuple[int, int, int, int]


def _distributor_process(
    sim: Simulator,
    fifos: List[BoundedFifo],
    stream: Sequence[StreamEntry],
    release: Optional[np.ndarray],
    stats: Dict[str, Any],
) -> ProcessGenerator:
    """Generator feeding work items in strict submission order.

    ``stats`` collects the head-of-line accounting: cycles the
    distributor spent blocked on a full FIFO (``blocked_cycles``) and
    which node blocked it most (``blocked_per_node``).
    """
    blocked_per_node = stats.setdefault(
        "blocked_per_node", [0.0] * len(fifos)
    )
    recorder = sim.recorder
    for triangle, node, pixels, texels in stream:
        if release is not None and sim.now < release[triangle]:
            yield sim.timeout(release[triangle] - sim.now)
        before = sim.now
        yield fifos[node].put((pixels, texels))
        waited = sim.now - before
        if waited > 0:
            stats["blocked_cycles"] = stats.get("blocked_cycles", 0.0) + waited
            blocked_per_node[node] += waited
            if recorder is not None:
                recorder.span(
                    ("sim", "distributor"), "blocked", before, sim.now,
                    args={"node": node, "triangle": triangle},
                )
    for fifo in fifos:
        yield fifo.put(_END)


def _node_process(
    sim: Simulator,
    fifo: BoundedFifo,
    setup_cycles: int,
    bus: BusModel,
    finish_out: List[float],
    node_id: int,
) -> ProcessGenerator:
    """Generator draining one node's FIFO until the end sentinel."""
    recorder = sim.recorder
    track = ("sim", f"node-{node_id}")
    while True:
        item = yield fifo.get()
        if item is _END:
            break
        pixels, texels = item
        start = sim.now
        end = triangle_service_time(start, pixels, texels, setup_cycles, bus)
        if recorder is not None:
            # The engine is occupied for max(pixels, setup) cycles; any
            # extra wait for the bus shows up as an explicit stall span.
            busy_end = start + max(pixels, setup_cycles)
            recorder.span(track, "busy", start, busy_end, args={"texels": texels})
            if end > busy_end:
                recorder.span(track, "stall", busy_end, end)
        if end > sim.now:
            yield sim.timeout(end - sim.now)
        finish_out[node_id] = sim.now


def interleave_stream(
    triangles: List[np.ndarray],
    pixels: List[np.ndarray],
    texels: List[np.ndarray],
) -> List[StreamEntry]:
    """Merge per-node work lists back into global submission order.

    Produces the distributor's stream of ``(triangle, node, pixels,
    texels)`` entries, ordered by triangle id and, within one triangle,
    by node id — the order a broadcast distribution network would emit.
    """
    entries: List[StreamEntry] = []
    for node, ids in enumerate(triangles):
        px = pixels[node]
        tx = texels[node]
        for slot, tri in enumerate(ids.tolist()):
            entries.append((tri, node, int(px[slot]), int(tx[slot])))
    entries.sort()
    return entries


def run_event_machine(
    stream: Sequence[StreamEntry],
    num_processors: int,
    fifo_capacity: int,
    setup_cycles: int,
    bus_ratio: float,
    release: Optional[np.ndarray] = None,
    stats: Optional[Dict[str, Any]] = None,
    recorder: Optional["RecorderLike"] = None,
) -> Tuple[float, List[float]]:
    """Simulate the machine with finite FIFOs; returns (cycles, per-node finish).

    ``release`` (per-triangle geometry release times) throttles the
    distributor when a finite-rate geometry stage is modelled.
    ``stats`` (optional dict) receives head-of-line accounting:
    ``blocked_cycles``, ``blocked_per_node``, ``fifo_high_water`` and
    aggregate ``bus_totals``.  ``recorder`` (optional event recorder)
    is threaded into the kernel, the FIFOs and the node processes;
    simulated timing is identical with or without it.
    """
    sim = Simulator(recorder=recorder)
    fifos = [
        BoundedFifo(sim, fifo_capacity, name=f"tri-fifo-{n}", recorder=recorder)
        for n in range(num_processors)
    ]
    buses = [BusModel(bus_ratio) for _ in range(num_processors)]
    finish = [0.0] * num_processors
    processes = [
        sim.process(
            _node_process(sim, fifos[n], setup_cycles, buses[n], finish, n),
            name=f"node-{n}",
        )
        for n in range(num_processors)
    ]
    if stats is None:
        stats = {}
    processes.append(
        sim.process(
            _distributor_process(sim, fifos, stream, release, stats),
            name="distributor",
        )
    )
    total = sim.run_all(processes)
    stats["fifo_high_water"] = [fifo.high_water for fifo in fifos]
    stats["bus_totals"] = {
        "transfers": sum(bus.transfers for bus in buses),
        "texels": sum(bus.texels_delivered for bus in buses),
        "busy_cycles": sum(bus.busy_cycles for bus in buses),
    }
    return total, finish

"""Finite-rate geometry stage.

Factor 1 of the paper's performance discussion (Section 2.3) is "the
communication cost induced by triangle distribution between the
geometry stage and the texture mapping stage"; the paper sets it aside
("we do not address this issue") by assuming ideal geometry.  This
module removes that idealisation so a user can size a *balanced*
machine: G geometry engines transform triangles round-robin at a fixed
per-triangle cost and release them, in strict submission order, to the
distributor.

With the stage enabled, a triangle cannot enter any node FIFO before
the geometry stage has produced it — if the texture-mapping side is
fast enough, the machine becomes geometry-bound, which is exactly the
regime the paper's scaling results silently assume away.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


def geometry_release_times(
    num_triangles: int,
    num_geometry_engines: int,
    cycles_per_triangle: float,
) -> np.ndarray:
    """Cycle at which each triangle leaves the geometry stage.

    Triangles are dealt round-robin over the engines (the sort-middle
    front end of Figure 4); each engine is a simple pipeline processing
    one triangle per ``cycles_per_triangle``.  Release preserves
    submission order: the in-order distributor cannot run ahead of the
    slowest predecessor, so the effective release time is the running
    maximum over the stream.
    """
    if num_geometry_engines < 1:
        raise ConfigurationError("need at least one geometry engine")
    if cycles_per_triangle < 0:
        raise ConfigurationError("geometry cost must be >= 0")
    if num_triangles == 0:
        return np.zeros(0)
    indices = np.arange(num_triangles)
    per_engine_slot = indices // num_geometry_engines
    finished = (per_engine_slot + 1) * cycles_per_triangle
    # In-order release: a triangle is only handed on once every earlier
    # one has been.  Round-robin finish times are already monotone in
    # slot, and within a slot in engine order, so the running maximum
    # is exact (and cheap).
    return np.maximum.accumulate(finished)


def throttle_stream(
    stream: List[Tuple[int, int, int]],
    triangle_of_entry: List[int],
    release: np.ndarray,
) -> List[Tuple[float, int, int, int]]:
    """Attach geometry release times to a distributor stream.

    Returns ``(release_time, node, pixels, texels)`` entries in order.
    """
    if len(stream) != len(triangle_of_entry):
        raise ConfigurationError("stream and triangle ids disagree on length")
    return [
        (float(release[tri]), node, pixels, texels)
        for (node, pixels, texels), tri in zip(stream, triangle_of_entry)
    ]

"""Top-level machine simulation.

Gluing the substrates together: rasterise the scene once, route
triangles through the distribution, replay each node's fragment stream
through its private cache, then run the timing model.  Two timing paths
exist — an exact fast path for machines whose triangle FIFO never fills
(the paper's default 10 000-entry buffer) and the event-driven path for
the finite-buffer study — and they agree cycle for cycle on the
never-full case (``timing_mode`` lets tests force either path to
enforce that claim).

Everything upstream of the timing model is a pipeline artifact
(:mod:`repro.pipeline`): ``build_routed_work`` memoizes the routing
plan and cache replay by content identity, so timing-only sweeps (FIFO
depth, bus ratio) and repeated sweep points pay for their shared
prefixes once.  The timing model itself is instrumented under the
``timing`` stage of ``pipeline.stats()``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.bus.bus import BusModel, publish_bus_totals
from repro.cache.models import make_cache_model
from repro.core.config import MachineConfig
from repro.core.distributor import interleave_stream, run_event_machine
from repro.core.geometry_stage import geometry_release_times
from repro.core.node import drain_node
from repro.core.results import MachineResult, NodeTimings
from repro.core.routing import RoutedWork, build_routed_work
from repro.distribution.single import SingleProcessor
from repro.errors import ConfigurationError
from repro.geometry.scene import Scene

#: Valid ``timing_mode`` arguments of :func:`simulate_machine`.
TIMING_MODES = ("auto", "fast", "event")


def _fifo_is_effectively_infinite(config: MachineConfig, work: RoutedWork) -> bool:
    """True when no FIFO can ever fill, so the fast path is exact."""
    deepest = max((len(ids) for ids in work.triangles), default=0)
    return config.fifo_capacity > deepest


def simulate_machine(
    scene: Scene,
    config: MachineConfig,
    baseline_cycles: Optional[float] = None,
    routed: Optional[RoutedWork] = None,
    timing_mode: str = "auto",
) -> MachineResult:
    """Simulate one frame of ``scene`` on the configured machine.

    ``routed`` lets callers that sweep timing-only parameters (FIFO
    size, bus ratio) reuse one routing/cache replay across runs.
    ``timing_mode`` selects the timing path: ``"auto"`` (the default)
    takes the exact fast path whenever the FIFO can never fill,
    ``"fast"`` forces it (only exact on a never-full machine) and
    ``"event"`` forces the event-driven path — the two must agree
    cycle for cycle on a never-full machine.
    """
    if timing_mode not in TIMING_MODES:
        raise ConfigurationError(
            f"timing_mode must be one of {TIMING_MODES}, got {timing_mode!r}"
        )
    from repro import obs
    from repro.pipeline import stage_timer

    # One attribute check up front: the hot loops below see either a
    # live recorder or None, never the null object's method dispatch.
    active = obs.recorder()
    recorder = active if active.enabled else None

    work = routed or build_routed_work(
        scene,
        config.distribution,
        cache_spec=config.cache,
        cache_config=config.cache_config,
        setup_cycles=config.setup_cycles,
    )
    n = work.num_processors

    release: Optional[np.ndarray] = None
    if config.geometry_engines > 0:
        release = geometry_release_times(
            scene.num_triangles, config.geometry_engines, config.geometry_cycles
        )

    if timing_mode == "auto":
        use_fast = _fifo_is_effectively_infinite(config, work)
    else:
        use_fast = timing_mode == "fast"

    extras: Dict[str, Any] = {}
    bus_totals: Dict[str, float] = {"transfers": 0, "texels": 0, "busy_cycles": 0.0}
    with stage_timer("timing"):
        if use_fast:
            finish = np.zeros(n)
            busy = np.zeros(n)
            stall = np.zeros(n)
            for node in range(n):
                arrivals = release[work.triangles[node]] if release is not None else None
                bus = BusModel(config.bus_ratio)
                timing = drain_node(
                    work.pixels[node],
                    work.texels[node],
                    config.setup_cycles,
                    config.bus_ratio,
                    arrivals=arrivals,
                    recorder=recorder,
                    node_id=node,
                    bus=bus,
                )
                finish[node] = timing.finish
                busy[node] = timing.busy_cycles
                stall[node] = timing.stall_cycles
                for series, amount in bus.totals().items():
                    bus_totals[series] += amount
            cycles = float(finish.max()) if n else 0.0
        else:
            stream = interleave_stream(work.triangles, work.pixels, work.texels)
            event_stats: Dict[str, Any] = {}
            cycles, node_finish = run_event_machine(
                stream,
                n,
                config.fifo_capacity,
                config.setup_cycles,
                config.bus_ratio,
                release=release,
                stats=event_stats,
                recorder=recorder,
            )
            finish = np.asarray(node_finish)
            busy = np.array(
                [np.maximum(p, config.setup_cycles).sum() for p in work.pixels],
                dtype=float,
            )
            stall = finish - busy
            bus_totals = event_stats.get("bus_totals", bus_totals)
            extras = {
                "distributor_blocked_cycles": event_stats.get("blocked_cycles", 0.0),
                "distributor_blocked_per_node": event_stats.get("blocked_per_node"),
                "fifo_high_water": event_stats.get("fifo_high_water"),
            }

    registry = obs.registry()
    registry.counter("machine.simulations").inc()
    publish_bus_totals(registry, bus_totals, scene=scene.name)
    work.cache.publish(registry, scene=scene.name)

    cache_model = make_cache_model(config.cache, config.cache_config)
    return MachineResult(
        scene_name=scene.name,
        distribution=config.distribution.describe(),
        cache_name=cache_model.name,
        bus_ratio=config.bus_ratio,
        fifo_capacity=config.fifo_capacity,
        num_processors=n,
        cycles=cycles,
        timings=NodeTimings(finish=finish, busy=busy, stall=stall),
        node_pixels=work.node_pixels,
        node_work=work.node_work,
        cache=work.cache,
        baseline_cycles=baseline_cycles,
        extras=extras,
    )


def single_processor_baseline(scene: Scene, config: MachineConfig) -> float:
    """Frame time of the same engine with one processor.

    Everything but the distribution is inherited from ``config`` so the
    speedup isolates the effect of parallelisation.
    """
    solo = config.with_distribution(SingleProcessor())
    return simulate_machine(scene, solo).cycles


def speedup(scene: Scene, config: MachineConfig) -> float:
    """Convenience wrapper: baseline cycles / parallel cycles."""
    baseline = single_processor_baseline(scene, config)
    result = simulate_machine(scene, config, baseline_cycles=baseline)
    if result.cycles == 0:
        return float(config.num_processors)
    return baseline / result.cycles

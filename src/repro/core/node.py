"""Node timing model.

A node draws its routed triangles strictly in order.  Each triangle
occupies the engine for ``max(setup_cycles, pixels)`` cycles — the
setup engine can start a triangle only every 25 pixels' worth of time,
so a small clipped intersection is setup-bound — and its texture
fetches serialise on the node's private bus.  Prefetching hides all
latency (Igehy), so the only memory effect is bandwidth backlog: a
triangle cannot retire before the bus has delivered its texels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.bus.bus import BusModel

if TYPE_CHECKING:
    from repro.obs.recorder import RecorderLike


@dataclass
class NodeTimingResult:
    """Cycle accounting for one node's full stream (infinite FIFO)."""

    finish: float
    busy_cycles: float
    stall_cycles: float


def drain_node(
    pixels: np.ndarray,
    texels: np.ndarray,
    setup_cycles: int,
    bus_ratio: float,
    arrivals: Optional[np.ndarray] = None,
    recorder: Optional["RecorderLike"] = None,
    node_id: int = 0,
    bus: Optional[BusModel] = None,
) -> NodeTimingResult:
    """Time a node that always has its next triangle available.

    This is the exact behaviour of a node behind an unbounded (or never
    full, never empty) triangle FIFO, so the machine simulator uses it
    as the fast path whenever the configured FIFO can hold the whole
    stream.  It matches the event-driven path cycle for cycle.

    ``arrivals`` (optional, monotone) holds each triangle's earliest
    start time — with a finite-rate geometry stage and unbounded FIFOs
    that is exactly its geometry release time.

    ``recorder`` (optional event recorder) receives per-triangle
    busy/stall spans on the ``("sim", "node-<node_id>")`` track; the
    timing itself is identical with or without it.  ``bus`` lets the
    caller keep the :class:`BusModel` for its transfer accounting.
    """
    if bus is None:
        bus = BusModel(bus_ratio)
    if recorder is None and arrivals is None and not bus.free_at > 0.0:
        return _drain_batch(pixels, texels, setup_cycles, bus)
    track = ("sim", f"node-{node_id}")
    time = 0.0
    busy = 0.0
    stall = 0.0
    compute_list = np.maximum(pixels, setup_cycles).tolist()
    texel_list = texels.tolist()
    arrival_list = arrivals.tolist() if arrivals is not None else None
    for index, (compute, demanded) in enumerate(zip(compute_list, texel_list)):
        if arrival_list is not None and arrival_list[index] > time:
            time = arrival_list[index]
        data_done = bus.request(time, int(demanded))
        end = time + compute
        if recorder is not None:
            recorder.span(track, "busy", time, end, args={"texels": int(demanded)})
        if data_done > end:
            stall += data_done - end
            if recorder is not None:
                recorder.span(track, "stall", end, data_done)
            end = data_done
        busy += compute
        time = end
    return NodeTimingResult(finish=time, busy_cycles=busy, stall_cycles=stall)


def _drain_batch(
    pixels: np.ndarray,
    texels: np.ndarray,
    setup_cycles: int,
    bus: BusModel,
) -> NodeTimingResult:
    """Closed-form drain of a stream with no arrivals and a fresh bus.

    With every triangle immediately available and the bus never busy
    ahead of the engine, the loop invariant ``free_at <= time`` holds
    throughout, so each step reduces to ``time += max(compute,
    transfer)``.  IEEE addition is weakly monotone, which makes
    ``max(time + c, time + t)`` equal to ``time + max(c, t)`` at value
    level, and ``np.cumsum`` is the same sequential left-fold as the
    scalar accumulation — every quantity below is bit-identical to the
    reference loop (the equivalence tests pin this).
    """
    count = len(pixels)
    if count == 0:
        return NodeTimingResult(finish=0.0, busy_cycles=0.0, stall_cycles=0.0)
    compute = np.maximum(pixels, setup_cycles).astype(np.float64)
    demand = np.asarray(texels, dtype=np.float64)
    transfer = np.where(demand == 0.0, 0.0, demand / bus.texels_per_cycle)
    spans = np.maximum(compute, transfer)
    ends = np.cumsum(spans)
    starts = np.concatenate(([0.0], ends[:-1]))
    data_done = starts + transfer
    engine_done = starts + compute
    lag = data_done - engine_done
    stall = float(np.cumsum(np.where(lag > 0.0, lag, 0.0))[-1])
    busy = float(np.cumsum(compute)[-1])
    bus.free_at = float(data_done[-1])
    bus.transfers += count
    bus.texels_delivered += int(np.sum(texels))
    bus.busy_cycles += float(np.cumsum(transfer)[-1])
    return NodeTimingResult(
        finish=float(ends[-1]), busy_cycles=busy, stall_cycles=stall
    )


def triangle_service_time(
    start: float,
    pixels: int,
    texels: int,
    setup_cycles: int,
    bus: BusModel,
) -> float:
    """Completion time of one triangle started at ``start``.

    Shared by the event-driven node process so that both timing paths
    apply the identical rule.
    """
    data_done = bus.request(start, texels)
    return max(start + max(pixels, setup_cycles), data_done)

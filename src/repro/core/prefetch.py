"""Prefetching pixel-FIFO model — validating the zero-latency claim.

The paper leans on Igehy, Eldridge & Proudfoot: "prefetching with a
pixel buffer reaches the performance of a zero latency system", and
therefore models memory as pure bandwidth.  This module earns that
assumption instead of asserting it: a fragment-granularity simulation
of the prefetch architecture — the texel address generator runs ahead,
issuing each fragment's line fetches into a latency+bandwidth memory,
while the fragment waits in a pixel FIFO; the filter retires fragments
in order once their data has arrived.

With a FIFO deeper than (latency x issue rate) the pipeline time
collapses to ``max(compute, bandwidth) + one latency``, i.e. the
zero-latency model the machine simulator uses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PrefetchResult:
    """Outcome of one pixel-pipeline run."""

    cycles: float
    zero_latency_cycles: float
    fragments: int

    @property
    def slowdown(self) -> float:
        """Time relative to the zero-latency machine (1.0 == hidden)."""
        if self.zero_latency_cycles == 0:
            return 1.0
        return self.cycles / self.zero_latency_cycles


def simulate_prefetch_pipeline(
    misses_per_fragment: np.ndarray,
    fifo_depth: int,
    memory_latency: float,
    bus_ratio: float,
    texels_per_miss: int = 16,
) -> PrefetchResult:
    """Simulate the prefetching pixel pipeline over one fragment stream.

    Parameters
    ----------
    misses_per_fragment:
        Cache misses (line fetches) each fragment triggers, in stream
        order — exactly what a cache replay produces.
    fifo_depth:
        Fragments the pixel FIFO can hold between the address generator
        and the filter.
    memory_latency:
        Cycles from fetch issue to data return (pipelined: requests
        overlap; bandwidth is the separate ``bus_ratio`` limit).
    bus_ratio:
        Sustained texels per cycle the memory can deliver.
    """
    if fifo_depth < 1:
        raise ConfigurationError(f"pixel FIFO depth must be >= 1, got {fifo_depth}")
    if memory_latency < 0:
        raise ConfigurationError(f"latency must be >= 0, got {memory_latency}")
    if bus_ratio <= 0:
        raise ConfigurationError(f"bus ratio must be positive, got {bus_ratio}")

    misses = np.asarray(misses_per_fragment, dtype=np.int64)
    transfer = texels_per_miss / bus_ratio
    cycles = _pipeline_cycles(misses, fifo_depth, memory_latency, transfer)
    # The zero-latency reference is the same pipeline with instant
    # memory and an unbounded FIFO — the model the machine simulator
    # uses (bandwidth-only).
    zero_latency = _pipeline_cycles(misses, len(misses) + 1, 0.0, transfer)
    return PrefetchResult(
        cycles=cycles, zero_latency_cycles=zero_latency, fragments=len(misses)
    )


def _pipeline_cycles(
    misses: np.ndarray, fifo_depth: int, memory_latency: float, transfer: float
) -> float:
    n = len(misses)

    # Dataflow recurrence.  Fragment k is issued one cycle after k-1 at
    # the earliest, but no earlier than the retirement of fragment
    # (k - fifo_depth) — at most fifo_depth fragments sit between the
    # address generator and the filter.  Its data is ready one latency
    # after its bandwidth-serialised transfer; fragments retire in
    # order at one per cycle once their data is there.
    # Premultiply the per-fragment transfer costs in one array pass;
    # ``count * transfer`` is elementwise-identical either way, and the
    # recurrence below is the only genuinely sequential part.  The
    # miss/hit branch still tests ``count``: a miss with a zero-cost
    # transfer must take the latency path.
    costs = misses * transfer
    retires: Deque[float] = deque()
    issue = -1.0
    bus_free = 0.0
    last_retire = -1.0
    for count, cost in zip(misses.tolist(), costs.tolist()):
        issue += 1.0
        if len(retires) >= fifo_depth:
            issue = max(issue, retires.popleft())
        if count:
            begin = max(bus_free, issue)
            bus_free = begin + cost
            ready = bus_free + memory_latency
        else:
            ready = issue
        last_retire = max(last_retire + 1.0, ready)
        retires.append(last_retire)

    return last_retire + 1.0 if n else 0.0


def latency_hiding_curve(
    misses_per_fragment: np.ndarray,
    fifo_depths: Iterable[int],
    memory_latency: float,
    bus_ratio: float,
) -> Dict[int, float]:
    """Slowdown vs FIFO depth — the Igehy validation sweep."""
    return {
        depth: simulate_prefetch_pipeline(
            misses_per_fragment, depth, memory_latency, bus_ratio
        ).slowdown
        for depth in fifo_depths
    }

"""Machine simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.cache.stats import CacheRunResult


@dataclass
class NodeTimings:
    """Per-node cycle accounting."""

    finish: np.ndarray
    busy: np.ndarray
    stall: np.ndarray

    @property
    def critical_node(self) -> int:
        """The node that determines the frame time."""
        return int(np.argmax(self.finish))


@dataclass
class MachineResult:
    """Everything one machine simulation produced.

    ``cycles`` is the frame time; speedups divide a single-processor
    baseline's cycles by it.
    """

    scene_name: str
    distribution: str
    cache_name: str
    bus_ratio: float
    fifo_capacity: int
    num_processors: int
    cycles: float
    timings: NodeTimings
    node_pixels: np.ndarray
    node_work: np.ndarray
    cache: CacheRunResult
    baseline_cycles: Optional[float] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def speedup(self) -> Optional[float]:
        """Speedup over the recorded single-processor baseline."""
        if self.baseline_cycles is None or self.cycles == 0:
            return None
        return self.baseline_cycles / self.cycles

    @property
    def efficiency(self) -> Optional[float]:
        """Speedup per processor (1.0 == linear scaling)."""
        if self.speedup is None:
            return None
        return self.speedup / self.num_processors

    def work_imbalance_percent(self) -> float:
        """Figure-5 metric: busiest node's extra work over the average."""
        average = self.node_work.mean()
        if average == 0:
            return 0.0
        return (self.node_work.max() / average - 1.0) * 100.0

    @property
    def texel_to_fragment(self) -> float:
        """Figure-6 metric, aggregated over every node."""
        return self.cache.texel_to_fragment

    def summary(self) -> str:
        """One-line report, the grain the benchmark harness prints."""
        parts = [
            f"{self.scene_name:<16}",
            f"{self.distribution:<14}",
            f"cache={self.cache_name:<8}",
            f"bus={self.bus_ratio:g}",
            f"fifo={self.fifo_capacity}",
            f"cycles={self.cycles:.0f}",
        ]
        if self.speedup is not None:
            parts.append(f"speedup={self.speedup:.2f}")
        parts.append(f"t/f={self.texel_to_fragment:.3f}")
        return "  ".join(parts)

"""Triangle routing and per-node work extraction.

Turns (scene, distribution) into per-node work lists: for every node,
the triangles routed to it (bounding-box routing, in submission order)
with the pixels it will draw of each and — once the cache replay has
run — the texels each triangle pulls over the node's bus.

The computation is staged for the artifact pipeline: a
:class:`RoutingPlan` (geometry only — routing lists and the pixel
matrix) and a :class:`ReplayResult` (per-node cache replay) are
produced independently and combined into a :class:`RoutedWork` by
:func:`assemble_routed_work`.  Each stage is memoized by content
identity in :mod:`repro.pipeline`, so e.g. bbox-vs-coverage routing
contrasts share one cache replay and a FIFO sweep shares one of
everything.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Union

import numpy as np

from repro.cache.models import PerfectCache, TextureCacheModel, make_cache_model
from repro.cache.stats import CacheRunResult
from repro.cache.stream import DEFAULT_CHUNK, replay_fragments
from repro.distribution.base import Distribution
from repro.errors import ConfigurationError
from repro.geometry.scene import Scene
from repro.texture.filtering import TEXELS_PER_FRAGMENT, TrilinearFilter

if TYPE_CHECKING:
    from repro.cache.config import CacheConfig
    from repro.raster.fragments import FragmentBuffer
    from repro.texture.layout import TextureMemoryLayout
    from repro.texture.pages import PageTable

#: Cache model spec accepted everywhere a machine is configured.
CacheSpec = Union[str, TextureCacheModel, None]


@dataclass
class RoutingPlan:
    """The geometry half of routed work: where triangles and pixels go.

    ``routed[t]`` are the nodes triangle ``t`` is sent to;
    ``pixel_matrix`` is the flattened (triangle, node) pixel count
    table; ``node_pixels`` the per-node totals.  Everything here is
    independent of the cache model, so one plan serves every cache and
    timing configuration of the same (scene, distribution, routing
    mode).
    """

    num_processors: int
    routed: List[np.ndarray]
    pixel_matrix: np.ndarray
    node_pixels: np.ndarray


@dataclass
class ReplayResult:
    """The cache half of routed work: per-node texture-bus demand.

    ``texels_per_node_tri[n][t]`` is the bus texels triangle ``t``
    costs node ``n``; ``cache`` aggregates hit/miss behaviour over all
    nodes.  Independent of the routing mode and of setup/timing
    parameters.
    """

    texels_per_node_tri: List[np.ndarray]
    cache: CacheRunResult


@dataclass
class RoutedWork:
    """Per-node work lists plus machine-wide cache statistics.

    For node ``n``, ``triangles[n]``, ``pixels[n]`` and ``texels[n]``
    are aligned arrays in submission order: triangle ids, pixels the
    node draws of each, and bus texels each demands.  A routed triangle
    can have zero pixels (its bounding box grazed a tile) — it still
    costs a setup slot.
    """

    num_processors: int
    triangles: List[np.ndarray]
    pixels: List[np.ndarray]
    texels: List[np.ndarray]
    #: Pixels drawn per node (load-balance numerator).
    node_pixels: np.ndarray
    #: max(setup, pixels) summed per node: the Figure-5 work metric.
    node_work: np.ndarray
    #: Aggregate cache behaviour over all nodes (Figure-6 metric).
    cache: CacheRunResult

    def imbalance_percent(self) -> float:
        """Percent extra work of the busiest node over the average."""
        average = self.node_work.mean()
        if average == 0:
            return 0.0
        return (self.node_work.max() / average - 1.0) * 100.0


def route_triangles(scene: Scene, distribution: Distribution) -> List[np.ndarray]:
    """Bounding-box routing: nodes each triangle is sent to, per triangle.

    This is what a real sort-middle distributor computes — it may route
    a triangle to a node whose tiles its box grazes without covering a
    pixel; that node still pays the 25-cycle setup (the small-triangle
    overhead of Section 2.3).
    """
    width, height = scene.width, scene.height
    routed: List[np.ndarray] = []
    for triangle in scene.triangles:
        min_x, min_y, max_x, max_y = triangle.bounding_box()
        x0 = min(width - 1, max(0, int(math.floor(min_x))))
        y0 = min(height - 1, max(0, int(math.floor(min_y))))
        x1 = min(width - 1, max(x0, int(math.ceil(max_x)) - 1))
        y1 = min(height - 1, max(y0, int(math.ceil(max_y)) - 1))
        routed.append(distribution.nodes_in_box(x0, y0, x1, y1))
    return routed


def route_by_coverage(
    pixel_matrix: np.ndarray, num_triangles: int, num_processors: int
) -> List[np.ndarray]:
    """Exact-coverage routing: only nodes that draw >= 1 pixel.

    The idealised contrast case for the routing ablation — it needs
    oracle knowledge of the rasterisation, so no real distributor can
    implement it, but it isolates how much the grazed-tile setup slots
    of bounding-box routing cost.
    """
    routed: List[np.ndarray] = []
    for tri_id in range(num_triangles):
        row = pixel_matrix[tri_id * num_processors : (tri_id + 1) * num_processors]
        routed.append(np.flatnonzero(row))
    return routed


def compute_routing_plan(
    scene: Scene,
    distribution: Distribution,
    fragments: "FragmentBuffer",
    route_by: str = "bbox",
) -> RoutingPlan:
    """Route a fragment stream: the cache-independent half of the work."""
    if route_by not in ("bbox", "coverage"):
        raise ConfigurationError(f"route_by must be bbox or coverage, got {route_by!r}")
    n_proc = distribution.num_processors
    n_tri = scene.num_triangles

    owners = distribution.owners(fragments.x, fragments.y)
    # Pixels drawn per (triangle, node).
    key = fragments.triangle.astype(np.int64) * n_proc + owners
    pixel_matrix = np.bincount(key, minlength=n_tri * n_proc)
    node_pixels = np.bincount(owners, minlength=n_proc).astype(np.int64)

    if route_by == "bbox":
        routed = route_triangles(scene, distribution)
    else:
        routed = route_by_coverage(pixel_matrix, n_tri, n_proc)

    return RoutingPlan(
        num_processors=n_proc,
        routed=routed,
        pixel_matrix=pixel_matrix,
        node_pixels=node_pixels,
    )


def compute_replay(
    scene: Scene,
    distribution: Distribution,
    fragments: "FragmentBuffer",
    cache_spec: CacheSpec = "lru",
    cache_config: Optional["CacheConfig"] = None,
    layout: Optional["TextureMemoryLayout"] = None,
    chunk_size: Optional[int] = None,
    translator: Optional["PageTable"] = None,
) -> ReplayResult:
    """Replay every node's fragment stream through its private cache.

    ``translator`` optionally rewrites the line-address stream before
    it reaches the cache model — the virtual-texturing page table maps
    virtual lines onto its resident physical frames here.  Translation
    is pure (the table is frozen within a frame), so per-node replay
    order cannot perturb it.
    """
    layout = layout or scene.memory_layout()
    tex_filter = TrilinearFilter(layout)
    translate = None if translator is None else translator.translate
    address_lines = layout.total_lines
    if translator is not None:
        address_lines = max(address_lines, translator.address_space_lines)
    n_proc = distribution.num_processors
    n_tri = scene.num_triangles
    owners = distribution.owners(fragments.x, fragments.y)

    probe_model = make_cache_model(cache_spec, cache_config)
    total_cache = CacheRunResult(texels_by_triangle=np.zeros(n_tri, dtype=np.int64))
    texels_per_node_tri: List[np.ndarray] = []
    if isinstance(probe_model, PerfectCache):
        # A perfect cache never fetches; skip the (expensive) replay.
        total_cache.fragments = len(fragments)
        total_cache.texel_accesses = len(fragments) * TEXELS_PER_FRAGMENT
        total_cache.line_accesses = total_cache.texel_accesses
        zero = np.zeros(n_tri, dtype=np.int64)
        texels_per_node_tri = [zero for _ in range(n_proc)]
    else:
        # Per-node cache replay, in each node's own stream order.
        order = np.argsort(owners, kind="stable")
        sorted_owners = owners[order]
        starts = np.searchsorted(sorted_owners, np.arange(n_proc))
        ends = np.searchsorted(sorted_owners, np.arange(n_proc) + 1)
        for node in range(n_proc):
            rows = order[starts[node] : ends[node]]
            node_fragments = fragments.select(rows)
            model = make_cache_model(cache_spec, cache_config)
            if model.texels_per_fetch != 1:
                # Line fills carry however many texels the layout's
                # texel format packs into 64 bytes.
                model.texels_per_fetch = layout.texels_per_line
            seen = np.zeros(address_lines, dtype=bool)
            run = replay_fragments(
                node_fragments,
                tex_filter,
                model,
                seen_lines=seen,
                chunk_size=chunk_size or DEFAULT_CHUNK,
                translate=translate,
            )
            total_cache = total_cache.merged_with(run)
            texels_per_node_tri.append(run.texels_by_triangle)

    return ReplayResult(texels_per_node_tri=texels_per_node_tri, cache=total_cache)


def assemble_routed_work(
    plan: RoutingPlan,
    replay: ReplayResult,
    setup_cycles: int = 25,
) -> RoutedWork:
    """Combine a routing plan and a cache replay into per-node work lists."""
    n_proc = plan.num_processors
    routed = plan.routed
    if routed:
        lengths = np.fromiter(
            (len(nodes) for nodes in routed), dtype=np.int64, count=len(routed)
        )
        tri_ids = np.repeat(np.arange(len(routed), dtype=np.int64), lengths)
        node_ids = np.concatenate([np.asarray(n, dtype=np.int64) for n in routed])
    else:
        tri_ids = np.zeros(0, dtype=np.int64)
        node_ids = np.zeros(0, dtype=np.int64)
    # Stable sort by node keeps each node's triangles in submission order.
    order = np.argsort(node_ids, kind="stable")
    sorted_nodes = node_ids[order]
    sorted_tris = tri_ids[order]
    starts = np.searchsorted(sorted_nodes, np.arange(n_proc))
    ends = np.searchsorted(sorted_nodes, np.arange(n_proc) + 1)

    empty = np.zeros(0, dtype=np.int64)
    triangles: List[np.ndarray] = []
    pixels: List[np.ndarray] = []
    texels: List[np.ndarray] = []
    node_work = np.zeros(n_proc, dtype=np.int64)
    for node in range(n_proc):
        ids = sorted_tris[starts[node] : ends[node]]
        triangles.append(ids)
        if len(ids):
            px = plan.pixel_matrix[ids * n_proc + node]
            tx = replay.texels_per_node_tri[node][ids]
            node_work[node] = np.maximum(px, setup_cycles).sum()
        else:
            px, tx = empty, empty
        pixels.append(px)
        texels.append(tx)

    return RoutedWork(
        num_processors=n_proc,
        triangles=triangles,
        pixels=pixels,
        texels=texels,
        node_pixels=plan.node_pixels,
        node_work=node_work,
        cache=replay.cache,
    )


def build_routed_work(
    scene: Scene,
    distribution: Distribution,
    cache_spec: CacheSpec = "lru",
    cache_config: Optional["CacheConfig"] = None,
    setup_cycles: int = 25,
    chunk_size: Optional[int] = None,
    layout: Optional["TextureMemoryLayout"] = None,
    route_by: str = "bbox",
    fragments: Optional["FragmentBuffer"] = None,
    translator: Optional["PageTable"] = None,
) -> RoutedWork:
    """Route a scene and replay every node's stream through its cache.

    ``layout`` overrides the scene's default block-linear texture
    layout (used by the texture-blocking ablation).  ``route_by`` is
    ``"bbox"`` (realistic bounding-box routing, the default) or
    ``"coverage"`` (oracle routing, the ablation contrast).
    ``fragments`` overrides the scene's rasterisation — the early-Z
    ablation passes the depth-resolved survivor stream here.
    ``translator`` rewrites line addresses through a virtual-texturing
    page table before the cache sees them (:mod:`repro.texture.pages`).

    Delegates to :func:`repro.pipeline.routed_work`, which memoizes
    the routing plan, the cache replay and the assembled work by
    content identity whenever the inputs are keyable.
    """
    from repro.pipeline import routed_work

    return routed_work(
        scene,
        distribution,
        cache_spec=cache_spec,
        cache_config=cache_config,
        setup_cycles=setup_cycles,
        chunk_size=chunk_size,
        layout=layout,
        route_by=route_by,
        fragments=fragments,
        translator=translator,
    )

"""Sort-last texture mapping — the comparison architecture.

In Molnar's taxonomy the paper's machine is sort-middle (image-space
distribution); the alternative the authors studied in their earlier
work ([13], [14]) is *sort-last*: triangles are distributed over the
nodes regardless of screen position, each node rasterizes its own
triangles over the whole screen, and a compositing network merges the
full-screen images.  Textures of one object stay on one node — good
texture locality — but strict OpenGL drawing order is lost in the
composition, which is the paper's argument for sort-middle.

This module simulates that machine as a baseline: round-robin
distribution of (chunks of) triangles, per-node full-screen
rasterization, private caches, and an ideal compositing network (the
paper likewise idealises its distribution network).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.cache.models import TextureCacheModel, make_cache_model
from repro.cache.stats import CacheRunResult
from repro.cache.stream import replay_fragments
from repro.core.config import DEFAULT_SETUP_CYCLES
from repro.core.node import drain_node
from repro.core.results import MachineResult, NodeTimings
from repro.errors import ConfigurationError
from repro.geometry.scene import Scene
from repro.texture.filtering import TrilinearFilter

if TYPE_CHECKING:
    from repro.cache.config import CacheConfig


def sort_last_assignment(
    num_triangles: int, num_processors: int, chunk_size: int = 1
) -> np.ndarray:
    """Round-robin triangle-to-node table.

    ``chunk_size`` groups consecutive triangles before dealing them
    out; since scenes submit each object's triangles contiguously, a
    chunk of ~an object's size approximates per-object distribution
    (the realistic sort-last granularity — an object's texture then
    lives on one node).
    """
    if num_processors < 1:
        raise ConfigurationError("need at least one processor")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk size must be >= 1, got {chunk_size}")
    chunks = np.arange(num_triangles) // chunk_size
    return chunks % num_processors


def simulate_sort_last(
    scene: Scene,
    num_processors: int,
    chunk_size: int = 1,
    cache: Union[str, TextureCacheModel] = "lru",
    cache_config: Optional["CacheConfig"] = None,
    bus_ratio: float = 1.0,
    setup_cycles: int = DEFAULT_SETUP_CYCLES,
    baseline_cycles: Optional[float] = None,
) -> MachineResult:
    """Simulate one frame on the sort-last machine.

    Composition is ideal (as the sort-middle machine's networks are),
    so the frame time is the slowest node's rasterisation time.
    """
    fragments = scene.fragments()
    layout = scene.memory_layout()
    tex_filter = TrilinearFilter(layout)
    assignment = sort_last_assignment(scene.num_triangles, num_processors, chunk_size)

    pixel_counts = fragments.triangle_pixel_counts()
    owners = (
        assignment[fragments.triangle]
        if len(fragments)
        else np.zeros(0, dtype=np.int64)
    )
    order = np.argsort(owners, kind="stable")
    sorted_owners = owners[order]
    starts = np.searchsorted(sorted_owners, np.arange(num_processors))
    ends = np.searchsorted(sorted_owners, np.arange(num_processors) + 1)

    finish = np.zeros(num_processors)
    busy = np.zeros(num_processors)
    stall = np.zeros(num_processors)
    node_pixels = np.zeros(num_processors, dtype=np.int64)
    node_work = np.zeros(num_processors, dtype=np.int64)
    total_cache = CacheRunResult(
        texels_by_triangle=np.zeros(scene.num_triangles, dtype=np.int64)
    )

    for node in range(num_processors):
        triangle_ids = np.flatnonzero(assignment == node)
        rows = order[starts[node] : ends[node]]
        node_fragments = fragments.select(rows)
        model = make_cache_model(cache, cache_config)
        run = replay_fragments(node_fragments, tex_filter, model)
        total_cache = total_cache.merged_with(run)

        pixels = pixel_counts[triangle_ids]
        texels = run.texels_by_triangle[triangle_ids]
        timing = drain_node(pixels, texels, setup_cycles, bus_ratio)
        finish[node] = timing.finish
        busy[node] = timing.busy_cycles
        stall[node] = timing.stall_cycles
        node_pixels[node] = pixels.sum()
        node_work[node] = np.maximum(pixels, setup_cycles).sum()

    cache_model = make_cache_model(cache, cache_config)
    return MachineResult(
        scene_name=scene.name,
        distribution=f"sortlast-c{chunk_size}x{num_processors}",
        cache_name=cache_model.name,
        bus_ratio=bus_ratio,
        fifo_capacity=0,
        num_processors=num_processors,
        cycles=float(finish.max()) if num_processors else 0.0,
        timings=NodeTimings(finish=finish, busy=busy, stall=stall),
        node_pixels=node_pixels,
        node_work=node_work,
        cache=total_cache,
        baseline_cycles=baseline_cycles,
        extras={"chunk_size": chunk_size},
    )

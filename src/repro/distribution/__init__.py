"""Image-space work distributions.

The design space the paper explores: how the screen is cut into tiles
and statically, interleaved, assigned to texture-mapping processors.
Two families matter — square-block interleaving and scan-line
interleaving (SLI) — plus degenerate/contrast cases used by tests and
ablations.
"""

from repro.distribution.base import Distribution
from repro.distribution.block import BlockInterleaved
from repro.distribution.sli import ScanLineInterleaved
from repro.distribution.contiguous import ContiguousBands
from repro.distribution.single import SingleProcessor
from repro.distribution.assigned import AssignedTiles, TileGrid, lpt_assignment
from repro.distribution.morton import MortonInterleaved, morton_index

__all__ = [
    "Distribution",
    "BlockInterleaved",
    "ScanLineInterleaved",
    "ContiguousBands",
    "SingleProcessor",
    "TileGrid",
    "AssignedTiles",
    "lpt_assignment",
    "MortonInterleaved",
    "morton_index",
]

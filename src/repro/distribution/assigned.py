"""Tile grids with explicit (e.g. dynamically computed) assignments.

The paper's distributions are static and hard-coded; its future-work
section asks what *dynamic* tile assignment would buy.  These classes
make that question answerable with the existing machinery:

* :class:`TileGrid` — the identity partition, one "processor" per
  square tile; routing it through the load-balance analysis yields
  per-tile work, the input of any assignment policy.
* :class:`AssignedTiles` — a distribution defined by an arbitrary
  tile-to-processor table, so a computed assignment behaves exactly
  like a built-in scheme everywhere (routing, cache replay, timing).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import ConfigurationError


class TileGrid(Distribution):
    """Square ``width``-pixel tiles, each its own owner id.

    ``num_processors`` equals the tile count; owner ids are raster
    order (``ty * tiles_x + tx``).
    """

    def __init__(self, width: int, screen_width: int, screen_height: int) -> None:
        if width < 1:
            raise ConfigurationError(f"tile width must be >= 1, got {width}")
        if screen_width < 1 or screen_height < 1:
            raise ConfigurationError("screen must be at least 1x1")
        self.width = width
        self.screen_width = screen_width
        self.screen_height = screen_height
        self.tiles_x = -(-screen_width // width)
        self.tiles_y = -(-screen_height // width)
        super().__init__(self.tiles_x * self.tiles_y)

    @property
    def num_tiles(self) -> int:
        return self.num_processors

    def owners(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        tx = np.asarray(x, dtype=np.int64) // self.width
        ty = np.asarray(y, dtype=np.int64) // self.width
        return ty * self.tiles_x + tx

    def nodes_in_box(self, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        tx0, tx1 = x0 // self.width, min(x1 // self.width, self.tiles_x - 1)
        ty0, ty1 = y0 // self.width, min(y1 // self.width, self.tiles_y - 1)
        txs = np.arange(tx0, tx1 + 1)
        tys = np.arange(ty0, ty1 + 1)
        return (tys[:, None] * self.tiles_x + txs[None, :]).ravel()

    def describe(self) -> str:
        return f"tiles{self.width}({self.tiles_x}x{self.tiles_y})"


class AssignedTiles(Distribution):
    """A tile grid distributed by an explicit assignment table."""

    def __init__(
        self,
        grid: TileGrid,
        assignment: Sequence[int],
        num_processors: int,
        label: str = "assigned",
    ) -> None:
        super().__init__(num_processors)
        assignment = np.asarray(assignment, dtype=np.int64)
        if len(assignment) != grid.num_tiles:
            raise ConfigurationError(
                f"assignment covers {len(assignment)} tiles, grid has {grid.num_tiles}"
            )
        if len(assignment) and (assignment.min() < 0 or assignment.max() >= num_processors):
            raise ConfigurationError("assignment references an out-of-range processor")
        self.grid = grid
        self.assignment = assignment
        self.label = label

    def owners(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.assignment[self.grid.owners(x, y)]

    def nodes_in_box(self, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        tiles = self.grid.nodes_in_box(x0, y0, x1, y1)
        return np.unique(self.assignment[tiles])

    def describe(self) -> str:
        return f"{self.label}{self.grid.width}x{self.num_processors}"

    def fingerprint(self) -> str:
        # The assignment table is the identity; the label is not.
        import hashlib

        digest = hashlib.sha1(self.assignment.tobytes()).hexdigest()[:16]
        return (
            f"{type(self).__name__}:{self.num_processors}:"
            f"{self.grid.describe()}:{digest}"
        )


def lpt_assignment(tile_work: np.ndarray, num_processors: int) -> np.ndarray:
    """Longest-processing-time greedy assignment of tiles to processors.

    The classic 4/3-approximation for makespan: take tiles in
    decreasing work order, always handing the next one to the least
    loaded processor.  This is the idealised *dynamic* balancer — a
    runtime tile queue converges to the same shape — so it upper-bounds
    what dynamic load balancing could win over static interleaving.
    """
    if num_processors < 1:
        raise ConfigurationError("need at least one processor")
    tile_work = np.asarray(tile_work)
    loads = np.zeros(num_processors)
    assignment = np.zeros(len(tile_work), dtype=np.int64)
    for tile in np.argsort(tile_work)[::-1]:
        target = int(np.argmin(loads))
        assignment[tile] = target
        loads[target] += tile_work[tile]
    return assignment

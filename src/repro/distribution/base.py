"""Distribution interface.

A distribution is a *static* map from screen pixels to processors —
static because, as the paper notes, the scheme and its parameters are
hard-coded in a commodity chip that clips while drawing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError


class Distribution(ABC):
    """Static pixel-to-processor assignment."""

    def __init__(self, num_processors: int) -> None:
        if num_processors < 1:
            raise ConfigurationError(
                f"a machine needs at least one processor, got {num_processors}"
            )
        self.num_processors = num_processors

    @abstractmethod
    def owners(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Processor id owning each pixel ``(x[i], y[i])``."""

    @abstractmethod
    def nodes_in_box(self, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        """Sorted unique processors whose tiles intersect a pixel box.

        The box is inclusive: pixels ``x0..x1`` by ``y0..y1``.  This is
        what the triangle distributor uses for bounding-box routing, so
        it may over-approximate coverage (a processor can receive a
        triangle that contributes no pixel to it — it still pays the
        25-cycle setup, which is precisely the small-triangle overhead).
        """

    @abstractmethod
    def describe(self) -> str:
        """Human-readable label, e.g. ``block16x64``."""

    def fingerprint(self) -> str:
        """Content identity for artifact caching.

        The built-in static schemes are fully determined by their class
        and ``describe()`` string; distributions with extra state (an
        explicit assignment table, say) must override this.
        """
        return f"{type(self).__name__}:{self.num_processors}:{self.describe()}"

    def owner_map(self, width: int, height: int) -> np.ndarray:
        """Full ``(height, width)`` ownership image, for tests and plots."""
        ys, xs = np.mgrid[0:height, 0:width]
        return self.owners(xs.ravel(), ys.ravel()).reshape(height, width)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"


def processor_grid(num_processors: int) -> tuple:
    """Near-square factorisation ``(across, down)`` of a processor count.

    Block interleaving tiles the processors as a 2D grid repeated over
    the screen; the grid is chosen as close to square as the count
    allows (64 -> 8x8, 8 -> 4x2, primes degrade to 1D).
    """
    down = int(np.sqrt(num_processors))
    while num_processors % down:
        down -= 1
    return num_processors // down, down

"""Square-block interleaved distribution."""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution, processor_grid
from repro.errors import ConfigurationError


class BlockInterleaved(Distribution):
    """The screen is cut into ``width`` x ``width`` pixel blocks.

    Blocks are dealt to processors by repeating a near-square processor
    grid across the block lattice: block ``(tx, ty)`` goes to processor
    ``(tx mod across) + across * (ty mod down)``.  This is the classic
    2D interleave of sort-middle machines; it keeps each processor's
    blocks spread evenly over the screen in both axes.
    """

    def __init__(self, num_processors: int, width: int) -> None:
        super().__init__(num_processors)
        if width < 1:
            raise ConfigurationError(f"block width must be >= 1, got {width}")
        self.width = width
        self.across, self.down = processor_grid(num_processors)

    def owners(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        tx = np.asarray(x, dtype=np.int64) // self.width
        ty = np.asarray(y, dtype=np.int64) // self.width
        return (tx % self.across) + self.across * (ty % self.down)

    def nodes_in_box(self, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        tx0, tx1 = x0 // self.width, x1 // self.width
        ty0, ty1 = y0 // self.width, y1 // self.width
        # Distinct column classes and row classes the box touches; the
        # node set is their cross product.
        span_x = min(tx1 - tx0 + 1, self.across)
        span_y = min(ty1 - ty0 + 1, self.down)
        cols = (tx0 + np.arange(span_x)) % self.across
        rows = (ty0 + np.arange(span_y)) % self.down
        nodes = (cols[None, :] + self.across * rows[:, None]).ravel()
        nodes.sort()
        return nodes

    def describe(self) -> str:
        return f"block{self.width}x{self.num_processors}"

"""Non-interleaved contiguous bands — the ablation contrast case.

The paper's distributions are always interleaved; this class switches
interleaving *off* (each processor gets one contiguous horizontal slab
of the screen) so benchmarks can quantify how much of the load balance
interleaving is actually buying.
"""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import ConfigurationError


class ContiguousBands(Distribution):
    """Split ``screen_height`` scanlines into N equal contiguous bands."""

    def __init__(self, num_processors: int, screen_height: int) -> None:
        super().__init__(num_processors)
        if screen_height < num_processors:
            raise ConfigurationError(
                f"cannot split {screen_height} lines over {num_processors} processors"
            )
        self.screen_height = screen_height

    def owners(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=np.int64)
        owners = y * self.num_processors // self.screen_height
        return np.clip(owners, 0, self.num_processors - 1)

    def nodes_in_box(self, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        first = int(min(y0, self.screen_height - 1) * self.num_processors // self.screen_height)
        last = int(min(y1, self.screen_height - 1) * self.num_processors // self.screen_height)
        return np.arange(first, last + 1)

    def describe(self) -> str:
        return f"bands{self.num_processors}"

    def fingerprint(self) -> str:
        # Band boundaries depend on the screen height, which the label
        # omits.
        return (
            f"{type(self).__name__}:{self.num_processors}:"
            f"bands@h{self.screen_height}"
        )

"""Morton-order (Z-curve) block interleaving.

An alternative dealing pattern for the same square tiles: blocks are
enumerated along the Morton space-filling curve and dealt round-robin.
Compared with the repeating processor grid of
:class:`~repro.distribution.block.BlockInterleaved`, the Z-curve keeps
each processor's tiles spread at *every* spatial frequency, which makes
it robust to workloads whose hotspot period happens to resonate with a
fixed grid — a pattern several real rasterisers adopted for exactly
that reason.
"""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import ConfigurationError

#: Supported coordinate magnitude (tiles per axis) for bit interleave.
_MORTON_BITS = 16


def morton_index(tx: np.ndarray, ty: np.ndarray) -> np.ndarray:
    """Interleave the bits of two tile coordinates (Z-curve index)."""
    tx = np.asarray(tx, dtype=np.int64)
    ty = np.asarray(ty, dtype=np.int64)
    if (tx < 0).any() or (ty < 0).any():
        raise ConfigurationError("Morton coordinates must be non-negative")
    if (tx >= 1 << _MORTON_BITS).any() or (ty >= 1 << _MORTON_BITS).any():
        raise ConfigurationError(
            f"Morton coordinates must be < {1 << _MORTON_BITS}"
        )
    code = np.zeros_like(tx)
    for bit in range(_MORTON_BITS):
        code |= ((tx >> bit) & 1) << (2 * bit)
        code |= ((ty >> bit) & 1) << (2 * bit + 1)
    return code


class MortonInterleaved(Distribution):
    """Square blocks dealt round-robin along the Z-curve."""

    def __init__(self, num_processors: int, width: int) -> None:
        super().__init__(num_processors)
        if width < 1:
            raise ConfigurationError(f"block width must be >= 1, got {width}")
        self.width = width

    def owners(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        tx = np.asarray(x, dtype=np.int64) // self.width
        ty = np.asarray(y, dtype=np.int64) // self.width
        return morton_index(tx, ty) % self.num_processors

    def nodes_in_box(self, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        tx0, tx1 = x0 // self.width, x1 // self.width
        ty0, ty1 = y0 // self.width, y1 // self.width
        txs = np.arange(tx0, tx1 + 1)
        tys = np.arange(ty0, ty1 + 1)
        grid_x, grid_y = np.meshgrid(txs, tys)
        owners = morton_index(grid_x.ravel(), grid_y.ravel()) % self.num_processors
        return np.unique(owners)

    def describe(self) -> str:
        return f"morton{self.width}x{self.num_processors}"

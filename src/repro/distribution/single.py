"""The one-processor machine every speedup is measured against."""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution


class SingleProcessor(Distribution):
    """Everything on processor 0 — the speedup baseline."""

    def __init__(self) -> None:
        super().__init__(1)

    def owners(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.zeros(np.shape(np.asarray(x)), dtype=np.int64)

    def nodes_in_box(self, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        return np.zeros(1, dtype=np.int64)

    def describe(self) -> str:
        return "single"

"""Scan-line interleaved (SLI) distribution."""

from __future__ import annotations

import numpy as np

from repro.distribution.base import Distribution
from repro.errors import ConfigurationError


class ScanLineInterleaved(Distribution):
    """Groups of ``lines`` adjacent scanlines, dealt round-robin.

    ``lines == 1`` is the Voodoo2-style per-line interleave; ``lines == 4``
    matches 3DLabs JetStream.  Group ``g = y // lines`` is rendered by
    processor ``g mod N``.
    """

    def __init__(self, num_processors: int, lines: int) -> None:
        super().__init__(num_processors)
        if lines < 1:
            raise ConfigurationError(f"SLI group height must be >= 1, got {lines}")
        self.lines = lines

    def owners(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        group = np.asarray(y, dtype=np.int64) // self.lines
        return group % self.num_processors

    def nodes_in_box(self, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        g0, g1 = y0 // self.lines, y1 // self.lines
        span = min(g1 - g0 + 1, self.num_processors)
        nodes = (g0 + np.arange(span)) % self.num_processors
        nodes.sort()
        return nodes

    def describe(self) -> str:
        return f"sli{self.lines}x{self.num_processors}"

"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A machine, cache, scene or distribution parameter is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No event is pending but at least one process is still blocked."""


class TraceFormatError(ReproError):
    """A triangle trace file is malformed."""


class ServiceError(ReproError):
    """The experiment job service failed (HTTP transport, bad response,
    or a job that can no longer make progress)."""


class UnknownJobError(ServiceError):
    """A job id the service has never seen (HTTP 404, not a fault)."""


class BackpressureError(ServiceError):
    """The job queue is at its configured depth limit; the submission
    was rejected and should be retried later (HTTP 429)."""


class StaleLeaseError(ServiceError):
    """A lease id that is unknown, expired, or already released; the
    worker holding it must abandon the attempt (HTTP 410)."""

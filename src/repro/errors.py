"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """A machine, cache, scene or distribution parameter is invalid."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No event is pending but at least one process is still blocked."""


class TraceFormatError(ReproError):
    """A triangle trace file is malformed."""


class ServiceError(ReproError):
    """The experiment job service failed (HTTP transport, bad response,
    or a job that can no longer make progress)."""

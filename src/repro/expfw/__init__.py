"""repro.expfw — declarative experiments, archived runs, auto-search.

The experiment framework lifts the hand-enumerated figure sweeps into
three composable pieces:

* :mod:`repro.expfw.params` / :mod:`repro.expfw.spec` — typed
  parameter spaces and :class:`ExperimentSpec` objects (defaults,
  bounds, inheritance, per-run overrides) registered alongside the
  legacy experiment registry;
* :mod:`repro.expfw.archive` — a content-addressed
  :class:`RunArchive` of re-runnable JSON records (resolved params,
  artifact keys, metrics, git/config fingerprint) layered on the
  pipeline artifact store, plus bit-identical :func:`replay_record`;
* :mod:`repro.expfw.search` — a budgeted auto-search driver (grid +
  successive halving over simulated cycles or wall seconds) tuning
  tile size / SLI height / FIFO depth / cache geometry per workload,
  dispatching trials inline or through the job service.
"""

from repro.expfw.archive import (
    ReplayReport,
    RunArchive,
    default_archive_dir,
    find_record,
    replay_record,
    run_record,
    trial_record,
)
from repro.expfw.params import Param, ParamSpace
from repro.expfw.search import (
    Budget,
    ClientDispatcher,
    InlineDispatcher,
    SchedulerDispatcher,
    SearchConfig,
    SearchDriver,
    parse_search_payload,
    render_report,
    run_search,
)
from repro.expfw.spec import (
    SPECS,
    ExperimentSpec,
    RunResult,
    TrialTemplate,
    register_spec,
    require_spec,
    searchable_spec,
)

__all__ = [
    "Budget",
    "ClientDispatcher",
    "ExperimentSpec",
    "InlineDispatcher",
    "Param",
    "ParamSpace",
    "ReplayReport",
    "RunArchive",
    "RunResult",
    "SPECS",
    "SchedulerDispatcher",
    "SearchConfig",
    "SearchDriver",
    "TrialTemplate",
    "default_archive_dir",
    "find_record",
    "parse_search_payload",
    "register_spec",
    "render_report",
    "replay_record",
    "require_spec",
    "run_record",
    "run_search",
    "searchable_spec",
    "trial_record",
]

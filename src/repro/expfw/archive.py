"""Archived experiment runs: content-addressed, re-runnable records.

Every run the framework executes — a declarative experiment run, one
auto-search trial, or a whole search — lands in the
:class:`RunArchive` as a JSON record whose key derives from the exact
resolved parameters (the same content-identity discipline the pipeline
and job service use).  A record carries everything needed to re-run
it and check the reproduction: the resolved params / job payload, the
seed, the artifact keys it produced, the deterministic metrics
snapshot, and a git/config fingerprint of the code that ran it.

Storage is layered on the pipeline's shared artifact tier: records
are human-readable ``<digest>.json`` files under
``$REPRO_ARTIFACT_DIR/expfw-runs`` (atomic writes, same discipline as
:mod:`repro.pipeline.store`), so every process sharing the artifact
directory — CLI runs, service workers, a whole compose fleet — reads
and writes one archive; the in-process :class:`ArtifactStore` memory
tier fronts repeat lookups.

:func:`replay_record` is the reproducibility check: it re-executes a
record inline and verifies the fresh artifact keys and metrics are
**bit-identical** to the archived ones.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import pipeline
from repro.errors import ConfigurationError
from repro.expfw.spec import ExperimentSpec, RunResult, require_spec
from repro.pipeline.keys import fingerprint
from repro.pipeline.store import ARTIFACT_DIR_ENV_VAR, ArtifactStore

#: Stage name archive records occupy inside the pipeline store.
RUN_STAGE = "expfw-run"
#: Subdirectory of the shared artifact tier holding the JSON records.
ARCHIVE_SUBDIR = "expfw-runs"
#: Record schema version.
RECORD_VERSION = 1

#: Record kinds.
RUN = "run"
TRIAL = "trial"
SEARCH = "search"
KINDS = (RUN, TRIAL, SEARCH)


def default_archive_dir() -> Path:
    """The archive root: ``<shared artifact dir>/expfw-runs``.

    Reuses ``REPRO_ARTIFACT_DIR`` when set; otherwise materialises the
    shared store (same temp-dir plumbing the sweep workers use) so
    records written here are visible to every process of the run.
    """
    root = os.environ.get(ARTIFACT_DIR_ENV_VAR)
    if root is None:
        root = str(pipeline.ensure_shared_store())
    return Path(root) / ARCHIVE_SUBDIR


def _git_head() -> Optional[str]:
    """Current commit sha, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def environment_fingerprint(spec: Optional[ExperimentSpec] = None) -> Dict[str, object]:
    """Code/config identity stamped into every record."""
    return {
        "git": _git_head(),
        "spec": spec.fingerprint() if spec is not None else None,
    }


class RunArchive:
    """Content-addressed JSON records over the shared artifact tier."""

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_archive_dir()
        self._store = store if store is not None else pipeline.store()

    def _path(self, key: str) -> Path:
        return self.root / f"{fingerprint(key)}.json"

    # -- writing -----------------------------------------------------

    def record(self, record: Dict) -> str:
        """Persist one record; returns its key.

        The JSON file is the shared source of truth (atomic write);
        the pipeline store's memory tier fronts repeat lookups in this
        process.  Records are content-addressed, so re-recording the
        same key simply overwrites identical bytes.
        """
        key = record.get("key")
        if not isinstance(key, str) or not key:
            raise ConfigurationError("an archive record needs a non-empty 'key'")
        if record.get("kind") not in KINDS:
            raise ConfigurationError(
                f"record kind must be one of {', '.join(KINDS)}, "
                f"got {record.get('kind')!r}"
            )
        payload = json.dumps(record, indent=2, sort_keys=True) + "\n"
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        fd, temp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp_name, path)
        except BaseException:
            os.unlink(temp_name)
            raise
        self._store.put(RUN_STAGE, key, record, disk=False)
        return key

    # -- reading -----------------------------------------------------

    def find(self, key: str) -> Optional[Dict]:
        """The record under ``key``, or ``None``."""
        found, value = self._store.peek(RUN_STAGE, key)
        if found:
            return value
        path = self._path(key)
        if not path.exists():
            return None
        record = self._load(path)
        if record is not None:
            self._store.put(RUN_STAGE, key, record, disk=False)
        return record

    def get(self, key: str) -> Dict:
        record = self.find(key)
        if record is None:
            raise ConfigurationError(
                f"no archived record for key {key!r} under {self.root}"
            )
        return record

    def records(self) -> List[Dict]:
        """Every readable record, oldest first (ties break on key)."""
        if not self.root.is_dir():
            return []
        loaded = []
        for path in sorted(self.root.glob("*.json")):
            record = self._load(path)
            if record is not None:
                loaded.append(record)
        loaded.sort(key=lambda r: (r.get("created_at", 0.0), r.get("key", "")))
        return loaded

    def keys(self) -> List[str]:
        return [record["key"] for record in self.records()]

    @staticmethod
    def _load(path: Path) -> Optional[Dict]:
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # A truncated or in-flight record: skip, never crash a list.
            return None
        if not isinstance(record, dict) or "key" not in record:
            return None
        return record

    def __len__(self) -> int:
        return len(self.records())


# -- record builders --------------------------------------------------


def run_record(
    spec: ExperimentSpec,
    params: Dict[str, object],
    result: RunResult,
    seed: Optional[int] = None,
) -> Dict:
    """Archive form of one declarative experiment run."""
    return {
        "version": RECORD_VERSION,
        "kind": RUN,
        "key": spec.run_key(params, seed=seed),
        "experiment": spec.name,
        "params": _jsonable(params),
        "seed": seed,
        "artifacts": list(result.artifacts),
        "metrics": dict(result.metrics),
        "text_sha": fingerprint(result.text),
        "fingerprint": environment_fingerprint(spec),
        "created_at": time.time(),
    }


def trial_record(
    experiment: str,
    strategy: str,
    rung: int,
    point: Dict[str, object],
    payload: Dict[str, object],
    seed: int,
    result: Dict,
    spec: Optional[ExperimentSpec] = None,
) -> Dict:
    """Archive form of one auto-search trial (a simulate job)."""
    identity = json.dumps(_jsonable(payload), sort_keys=True)
    return {
        "version": RECORD_VERSION,
        "kind": TRIAL,
        "key": f"trial/{experiment}/{strategy}/r{rung}/{fingerprint(identity)}",
        "experiment": experiment,
        "strategy": strategy,
        "rung": rung,
        "point": _jsonable(point),
        "payload": _jsonable(payload),
        "seed": seed,
        "result_key": result.get("key"),
        "artifacts": [result.get("key")],
        "metrics": dict(result.get("metrics") or {}),
        "elapsed_seconds": result.get("elapsed_seconds"),
        "fingerprint": environment_fingerprint(spec),
        "created_at": time.time(),
    }


def _jsonable(mapping: Dict[str, object]) -> Dict[str, object]:
    return {
        name: list(value) if isinstance(value, tuple) else value
        for name, value in mapping.items()
    }


# -- replay -----------------------------------------------------------


@dataclass
class ReplayReport:
    """Outcome of re-running an archived record."""

    key: str
    ok: bool
    diffs: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        if self.ok:
            return f"replay OK: {self.key} reproduced bit-identically"
        lines = "\n".join(f"  - {diff}" for diff in self.diffs)
        return f"replay MISMATCH: {self.key}\n{lines}"


def replay_record(record: Dict) -> ReplayReport:
    """Re-execute a record inline and diff against the archive.

    Artifact keys and metrics must match **bit-identically** — the
    archive's reproducibility contract.  Search summary records are
    not directly replayable (replay their trials instead).
    """
    kind = record.get("kind")
    if kind == TRIAL:
        return _replay_trial(record)
    if kind == RUN:
        return _replay_run(record)
    raise ConfigurationError(
        f"records of kind {kind!r} are not replayable; replay the "
        "individual trial/run records instead"
    )


def _replay_trial(record: Dict) -> ReplayReport:
    from repro.service.jobs import execute_payload

    fresh = execute_payload(dict(record["payload"]))
    diffs = []
    if fresh["key"] != record.get("result_key"):
        diffs.append(
            f"artifact key changed: archived {record.get('result_key')!r}, "
            f"fresh {fresh['key']!r}"
        )
    diffs.extend(_diff_metrics(record.get("metrics") or {}, fresh.get("metrics") or {}))
    return ReplayReport(
        key=record["key"],
        ok=not diffs,
        diffs=diffs,
        metrics=dict(fresh.get("metrics") or {}),
    )


def _replay_run(record: Dict) -> ReplayReport:
    spec = require_spec(record["experiment"])
    result = spec.run(record["params"])
    diffs = []
    fresh_key = spec.run_key(spec.resolve(record["params"]), seed=record.get("seed"))
    if fresh_key != record["key"]:
        diffs.append(f"run key changed: archived {record['key']!r}, fresh {fresh_key!r}")
    if list(result.artifacts) != list(record.get("artifacts") or []):
        diffs.append(
            f"artifact keys changed: archived {record.get('artifacts')!r}, "
            f"fresh {list(result.artifacts)!r}"
        )
    if fingerprint(result.text) != record.get("text_sha"):
        diffs.append("rendered text changed (sha mismatch)")
    diffs.extend(_diff_metrics(record.get("metrics") or {}, result.metrics))
    return ReplayReport(
        key=record["key"], ok=not diffs, diffs=diffs, metrics=dict(result.metrics)
    )


def _diff_metrics(archived: Dict, fresh: Dict) -> List[str]:
    diffs = []
    for name in sorted(set(archived) | set(fresh)):
        old, new = archived.get(name), fresh.get(name)
        if old != new:
            diffs.append(f"metric {name!r}: archived {old!r}, fresh {new!r}")
    return diffs


def find_record(key: str, root: Optional[os.PathLike] = None) -> Tuple[RunArchive, Dict]:
    """Convenience: open the archive and fetch one record."""
    archive = RunArchive(root=root)
    return archive, archive.get(key)

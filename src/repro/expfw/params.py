"""Typed parameter spaces for declarative experiments.

A :class:`Param` declares one experiment knob — its type, default,
bounds and (for enumerated knobs) the legal choices.  A
:class:`ParamSpace` is an ordered collection of params that validates
override dicts into fully-resolved parameter mappings, enumerates grid
cross-products, and derives child spaces (new defaults and/or extra
params) for experiment inheritance.

Resolution is strict: unknown names, out-of-range values and wrong
types raise :class:`~repro.errors.ConfigurationError` — the same
contract the job service uses for submissions, so a bad search override
fails at the CLI/HTTP boundary, not three rungs into a sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Parameter kinds and the python types they accept.
KINDS = ("int", "float", "str", "bool", "strs")


@dataclass(frozen=True)
class Param:
    """One declarative experiment parameter."""

    name: str
    kind: str
    default: object
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Tuple[object, ...]] = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"param {self.name!r}: unknown kind {self.kind!r}; "
                f"choose from {', '.join(KINDS)}"
            )
        object.__setattr__(self, "default", self.validate(self.default))

    # -- constructors ------------------------------------------------

    @staticmethod
    def integer(
        name: str,
        default: int,
        minimum: Optional[int] = None,
        maximum: Optional[int] = None,
        help: str = "",
    ) -> "Param":
        return Param(name, "int", default, minimum=minimum, maximum=maximum, help=help)

    @staticmethod
    def number(
        name: str,
        default: float,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
        help: str = "",
    ) -> "Param":
        return Param(name, "float", default, minimum=minimum, maximum=maximum, help=help)

    @staticmethod
    def choice(
        name: str, default: str, choices: Sequence[str], help: str = ""
    ) -> "Param":
        return Param(name, "str", default, choices=tuple(choices), help=help)

    @staticmethod
    def names(
        name: str,
        default: Sequence[str],
        choices: Sequence[str],
        help: str = "",
    ) -> "Param":
        """An ordered tuple of names, each validated against ``choices``."""
        return Param(name, "strs", tuple(default), choices=tuple(choices), help=help)

    @staticmethod
    def flag(name: str, default: bool, help: str = "") -> "Param":
        return Param(name, "bool", default, help=help)

    # -- validation --------------------------------------------------

    def validate(self, value: object) -> object:
        """Coerce and range-check one override; raises on bad input."""
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"param {self.name!r} must be a bool, got {value!r}"
                )
            return value
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"param {self.name!r} must be an int, got {value!r}"
                )
            return self._bounded(value)
        if self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"param {self.name!r} must be a number, got {value!r}"
                )
            return float(self._bounded(float(value)))
        if self.kind == "strs":
            if isinstance(value, str):
                value = (value,)
            if not isinstance(value, (list, tuple)):
                raise ConfigurationError(
                    f"param {self.name!r} must be a list of names, got {value!r}"
                )
            return tuple(self._choice(item) for item in value)
        return self._choice(value)

    def _bounded(self, value: float) -> float:
        if self.minimum is not None and value < self.minimum:
            raise ConfigurationError(
                f"param {self.name!r} must be >= {self.minimum:g}, got {value!r}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ConfigurationError(
                f"param {self.name!r} must be <= {self.maximum:g}, got {value!r}"
            )
        return value

    def _choice(self, value: object) -> object:
        if not isinstance(value, str):
            raise ConfigurationError(
                f"param {self.name!r} must be a string, got {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"param {self.name!r} must be one of "
                f"{', '.join(map(str, self.choices))}; got {value!r}"
            )
        return value

    def describe(self) -> str:
        """One-token summary for ``repro-experiments list``."""
        default = (
            ",".join(self.default) if isinstance(self.default, tuple) else self.default
        )
        detail = self.kind
        if self.choices is not None and self.kind != "strs":
            detail = "|".join(map(str, self.choices))
        elif self.minimum is not None or self.maximum is not None:
            low = "" if self.minimum is None else f"{self.minimum:g}<="
            high = "" if self.maximum is None else f"<={self.maximum:g}"
            detail = f"{self.kind}, {low}{self.name}{high}"
        return f"{self.name}={default} ({detail})"


@dataclass(frozen=True)
class ParamSpace:
    """An ordered, validating collection of :class:`Param`."""

    params: Tuple[Param, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        seen = set()
        for param in self.params:
            if param.name in seen:
                raise ConfigurationError(f"duplicate param {param.name!r}")
            seen.add(param.name)

    def __iter__(self) -> Iterator[Param]:
        return iter(self.params)

    def __contains__(self, name: str) -> bool:
        return any(param.name == name for param in self.params)

    def param(self, name: str) -> Param:
        for param in self.params:
            if param.name == name:
                return param
        raise ConfigurationError(
            f"unknown param {name!r}; choose from "
            f"{', '.join(param.name for param in self.params)}"
        )

    def defaults(self) -> Dict[str, object]:
        """The fully-defaulted parameter mapping (insertion-ordered)."""
        return {param.name: param.default for param in self.params}

    def resolve(self, overrides: Optional[Mapping[str, object]] = None) -> Dict[str, object]:
        """Validate ``overrides`` into a complete parameter mapping."""
        overrides = dict(overrides or {})
        unknown = set(overrides) - {param.name for param in self.params}
        if unknown:
            raise ConfigurationError(
                f"unknown param(s) {', '.join(sorted(map(repr, unknown)))}; "
                f"choose from {', '.join(param.name for param in self.params)}"
            )
        resolved = {}
        for param in self.params:
            if param.name in overrides:
                resolved[param.name] = param.validate(overrides[param.name])
            else:
                resolved[param.name] = param.default
        return resolved

    def grid(
        self,
        axes: Mapping[str, Sequence[object]],
        base: Optional[Mapping[str, object]] = None,
    ) -> List[Dict[str, object]]:
        """Cross product of ``axes`` over this space, each point resolved.

        Axis order follows the mapping's insertion order; the first
        axis varies slowest (matching the nesting of a hand-written
        ``for`` loop over the same values).
        """
        names = list(axes)
        combos = itertools.product(*(axes[name] for name in names))
        points = []
        for combo in combos:
            overrides = dict(base or {})
            overrides.update(zip(names, combo))
            points.append(self.resolve(overrides))
        return points

    def derive(
        self,
        defaults: Optional[Mapping[str, object]] = None,
        extra: Sequence[Param] = (),
    ) -> "ParamSpace":
        """A child space: new defaults for existing params, plus new ones."""
        defaults = dict(defaults or {})
        unknown = set(defaults) - {param.name for param in self.params}
        if unknown:
            raise ConfigurationError(
                f"cannot override unknown param(s) "
                f"{', '.join(sorted(map(repr, unknown)))}"
            )
        children = []
        for param in self.params:
            if param.name in defaults:
                children.append(
                    replace(param, default=param.validate(defaults[param.name]))
                )
            else:
                children.append(param)
        return ParamSpace(tuple(children) + tuple(extra))

    def describe(self) -> str:
        """Space summary for ``repro-experiments list``."""
        return "  ".join(param.describe() for param in self.params)

"""Budgeted auto-search over experiment trial spaces.

The driver answers the paper's question — which distribution/geometry
wins — automatically: it enumerates a spec's trial axes (tile size /
SLI height / FIFO depth / cache geometry), evaluates trials as
simulate jobs, and keeps going until a **budget** of simulated cycles
or wall seconds runs out.  Two strategies:

* ``grid`` — the full cross product (optionally seeded-subsampled to
  ``max_trials``), evaluated at the experiment's scale;
* ``halving`` — successive halving: all candidates start at a reduced
  scene scale (cheap, low fidelity), the top ``1/eta`` per rung are
  promoted to the next scale, and only the finalists pay full price.

Trials are dispatched through a pluggable dispatcher: inline
(:class:`InlineDispatcher`), a running coordinator + worker fleet over
HTTP (:class:`ClientDispatcher` — the CLI's ``search --url``), or a
local :class:`~repro.service.scheduler.Scheduler` directly
(:class:`SchedulerDispatcher` — the ``POST /searches`` path).  Every
trial and the final search report are archived as re-runnable records
(:mod:`repro.expfw.archive`).

Determinism: the driver takes an **explicit seed** and threads it
through a ``numpy.random.Generator`` — candidate subsampling and the
per-trial seeds recorded into the archive all derive from it; there is
no global PRNG state, so the same seed reproduces the same trial
sequence and the same record keys.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
)

import numpy as np

from repro.errors import ConfigurationError, ServiceError
from repro.expfw.archive import RunArchive, environment_fingerprint, trial_record
from repro.expfw.spec import ExperimentSpec, searchable_spec
from repro.pipeline.keys import fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from repro.service.client import ServiceClient
    from repro.service.scheduler import Scheduler


class TrialDispatcher(Protocol):
    """Anything that can evaluate one wave of trial payloads."""

    def run_many(self, payloads: Sequence[Dict]) -> List[Dict]: ...

STRATEGIES = ("grid", "halving", "both")
BUDGET_UNITS = ("cycles", "seconds")

#: Smallest scene scale a halving rung may drop to.
MIN_RUNG_SCALE = 1.0 / 64.0


# -- configuration ----------------------------------------------------


@dataclass
class SearchConfig:
    """One search request (the ``POST /searches`` body, validated)."""

    experiment: str
    budget: float
    unit: str = "cycles"
    strategy: str = "both"
    seed: int = 0
    overrides: Dict[str, object] = field(default_factory=dict)
    fixed: Dict[str, object] = field(default_factory=dict)
    max_trials: Optional[int] = None
    eta: int = 2
    rungs: int = 3
    wave: int = 4

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; choose from "
                f"{', '.join(STRATEGIES)}"
            )
        if self.unit not in BUDGET_UNITS:
            raise ConfigurationError(
                f"unknown budget unit {self.unit!r}; choose from "
                f"{', '.join(BUDGET_UNITS)}"
            )
        if self.budget <= 0:
            raise ConfigurationError(f"budget must be positive, got {self.budget}")
        if self.eta < 2:
            raise ConfigurationError(f"eta must be >= 2, got {self.eta}")
        if self.rungs < 1:
            raise ConfigurationError(f"rungs must be >= 1, got {self.rungs}")
        if self.wave < 1:
            raise ConfigurationError(f"wave must be >= 1, got {self.wave}")
        if self.max_trials is not None and self.max_trials < 1:
            raise ConfigurationError(
                f"max_trials must be >= 1, got {self.max_trials}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ConfigurationError(f"seed must be an int, got {self.seed!r}")

    def to_json(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "budget": self.budget,
            "unit": self.unit,
            "strategy": self.strategy,
            "seed": self.seed,
            "overrides": dict(self.overrides),
            "fixed": dict(self.fixed),
            "max_trials": self.max_trials,
            "eta": self.eta,
            "rungs": self.rungs,
            "wave": self.wave,
        }


_CONFIG_KEYS = (
    "experiment",
    "budget",
    "unit",
    "strategy",
    "seed",
    "overrides",
    "fixed",
    "max_trials",
    "eta",
    "rungs",
    "wave",
)


def parse_search_payload(payload: Mapping) -> SearchConfig:
    """Validate a JSON search request into a :class:`SearchConfig`."""
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"a search request must be a JSON object, got {type(payload).__name__}"
        )
    unknown = set(payload) - set(_CONFIG_KEYS)
    if unknown:
        raise ConfigurationError(
            f"unknown search field(s) {', '.join(sorted(map(repr, unknown)))}; "
            f"choose from {', '.join(_CONFIG_KEYS)}"
        )
    if "experiment" not in payload:
        raise ConfigurationError("a search request needs an 'experiment' name")
    if "budget" not in payload:
        raise ConfigurationError("a search request needs a 'budget'")
    kwargs: Dict[str, object] = {}
    for name in _CONFIG_KEYS:
        if name in payload:
            kwargs[name] = payload[name]
    for name in ("overrides", "fixed"):
        if name in kwargs and not isinstance(kwargs[name], Mapping):
            raise ConfigurationError(f"search {name!r} must be an object")
    try:
        config = SearchConfig(**kwargs)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ConfigurationError(f"invalid search request: {exc}") from exc
    searchable_spec(config.experiment)  # fail fast on unknown experiments
    return config


# -- budget -----------------------------------------------------------


class Budget:
    """Spend tracker: simulated cycles or wall seconds."""

    def __init__(self, limit: float, unit: str) -> None:
        self.limit = limit
        self.unit = unit
        self.spent = 0.0

    def charge(self, result: Mapping) -> None:
        if self.unit == "cycles":
            metrics = result.get("metrics") or {}
            self.spent += float(metrics.get("cycles") or 0.0)
        else:
            self.spent += float(result.get("elapsed_seconds") or 0.0)

    def exhausted(self) -> bool:
        return self.spent >= self.limit

    def snapshot(self) -> Dict[str, float]:
        return {"limit": self.limit, "unit": self.unit, "spent": self.spent}


# -- dispatchers ------------------------------------------------------


class InlineDispatcher:
    """Execute trial payloads in this process."""

    def run_many(self, payloads: Sequence[Dict]) -> List[Dict]:
        from repro.service.jobs import execute_payload

        return [execute_payload(dict(payload)) for payload in payloads]


class ClientDispatcher:
    """Dispatch trials as jobs to a running service over HTTP.

    The whole wave is submitted before the first wait, so a worker
    fleet behind the coordinator executes trials concurrently.
    """

    def __init__(self, client: "ServiceClient", timeout: float = 600.0) -> None:
        self.client = client
        self.timeout = timeout

    def run_many(self, payloads: Sequence[Dict]) -> List[Dict]:
        jobs = [self.client.submit(dict(payload)) for payload in payloads]
        results = []
        for job in jobs:
            done = self.client.wait(job["id"], timeout=self.timeout)
            if done["state"] != "done":
                raise ServiceError(
                    f"trial {job['id']} ended {done['state']}: {done.get('error')}"
                )
            results.append(self.client.result(done["result_key"]))
        return results


class SchedulerDispatcher:
    """Dispatch trials through a local scheduler (``POST /searches``)."""

    def __init__(self, scheduler: "Scheduler", timeout: float = 600.0) -> None:
        self.scheduler = scheduler
        self.timeout = timeout

    def run_many(self, payloads: Sequence[Dict]) -> List[Dict]:
        jobs = [self.scheduler.submit(dict(payload))[0] for payload in payloads]
        results = []
        for job in jobs:
            done = self.scheduler.wait(job.id, timeout=self.timeout)
            if done.state != "done":
                raise ServiceError(
                    f"trial {job.id} ended {done.state}: {done.error}"
                )
            payload = self.scheduler.result(done.result_key)
            if payload is None:
                raise ServiceError(f"trial {job.id} finished but has no result")
            results.append(payload)
        return results


# -- trials -----------------------------------------------------------


@dataclass
class Trial:
    """One evaluated (or pending) search point."""

    point: Dict[str, object]
    payload: Dict[str, object]
    seed: int
    strategy: str
    rung: int = 0
    result: Optional[Dict] = None
    record_key: Optional[str] = None

    def metric(self, objective: str) -> Optional[float]:
        if self.result is None:
            return None
        metrics = self.result.get("metrics") or {}
        value = metrics.get(objective)
        return None if value is None else float(value)


# -- the driver -------------------------------------------------------


class SearchDriver:
    """Runs one budgeted search and archives everything it evaluates."""

    def __init__(
        self,
        config: SearchConfig,
        dispatcher: Optional[TrialDispatcher] = None,
        archive: Optional[RunArchive] = None,
    ) -> None:
        self.config = config
        self.spec: ExperimentSpec = searchable_spec(config.experiment)
        self.dispatcher = dispatcher if dispatcher is not None else InlineDispatcher()
        self.archive = archive if archive is not None else RunArchive()
        self.rng = np.random.default_rng(config.seed)
        self.budget = Budget(config.budget, config.unit)
        self.trials: List[Trial] = []
        self.dropped = 0

    # -- candidate enumeration --------------------------------------

    def _candidates(self, params: Mapping[str, object]) -> List[Dict[str, object]]:
        axes = self.spec.trial.axes_for(params)
        names = list(axes)
        points: List[Dict[str, object]] = [{}]
        for name in names:
            points = [
                {**point, name: value} for point in points for value in axes[name]
            ]
        if self.config.max_trials is not None and len(points) > self.config.max_trials:
            picked = self.rng.choice(
                len(points), size=self.config.max_trials, replace=False
            )
            points = [points[index] for index in sorted(int(i) for i in picked)]
        return points

    # -- evaluation ---------------------------------------------------

    def _evaluate(
        self,
        params: Mapping[str, object],
        points: Sequence[Dict[str, object]],
        strategy: str,
        rung: int,
        scale: Optional[float] = None,
    ) -> List[Trial]:
        """Evaluate ``points`` in waves until done or budget exhausted."""
        fixed = dict(self.config.fixed)
        if scale is not None:
            fixed["scale"] = scale
        pending = [
            Trial(
                point=dict(point),
                payload=self.spec.trial.payload(params, point, fixed=fixed),
                seed=int(self.rng.integers(0, 2**31 - 1)),
                strategy=strategy,
                rung=rung,
            )
            for point in points
        ]
        evaluated: List[Trial] = []
        cursor = 0
        while cursor < len(pending):
            if self.budget.exhausted():
                self.dropped += len(pending) - cursor
                break
            wave = pending[cursor : cursor + self.config.wave]
            cursor += len(wave)
            results = self.dispatcher.run_many([trial.payload for trial in wave])
            for trial, result in zip(wave, results):
                trial.result = result
                self.budget.charge(result)
                record = trial_record(
                    experiment=self.spec.name,
                    strategy=trial.strategy,
                    rung=trial.rung,
                    point=trial.point,
                    payload=trial.payload,
                    seed=trial.seed,
                    result=result,
                    spec=self.spec,
                )
                trial.record_key = self.archive.record(record)
                evaluated.append(trial)
        self.trials.extend(evaluated)
        return evaluated

    def _rank(self, trials: Sequence[Trial]) -> List[Trial]:
        objective = self.spec.trial.objective
        scored = [trial for trial in trials if trial.metric(objective) is not None]
        missing = len(trials) - len(scored)
        if missing:
            raise ServiceError(
                f"{missing} trial result(s) carry no {objective!r} metric; "
                "are the workers running an older build?"
            )
        return sorted(
            scored,
            key=lambda trial: trial.metric(objective),
            reverse=self.spec.trial.maximize,
        )

    # -- strategies ---------------------------------------------------

    def _run_grid(self, params: Mapping[str, object]) -> Dict[str, object]:
        points = self._candidates(params)
        evaluated = self._evaluate(params, points, strategy="grid", rung=0)
        return {
            "candidates": len(points),
            "evaluated": len(evaluated),
        }

    def _rung_scales(self, target: float) -> List[float]:
        scales = [
            max(target * self.config.eta ** (r - (self.config.rungs - 1)), MIN_RUNG_SCALE)
            for r in range(self.config.rungs)
        ]
        return [min(scale, target) for scale in scales]

    def _run_halving(self, params: Mapping[str, object]) -> Dict[str, object]:
        points = self._candidates(params)
        scales = self._rung_scales(float(params.get("scale", 0.25)))
        survivors = points
        rung_log = []
        for rung, scale in enumerate(scales):
            evaluated = self._evaluate(
                params, survivors, strategy="halving", rung=rung, scale=scale
            )
            rung_log.append(
                {"rung": rung, "scale": scale, "evaluated": len(evaluated)}
            )
            if not evaluated:
                break
            ranked = self._rank(evaluated)
            if rung == len(scales) - 1:
                survivors = [ranked[0].point]
                break
            keep = max(1, math.ceil(len(ranked) / self.config.eta))
            survivors = [trial.point for trial in ranked[:keep]]
            if self.budget.exhausted():
                break
        return {"candidates": len(points), "rungs": rung_log}

    # -- the public entry point --------------------------------------

    def run(self) -> Dict[str, object]:
        """Execute the search; returns (and archives) the report."""
        started = time.monotonic()
        params = self.spec.resolve(self.config.overrides)
        strategy_log: Dict[str, object] = {}
        if self.config.strategy in ("grid", "both"):
            strategy_log["grid"] = self._run_grid(params)
        if self.config.strategy in ("halving", "both"):
            strategy_log["halving"] = self._run_halving(params)
        winner = self._winner(params)
        report = {
            "version": 1,
            "kind": "search",
            "key": self._report_key(),
            "experiment": self.spec.name,
            "config": self.config.to_json(),
            "params": {
                name: list(v) if isinstance(v, tuple) else v
                for name, v in params.items()
            },
            "objective": self.spec.trial.objective,
            "budget": self.budget.snapshot(),
            "strategies": strategy_log,
            "trials": [trial.record_key for trial in self.trials],
            "dropped": self.dropped,
            "winner": winner,
            "fingerprint": environment_fingerprint(self.spec),
            "elapsed_seconds": time.monotonic() - started,
            "created_at": time.time(),
        }
        self.archive.record(report)
        return report

    def _report_key(self) -> str:
        identity = json.dumps(self.config.to_json(), sort_keys=True)
        return f"search/{self.spec.name}/{fingerprint(identity)}"

    def _winner(self, params: Mapping[str, object]) -> Optional[Dict[str, object]]:
        """Best trial at the highest-fidelity scale evaluated."""
        if not self.trials:
            return None
        target = float(params.get("scale", 0.25))
        full = [
            trial
            for trial in self.trials
            if float(trial.payload.get("scale", target)) == target
        ]
        pool = full if full else self.trials
        best = self._rank(pool)[0]
        return {
            "point": best.point,
            "payload": best.payload,
            "strategy": best.strategy,
            "rung": best.rung,
            "metrics": dict((best.result or {}).get("metrics") or {}),
            "record_key": best.record_key,
            "at_full_scale": bool(full),
        }


def run_search(
    config: SearchConfig,
    dispatcher: Optional[TrialDispatcher] = None,
    archive: Optional[RunArchive] = None,
) -> Dict[str, object]:
    """One-shot convenience over :class:`SearchDriver`."""
    return SearchDriver(config, dispatcher=dispatcher, archive=archive).run()


def render_report(report: Dict[str, object]) -> str:
    """Human-readable search summary for the CLI."""
    lines = [
        f"search {report['experiment']} ({report['config']['strategy']}, "
        f"seed={report['config']['seed']})",
        f"  budget: {report['budget']['spent']:.0f}/{report['budget']['limit']:.0f} "
        f"{report['budget']['unit']} spent, {len(report['trials'])} trial(s), "
        f"{report['dropped']} dropped",
    ]
    winner = report.get("winner")
    if winner is None:
        lines.append("  winner: none (no trials evaluated)")
    else:
        objective = report.get("objective", "speedup")
        value = winner["metrics"].get(objective)
        point = ", ".join(f"{k}={v}" for k, v in winner["point"].items())
        scope = "full scale" if winner.get("at_full_scale") else "reduced scale only"
        lines.append(
            f"  winner ({winner['strategy']}, {scope}): {point} — "
            f"{objective}={value}"
        )
        lines.append(f"  winner record: {winner['record_key']}")
    lines.append(f"  report record: {report['key']}")
    return "\n".join(lines)

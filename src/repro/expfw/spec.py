"""Declarative experiment specs over the legacy experiment registry.

An :class:`ExperimentSpec` lifts one registered experiment into a
typed object: a :class:`~repro.expfw.params.ParamSpace` (defaults,
bounds, choices), a runner that maps resolved params to a
:class:`RunResult`, optional *panels* (axes whose joined sub-runs form
the legacy CLI text — the ``block``/``sli`` pairing every figure
hand-rolled before), and an optional :class:`TrialTemplate` describing
how the auto-search driver turns the experiment into tunable machine
points (tile size / SLI height / FIFO depth / cache geometry).

:func:`register_spec` registers the spec **and** a legacy adapter in
:data:`repro.analysis.experiments.registry.EXPERIMENTS`, so existing
callers (CLI names, job submissions, benchmarks) keep working while
new callers resolve the spec through :func:`require_spec`.  Specs
derive children with :meth:`ExperimentSpec.derive` — parameter
inheritance with per-child default overrides (``fig7-ratio2`` is
``fig7`` with ``bus_ratio=2.0`` and a narrower scene list).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.expfw.params import Param, ParamSpace
from repro.pipeline.keys import fingerprint

#: Spec registry: experiment name -> spec (parallel to EXPERIMENTS).
SPECS: Dict[str, "ExperimentSpec"] = {}

#: Separator the legacy figure text used between panel sub-runs.
PANEL_SEPARATOR = "\n\n"

#: Sentinel: ``derive`` keeps the parent's panels unless told otherwise.
_INHERIT = object()


@dataclass
class RunResult:
    """What one resolved experiment run produced."""

    text: str
    metrics: Dict[str, float] = field(default_factory=dict)
    artifacts: Tuple[str, ...] = ()


@dataclass(frozen=True)
class TrialTemplate:
    """How the search driver projects an experiment onto machine points.

    ``base`` fixes the non-searched payload fields (scene, processors,
    …), ``axes`` names the searched dimensions and their candidate
    values (a callable receives the resolved experiment params, so the
    size axis can follow the distribution family), and ``carry`` lists
    experiment params copied verbatim into every trial payload.
    """

    base: Mapping[str, object]
    axes: Callable[[Mapping[str, object]], Dict[str, Tuple[object, ...]]]
    carry: Tuple[str, ...] = ("scale", "family", "bus_ratio")
    objective: str = "speedup"
    maximize: bool = True

    def axes_for(self, params: Mapping[str, object]) -> Dict[str, Tuple[object, ...]]:
        axes = self.axes(params)
        if not axes:
            raise ConfigurationError("a trial template needs at least one axis")
        return {name: tuple(values) for name, values in axes.items()}

    def payload(
        self,
        params: Mapping[str, object],
        point: Mapping[str, object],
        fixed: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, object]:
        """One trial's job payload: base < carried params < fixed < point."""
        payload: Dict[str, object] = dict(self.base)
        for name in self.carry:
            if name in params:
                payload[name] = params[name]
        payload.update(fixed or {})
        payload.update(point)
        return payload


class ExperimentSpec:
    """One declarative, parameterized experiment."""

    def __init__(
        self,
        name: str,
        description: str,
        space: ParamSpace,
        runner: Callable[[Mapping[str, object]], RunResult],
        panels: Optional[Mapping[str, Sequence[object]]] = None,
        trial: Optional[TrialTemplate] = None,
    ) -> None:
        self.name = name
        self.description = description
        self.space = space
        self.runner = runner
        self.panels = {k: tuple(v) for k, v in panels.items()} if panels else None
        self.trial = trial

    # -- running -----------------------------------------------------

    def resolve(
        self, overrides: Optional[Mapping[str, object]] = None
    ) -> Dict[str, object]:
        """Validate overrides into the full parameter mapping."""
        return self.space.resolve(overrides)

    def run(self, overrides: Optional[Mapping[str, object]] = None) -> RunResult:
        """Resolve and execute one run."""
        return self.runner(self.resolve(overrides))

    def render(self, scale: float) -> str:
        """The legacy CLI text: panel sub-runs joined by a blank line.

        This is the exact string the hand-rolled registry lambdas used
        to build (``fn("block", scale) + "\\n\\n" + fn("sli", scale)``),
        now driven by the spec's own grid enumeration.
        """
        base = {"scale": scale}
        if not self.panels:
            return self.run(base).text
        points = self.space.grid(self.panels, base=base)
        return PANEL_SEPARATOR.join(self.runner(point).text for point in points)

    # -- identity ----------------------------------------------------

    def fingerprint(self) -> str:
        """Config identity: the name plus the full space description."""
        described = json.dumps(
            {
                "name": self.name,
                "params": [param.describe() for param in self.space],
                "panels": {k: list(v) for k, v in (self.panels or {}).items()},
            },
            sort_keys=True,
        )
        return fingerprint(described)

    def run_key(self, params: Mapping[str, object], seed: Optional[int] = None) -> str:
        """Content-addressed identity of one resolved run."""
        canonical = json.dumps(
            {name: list(v) if isinstance(v, tuple) else v for name, v in params.items()},
            sort_keys=True,
        )
        suffix = "" if seed is None else f"/seed={seed}"
        return f"run/{self.name}/{fingerprint(canonical)}{suffix}"

    # -- inheritance -------------------------------------------------

    def derive(
        self,
        name: str,
        description: Optional[str] = None,
        defaults: Optional[Mapping[str, object]] = None,
        extra: Sequence[Param] = (),
        panels: object = _INHERIT,
        trial: Optional[TrialTemplate] = None,
    ) -> "ExperimentSpec":
        """A child spec: same runner, new defaults/params per override."""
        return ExperimentSpec(
            name=name,
            description=description if description is not None else self.description,
            space=self.space.derive(defaults=defaults, extra=extra),
            runner=self.runner,
            panels=self.panels if panels is _INHERIT else panels,
            trial=trial if trial is not None else self.trial,
        )

    def describe_params(self) -> str:
        return self.space.describe()


# -- registration -----------------------------------------------------


def register_spec(spec: ExperimentSpec) -> ExperimentSpec:
    """Register a spec and its legacy ``runner(scale) -> str`` adapter."""
    from repro.analysis.experiments.registry import register

    if spec.name in SPECS:
        raise ConfigurationError(f"experiment spec {spec.name!r} registered twice")
    SPECS[spec.name] = spec
    register(spec.name, spec.description)(spec.render)
    return spec


def require_spec(name: str) -> ExperimentSpec:
    """Resolve a spec by name (importing the experiment modules first)."""
    import repro.analysis.experiments  # noqa: F401  (registers the specs)

    if name not in SPECS:
        known = ", ".join(sorted(SPECS)) or "none registered"
        raise ConfigurationError(
            f"experiment {name!r} has no declarative spec; specs exist for: {known}"
        )
    return SPECS[name]


def searchable_spec(name: str) -> ExperimentSpec:
    """Like :func:`require_spec`, but demands a trial template."""
    spec = require_spec(name)
    if spec.trial is None:
        raise ConfigurationError(
            f"experiment {name!r} declares no trial template, so it cannot "
            "be auto-searched"
        )
    return spec

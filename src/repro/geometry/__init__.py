"""Geometry substrate: screen-space triangles, scenes and traces.

The paper drives its simulator with triangle traces extracted from an
instrumented Mesa.  This package defines the equivalent trace format:
screen-space textured triangles, already transformed and projected, in
strict submission (OpenGL) order.
"""

from repro.geometry.vertex import Vertex
from repro.geometry.triangle import Triangle
from repro.geometry.scene import Scene, SceneStatistics
from repro.geometry.trace import load_trace, save_trace
from repro.geometry.transform import (
    Camera,
    Triangle3D,
    Vertex3D,
    project_triangle,
    project_triangles,
    textured_quad_3d,
)

__all__ = [
    "Vertex",
    "Triangle",
    "Scene",
    "SceneStatistics",
    "load_trace",
    "save_trace",
    "Camera",
    "Vertex3D",
    "Triangle3D",
    "project_triangle",
    "project_triangles",
    "textured_quad_3d",
]

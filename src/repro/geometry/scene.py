"""A scene: a screen, a texture table and an ordered triangle trace."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.geometry.triangle import Triangle
from repro.texture.texture import MipmappedTexture


@dataclass(frozen=True)
class SceneStatistics:
    """The Table-1 characterisation of a scene.

    ``pixels_rendered`` counts every drawn fragment (overdraw included —
    the paper simulates no Z-buffer), so ``depth_complexity`` is simply
    pixels rendered divided by the screen area.
    """

    name: str
    screen_width: int
    screen_height: int
    pixels_rendered: int
    depth_complexity: float
    num_triangles: int
    num_textures: int
    texture_bytes: int
    unique_texel_to_fragment: float

    @property
    def texture_megabytes(self) -> float:
        return self.texture_bytes / (1024.0 * 1024.0)

    @property
    def pixels_per_triangle(self) -> float:
        if self.num_triangles == 0:
            return 0.0
        return self.pixels_rendered / self.num_triangles


class Scene:
    """An ordered triangle trace plus the textures it samples.

    Triangle order is the strict OpenGL submission order; the
    sort-middle machine must preserve it, and the triangle distributor
    replays it verbatim.
    """

    def __init__(
        self,
        name: str,
        width: int,
        height: int,
        textures: Sequence[MipmappedTexture],
        triangles: Optional[Sequence[Triangle]] = None,
    ) -> None:
        if width < 1 or height < 1:
            raise ConfigurationError(f"screen must be at least 1x1, got {width}x{height}")
        if not textures:
            raise ConfigurationError("a scene needs at least one texture")
        self.name = name
        self.width = width
        self.height = height
        self.textures: List[MipmappedTexture] = list(textures)
        self.triangles: List[Triangle] = []
        for triangle in triangles or ():
            self.add(triangle)
        # Lazily-filled rasterisation / layout caches.
        self._fragments = None
        self._layout = None
        #: Content-identity key for the artifact pipeline.  Set by the
        #: workload generator (spec fingerprint + scale); ``None`` for
        #: hand-built or trace-loaded scenes, which are then computed
        #: directly instead of through the shared artifact store.
        self.artifact_key = None

    def add(self, triangle: Triangle) -> None:
        """Append a triangle, validating its texture reference."""
        if triangle.texture >= len(self.textures):
            raise ConfigurationError(
                f"triangle references texture {triangle.texture}, "
                f"scene has {len(self.textures)}"
            )
        self.triangles.append(triangle)
        self._fragments = None
        # A mutated scene no longer matches its generated identity.
        self.artifact_key = None

    @property
    def num_triangles(self) -> int:
        return len(self.triangles)

    @property
    def screen_pixels(self) -> int:
        return self.width * self.height

    def texture_bytes(self) -> int:
        """Total texture-memory footprint including mipmap pyramids."""
        return sum(texture.total_bytes() for texture in self.textures)

    def fragments(self):
        """Rasterise (once) and return the scene's FragmentBuffer."""
        if self._fragments is None:
            from repro.raster.raster import rasterize_scene

            self._fragments = rasterize_scene(self)
        return self._fragments

    def memory_layout(self):
        """Block-linear texture-memory layout shared by every node."""
        if self._layout is None:
            from repro.texture.layout import TextureMemoryLayout

            self._layout = TextureMemoryLayout(self.textures)
        return self._layout

    def statistics(self) -> SceneStatistics:
        """Compute the scene's Table-1 row (rasterises if needed)."""
        from repro.analysis.characterize import characterize_scene

        return characterize_scene(self)

    def __getstate__(self):
        # The rasterisation and layout memos are pure caches and can
        # dwarf the scene itself; pickles (artifact store, worker
        # transfers) carry only the definition.
        state = self.__dict__.copy()
        state["_fragments"] = None
        state["_layout"] = None
        return state

    def __repr__(self) -> str:
        return (
            f"Scene({self.name!r}, {self.width}x{self.height}, "
            f"{self.num_triangles} triangles, {len(self.textures)} textures)"
        )

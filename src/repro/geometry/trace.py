"""Triangle-trace files.

The paper extracted traces from an instrumented Mesa and replayed them
in the simulator.  This module defines the equivalent on-disk format so
scenes can be captured once and replayed deterministically: a small
text header describing the screen and texture table, then one line per
triangle in submission order.

Format (whitespace separated)::

    REPRO-TRACE 2
    scene <name>
    screen <width> <height>
    textures <count>
    texture <width> <height>          # repeated <count> times
    triangles <count>
    tri <tex> <x y u v z> <x y u v z> <x y u v z>

Version 1 files (no per-vertex depth, 13-field ``tri`` records) are
still read; depths load as 0.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.errors import TraceFormatError
from repro.geometry.scene import Scene
from repro.geometry.triangle import Triangle
from repro.geometry.vertex import Vertex
from repro.texture.texture import MipmappedTexture

_MAGIC = "REPRO-TRACE"
_VERSION = 2
_SUPPORTED_VERSIONS = ("1", "2")


def save_trace(scene: Scene, path: Union[str, Path]) -> None:
    """Write ``scene`` to ``path`` in the trace format."""
    lines: List[str] = [
        f"{_MAGIC} {_VERSION}",
        f"scene {scene.name}",
        f"screen {scene.width} {scene.height}",
        f"textures {len(scene.textures)}",
    ]
    for texture in scene.textures:
        lines.append(f"texture {texture.width} {texture.height}")
    lines.append(f"triangles {scene.num_triangles}")
    for tri in scene.triangles:
        coords = " ".join(
            f"{v.x:.4f} {v.y:.4f} {v.u:.4f} {v.v:.4f} {v.z:.4f}"
            for v in tri.vertices
        )
        lines.append(f"tri {tri.texture} {coords}")
    Path(path).write_text("\n".join(lines) + "\n")


def _expect(rows: List[List[str]], cursor: int, keyword: str, count: int) -> List[str]:
    if cursor >= len(rows):
        raise TraceFormatError(f"expected '{keyword}' record, got end of file")
    tokens = rows[cursor]
    if tokens[0] != keyword or len(tokens) != count + 1:
        raise TraceFormatError(f"expected '{keyword}' record, got {' '.join(tokens)}")
    return tokens[1:]


def load_trace(path: Union[str, Path]) -> Scene:
    """Read a scene back from a trace file written by :func:`save_trace`."""
    text = Path(path).read_text()
    rows = [line.split() for line in text.splitlines() if line.strip()]
    if not rows or rows[0][0] != _MAGIC:
        raise TraceFormatError(f"{path}: not a repro trace file")
    if rows[0][1:] not in ([v] for v in _SUPPORTED_VERSIONS):
        raise TraceFormatError(f"{path}: unsupported trace version {rows[0][1:]}")
    version = int(rows[0][1])

    cursor = 1
    (name,) = _expect(rows, cursor, "scene", 1)
    cursor += 1
    width, height = (int(t) for t in _expect(rows, cursor, "screen", 2))
    cursor += 1
    (tex_count,) = (int(t) for t in _expect(rows, cursor, "textures", 1))
    cursor += 1
    textures = []
    for _ in range(tex_count):
        tw, th = (int(t) for t in _expect(rows, cursor, "texture", 2))
        textures.append(MipmappedTexture(tw, th))
        cursor += 1
    (tri_count,) = (int(t) for t in _expect(rows, cursor, "triangles", 1))
    cursor += 1

    scene = Scene(name, width, height, textures)
    stride = 5 if version >= 2 else 4
    for _ in range(tri_count):
        fields = _expect(rows, cursor, "tri", 1 + 3 * stride)
        cursor += 1
        tex = int(fields[0])
        values = [float(f) for f in fields[1:]]
        vertices = []
        for base in (0, stride, 2 * stride):
            chunk = values[base : base + stride]
            if stride == 5:
                x, y, u, v, z = chunk
            else:
                x, y, u, v = chunk
                z = 0.0
            vertices.append(Vertex(x, y, u, v, z))
        scene.add(Triangle(vertices[0], vertices[1], vertices[2], texture=tex))
    if scene.num_triangles != tri_count:
        raise TraceFormatError(f"{path}: triangle count mismatch")
    return scene

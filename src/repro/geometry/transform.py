"""3D geometry processing: the pipeline stage in front of the trace.

The paper's machine receives *transformed* screen-space triangles from
an ideal geometry stage.  This module implements that stage so scenes
can be authored in 3D — model/view/projection transforms, near-plane
clipping, backface culling and viewport mapping, i.e. the OpenGL
vertex-processing path — and then captured as an ordinary triangle
trace for the texture-mapping simulator.

Conventions: right-handed world space, camera looking down -Z in eye
space, y-down screen space (matching the rasterizer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.triangle import Triangle
from repro.geometry.vertex import Vertex


@dataclass(frozen=True)
class Vertex3D:
    """A world-space vertex with level-0 texel coordinates."""

    x: float
    y: float
    z: float
    u: float = 0.0
    v: float = 0.0

    def position(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z, 1.0])


@dataclass(frozen=True)
class Triangle3D:
    """A textured world-space triangle."""

    v0: Vertex3D
    v1: Vertex3D
    v2: Vertex3D
    texture: int = 0

    @property
    def vertices(self) -> Tuple[Vertex3D, Vertex3D, Vertex3D]:
        return (self.v0, self.v1, self.v2)


def look_at(eye: Sequence[float], target: Sequence[float], up: Sequence[float] = (0, 1, 0)) -> np.ndarray:
    """View matrix placing the camera at ``eye`` looking at ``target``."""
    eye = np.asarray(eye, dtype=float)
    target = np.asarray(target, dtype=float)
    forward = target - eye
    norm = np.linalg.norm(forward)
    if norm < 1e-12:
        raise ConfigurationError("camera eye and target coincide")
    forward /= norm
    right = np.cross(forward, np.asarray(up, dtype=float))
    right_norm = np.linalg.norm(right)
    if right_norm < 1e-12:
        raise ConfigurationError("camera up vector is parallel to the view direction")
    right /= right_norm
    true_up = np.cross(right, forward)
    view = np.eye(4)
    view[0, :3] = right
    view[1, :3] = true_up
    view[2, :3] = -forward
    view[:3, 3] = -view[:3, :3] @ eye
    return view


def perspective(fov_y_degrees: float, aspect: float, near: float, far: float) -> np.ndarray:
    """OpenGL-style perspective projection matrix."""
    if not 0 < fov_y_degrees < 180:
        raise ConfigurationError(f"field of view must be in (0, 180), got {fov_y_degrees}")
    if near <= 0 or far <= near:
        raise ConfigurationError(f"need 0 < near < far, got near={near}, far={far}")
    f = 1.0 / math.tan(math.radians(fov_y_degrees) / 2.0)
    projection = np.zeros((4, 4))
    projection[0, 0] = f / aspect
    projection[1, 1] = f
    projection[2, 2] = (far + near) / (near - far)
    projection[2, 3] = 2 * far * near / (near - far)
    projection[3, 2] = -1.0
    return projection


@dataclass(frozen=True)
class Camera:
    """A pinhole camera plus viewport, i.e. the whole vertex pipeline."""

    eye: Tuple[float, float, float]
    target: Tuple[float, float, float]
    fov_y_degrees: float
    viewport_width: int
    viewport_height: int
    near: float = 0.1
    far: float = 1000.0
    up: Tuple[float, float, float] = (0.0, 1.0, 0.0)

    def matrices(self) -> Tuple[np.ndarray, np.ndarray]:
        view = look_at(self.eye, self.target, self.up)
        projection = perspective(
            self.fov_y_degrees,
            self.viewport_width / self.viewport_height,
            self.near,
            self.far,
        )
        return view, projection


def _to_screen(clip: np.ndarray, u: float, v: float, width: int, height: int) -> Vertex:
    ndc = clip[:3] / clip[3]
    x = (ndc[0] + 1.0) * 0.5 * width
    # NDC y is up; screen y is down.
    y = (1.0 - ndc[1]) * 0.5 * height
    # NDC z in [-1 (near), 1 (far)] maps to screen depth [0, 1].
    z = (ndc[2] + 1.0) * 0.5
    return Vertex(x, y, u, v, z)


def _clip_near(
    vertices: List[Tuple[np.ndarray, float, float]],
) -> List[Tuple[np.ndarray, float, float]]:
    """Clip a clip-space polygon against the near plane (w > epsilon).

    Texture coordinates interpolate linearly in clip space before the
    divide, which is the correct (perspective-aware) interpolation.
    """
    epsilon = 1e-6
    output: List[Tuple[np.ndarray, float, float]] = []
    for index, current in enumerate(vertices):
        previous = vertices[index - 1]
        cur_in = current[0][3] > epsilon and current[0][2] >= -current[0][3]
        prev_in = previous[0][3] > epsilon and previous[0][2] >= -previous[0][3]
        if cur_in != prev_in:
            # Intersect with z = -w.
            pz, pw = previous[0][2], previous[0][3]
            cz, cw = current[0][2], current[0][3]
            denominator = (pz + pw) - (cz + cw)
            t = (pz + pw) / denominator if abs(denominator) > epsilon else 0.5
            clip = previous[0] + t * (current[0] - previous[0])
            u = previous[1] + t * (current[1] - previous[1])
            v = previous[2] + t * (current[2] - previous[2])
            output.append((clip, u, v))
        if cur_in:
            output.append(current)
    return output


def project_triangle(
    triangle: Triangle3D, camera: Camera, cull_backfaces: bool = True
) -> List[Triangle]:
    """Transform one world triangle into 0..2 screen triangles.

    Returns an empty list when the triangle is culled (behind the
    camera or backfacing); near-plane clipping can split a triangle
    into two.
    """
    view, projection = camera.matrices()
    matrix = projection @ view
    clip_vertices = [
        (matrix @ vertex.position(), vertex.u, vertex.v)
        for vertex in triangle.vertices
    ]
    polygon = _clip_near(clip_vertices)
    if len(polygon) < 3:
        return []
    screen = [
        _to_screen(clip, u, v, camera.viewport_width, camera.viewport_height)
        for clip, u, v in polygon
    ]
    result: List[Triangle] = []
    for index in range(1, len(screen) - 1):
        candidate = Triangle(
            screen[0], screen[index], screen[index + 1], texture=triangle.texture
        )
        if candidate.is_degenerate():
            continue
        if cull_backfaces and candidate.signed_area() < 0:
            continue
        result.append(candidate)
    return result


def project_triangles(
    triangles: Sequence[Triangle3D],
    camera: Camera,
    cull_backfaces: bool = True,
) -> List[Triangle]:
    """Run the vertex pipeline over a whole 3D object list, in order."""
    screen: List[Triangle] = []
    for triangle in triangles:
        screen.extend(project_triangle(triangle, camera, cull_backfaces))
    return screen


def textured_quad_3d(
    corner: Sequence[float],
    edge_u: Sequence[float],
    edge_v: Sequence[float],
    texture: int = 0,
    texel_scale: float = 1.0,
    u_origin: float = 0.0,
    v_origin: float = 0.0,
) -> List[Triangle3D]:
    """Two world-space triangles forming a textured parallelogram.

    ``edge_u``/``edge_v`` span the surface; texture coordinates advance
    ``texel_scale`` texels per world unit along each edge.  Winding is
    counter-clockwise seen from the ``edge_u`` x ``edge_v`` normal side.
    """
    corner = np.asarray(corner, dtype=float)
    edge_u = np.asarray(edge_u, dtype=float)
    edge_v = np.asarray(edge_v, dtype=float)
    du = float(np.linalg.norm(edge_u)) * texel_scale
    dv = float(np.linalg.norm(edge_v)) * texel_scale

    def vert(su: float, sv: float) -> Vertex3D:
        position = corner + su * edge_u + sv * edge_v
        return Vertex3D(
            position[0], position[1], position[2],
            u_origin + su * du, v_origin + sv * dv,
        )

    v00, v10, v01, v11 = vert(0, 0), vert(1, 0), vert(0, 1), vert(1, 1)
    return [
        Triangle3D(v00, v10, v01, texture=texture),
        Triangle3D(v10, v11, v01, texture=texture),
    ]

"""Screen-space textured triangle."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError
from repro.geometry.vertex import Vertex


@dataclass(frozen=True)
class Triangle:
    """One textured triangle of the trace.

    The triangle is already in screen space; ``texture`` names the
    texture (an index into the scene's texture table) its fragments
    sample with trilinear filtering.
    """

    v0: Vertex
    v1: Vertex
    v2: Vertex
    texture: int = 0

    def __post_init__(self) -> None:
        if self.texture < 0:
            raise ConfigurationError(f"texture index must be >= 0, got {self.texture}")

    @property
    def vertices(self) -> Tuple[Vertex, Vertex, Vertex]:
        return (self.v0, self.v1, self.v2)

    def signed_area(self) -> float:
        """Twice-signed area is the cross product; this halves it."""
        ax = self.v1.x - self.v0.x
        ay = self.v1.y - self.v0.y
        bx = self.v2.x - self.v0.x
        by = self.v2.y - self.v0.y
        return 0.5 * (ax * by - ay * bx)

    def area(self) -> float:
        """Unsigned screen-space area in pixels."""
        return abs(self.signed_area())

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` in screen coordinates."""
        xs = (self.v0.x, self.v1.x, self.v2.x)
        ys = (self.v0.y, self.v1.y, self.v2.y)
        return (min(xs), min(ys), max(xs), max(ys))

    def is_degenerate(self) -> bool:
        """True when the triangle has (numerically) zero area."""
        return self.area() < 1e-12

    def texel_to_pixel_scale(self) -> float:
        """Texels traversed per pixel step, the quantity mip selection uses.

        For the affine texture mappings used throughout this project the
        Jacobian of the (x, y) -> (u, v) map is constant over the
        triangle, so this per-triangle value is exact, not an
        approximation.  Returns 0.0 for degenerate triangles.
        """
        det = 2.0 * self.signed_area()
        if abs(det) < 1e-12:
            return 0.0
        x0, y0, u0, w0 = self.v0.x, self.v0.y, self.v0.u, self.v0.v
        x1, y1, u1, w1 = self.v1.x, self.v1.y, self.v1.u, self.v1.v
        x2, y2, u2, w2 = self.v2.x, self.v2.y, self.v2.u, self.v2.v
        # Solve the affine system for du/dx, du/dy, dv/dx, dv/dy.
        du_dx = ((u1 - u0) * (y2 - y0) - (u2 - u0) * (y1 - y0)) / det
        du_dy = ((u2 - u0) * (x1 - x0) - (u1 - u0) * (x2 - x0)) / det
        dv_dx = ((w1 - w0) * (y2 - y0) - (w2 - w0) * (y1 - y0)) / det
        dv_dy = ((w2 - w0) * (x1 - x0) - (w1 - w0) * (x2 - x0)) / det
        step_x = (du_dx * du_dx + dv_dx * dv_dx) ** 0.5
        step_y = (du_dy * du_dy + dv_dy * dv_dy) ** 0.5
        return max(step_x, step_y)

"""Screen-space vertex with texture coordinates."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Vertex:
    """A post-transform vertex.

    Attributes
    ----------
    x, y:
        Screen position in pixels.  The pixel at integer coordinates
        ``(i, j)`` has its centre at ``(i + 0.5, j + 0.5)``.
    u, v:
        Texture coordinates in *level-0 texel units* (not normalised).
        Values outside ``[0, width)`` wrap, i.e. ``GL_REPEAT``.
    z:
        Screen-space depth (smaller is closer).  The paper's machine
        never consults it — the Z-buffer sits after texturing and is
        not simulated — but the early-Z ablation does.
    """

    x: float
    y: float
    u: float = 0.0
    v: float = 0.0
    z: float = 0.0

    def translated(self, dx: float, dy: float) -> "Vertex":
        """Return a copy moved by ``(dx, dy)`` in screen space."""
        return Vertex(self.x + dx, self.y + dy, self.u, self.v, self.z)

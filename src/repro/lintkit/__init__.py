"""``repro.lintkit`` — determinism & invariant static analysis.

An AST-based analyzer with a pluggable rule registry and a
``repro-lint`` CLI.  The rules machine-check the invariants the
reproduction's correctness rests on (DESIGN.md §9):

* **determinism** (REPRO101–104) — no wall-clock reads, global PRNG
  state or set-iteration-order dependence inside the simulation core
  (``repro.sim``, ``repro.core``, ``repro.cache``, ``repro.raster``);
* **cycle accounting** (REPRO201–202) — no float ``==``/``!=`` on
  cycle/latency values, no true division into cycle counts;
* **obs hygiene** (REPRO301–302) — hot paths resolve the recorder
  once (null-object pattern) and metric names follow ``dotted.lower``;
* **concurrency** (REPRO401–402) — no bare ``except:`` in
  ``repro.service``, and attributes guarded by a class lock are never
  mutated outside it.

Intentional exceptions live in ``lint-baseline.txt`` (one justified
entry per finding) or inline via
``# repro-lint: ignore[RULE] -- reason``.
"""

from repro.lintkit.baseline import Baseline, BaselineEntry, write_baseline
from repro.lintkit.context import ModuleContext, module_name_for_path
from repro.lintkit.engine import Report, analyze_source, iter_python_files, run
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, all_rules, register, select_rules

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "Report",
    "Rule",
    "all_rules",
    "analyze_source",
    "iter_python_files",
    "module_name_for_path",
    "register",
    "run",
    "select_rules",
    "write_baseline",
]

"""``python -m repro.lintkit`` == ``repro-lint``."""

from repro.lintkit.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

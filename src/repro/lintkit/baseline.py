"""Baseline (suppression) file for intentional rule exceptions.

Format — one tab-separated entry per line, comments and blanks ignored::

    RULEID <TAB> path <TAB> source-line-snippet <TAB> # justification

The snippet is the whitespace-normalised source line the finding sits
on, so entries survive line-number drift but die the moment the
flagged code is edited (the suppression then shows up as *stale*).
Every entry **must** carry a non-placeholder justification; the loader
rejects the file otherwise — a baseline is a list of argued-for
exceptions, not a mute button.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Set, Tuple, Union

from repro.errors import ConfigurationError
from repro.lintkit.findings import Finding

#: Placeholder ``--write-baseline`` emits; must be replaced by hand.
TODO_JUSTIFICATION = "# TODO: justify this suppression"

_HEADER = """\
# repro-lint baseline: intentional, argued-for rule exceptions.
# One tab-separated entry per line:
#   RULEID<TAB>path<TAB>normalised source line<TAB># one-line justification
# Entries match findings by (rule, path, line content) -- immune to line
# renumbering, invalidated by any edit to the flagged line itself.
"""

EntryKey = Tuple[str, str, str]


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    snippet: str
    justification: str

    @property
    def key(self) -> EntryKey:
        return (self.rule, self.path.replace("\\", "/"), self.snippet)

    def render(self) -> str:
        return f"{self.rule}\t{self.path}\t{self.snippet}\t{self.justification}"


def _match(entry_key: EntryKey, finding_key: EntryKey) -> bool:
    """Exact match, or suffix match on the path component.

    Suffix matching lets one baseline serve runs started from the repo
    root (``src/repro/...``) and from an absolute path.
    """
    if entry_key == finding_key:
        return True
    rule, path, snippet = entry_key
    f_rule, f_path, f_snippet = finding_key
    return (
        rule == f_rule
        and snippet == f_snippet
        and (f_path.endswith("/" + path) or path.endswith("/" + f_path))
    )


@dataclass
class Baseline:
    """A loaded suppression list."""

    entries: List[BaselineEntry] = field(default_factory=list)
    path: str = ""

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        text = Path(path).read_text(encoding="utf-8")
        entries: List[BaselineEntry] = []
        problems: List[str] = []
        for number, raw in enumerate(text.splitlines(), start=1):
            line = raw.rstrip()
            if not line or line.lstrip().startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 4:
                problems.append(
                    f"{path}:{number}: expected 4 tab-separated fields, got {len(parts)}"
                )
                continue
            rule, entry_path, snippet, justification = (part.strip() for part in parts)
            if not justification.startswith("#") or len(justification.lstrip("# ")) < 3:
                problems.append(
                    f"{path}:{number}: entry for {rule} needs a `# justification`"
                )
            elif justification == TODO_JUSTIFICATION:
                problems.append(
                    f"{path}:{number}: entry for {rule} still carries the TODO "
                    "placeholder; write a real justification"
                )
            entries.append(BaselineEntry(rule, entry_path, snippet, justification))
        if problems:
            raise ConfigurationError(
                "invalid baseline file:\n  " + "\n  ".join(problems)
            )
        return cls(entries=entries, path=str(path))

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
        """Split findings into (unsuppressed, suppressed); report stale entries.

        A stale entry matched no finding — the flagged code was fixed
        or edited, so the suppression should be deleted.
        """
        used: Set[EntryKey] = set()
        unsuppressed: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            matched = None
            for entry in self.entries:
                if _match(entry.key, finding.baseline_key):
                    matched = entry
                    break
            if matched is None:
                unsuppressed.append(finding)
            else:
                suppressed.append(finding)
                used.add(matched.key)
        stale = [entry for entry in self.entries if entry.key not in used]
        return unsuppressed, suppressed, stale


def prune_baseline(
    path: Union[str, Path], stale: Sequence[BaselineEntry]
) -> int:
    """Rewrite ``path`` without the ``stale`` entries.

    Surviving entries keep their hand-written justifications verbatim.
    Returns the number of entries removed.
    """
    baseline = Baseline.load(path)
    stale_keys = {entry.key for entry in stale}
    kept = [entry for entry in baseline.entries if entry.key not in stale_keys]
    removed = len(baseline.entries) - len(kept)
    if removed:
        body = "".join(entry.render() + "\n" for entry in kept)
        Path(path).write_text(_HEADER + body, encoding="utf-8")
    return removed


def write_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> int:
    """Write a baseline suppressing ``findings``; returns the entry count.

    Each entry gets the TODO placeholder justification — the file will
    not load until every entry is justified by hand, which is the
    point: suppressions are individually argued for, never blanket.
    """
    seen: Dict[EntryKey, BaselineEntry] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        entry = BaselineEntry(
            rule=finding.rule,
            path=finding.path.replace("\\", "/"),
            snippet=finding.snippet,
            justification=TODO_JUSTIFICATION,
        )
        seen.setdefault(entry.key, entry)
    body = "".join(entry.render() + "\n" for entry in seen.values())
    Path(path).write_text(_HEADER + body, encoding="utf-8")
    return len(seen)

"""``repro-lint`` — run the determinism/invariant analyzer from the shell.

Examples::

    repro-lint src
    repro-lint src --select REPRO101,REPRO104
    repro-lint src --write-baseline          # seed lint-baseline.txt
    repro-lint --list-rules
    repro-lint src --format json

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/config error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.lintkit.baseline import Baseline, prune_baseline, write_baseline
from repro.lintkit.engine import run
from repro.lintkit.registry import all_rules

#: Conventional baseline location, relative to the invocation directory.
DEFAULT_BASELINE = "lint-baseline.txt"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism and invariant checks for the repro tree "
            "(rule catalog: DESIGN.md §9; `--list-rules` for a summary)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to analyze (default: src, else .)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"suppression file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write the current findings to the baseline file with TODO "
            "justifications (each must be hand-justified before it loads)"
        ),
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "rewrite the baseline file without its stale entries (those "
            "matching no current finding), preserving justifications"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help=(
            "run the project-wide dataflow rules too (key completeness, "
            "flow-sensitive lock discipline, interprocedural taint); "
            "parses the whole tree once and analyzes across files"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--statistics",
        action="store_true",
        help="print per-rule finding counts",
    )
    return parser


def _list_rules() -> int:
    rules = all_rules()
    width = max(len(rule.id) for rule in rules)
    for rule in rules:
        scope = ", ".join(rule.scopes) if rule.scopes else "all modules"
        print(f"{rule.id.ljust(width)}  {rule.title}  [{scope}]")
    return 0


def _resolve_paths(raw: Optional[List[str]]) -> List[str]:
    if raw:
        return raw
    return ["src"] if Path("src").is_dir() else ["."]


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _main(args)
    except ReproError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2


def _main(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()
    paths = _resolve_paths(args.paths)
    select = (
        [rule.strip() for rule in args.select.split(",") if rule.strip()]
        if args.select
        else None
    )

    if args.write_baseline:
        target = args.baseline if args.baseline is not None else Path(DEFAULT_BASELINE)
        findings = run(
            paths, baseline=None, select=select, project=args.project
        ).findings
        count = write_baseline(target, findings)
        print(
            f"wrote {count} entr{'y' if count == 1 else 'ies'} to {target}; "
            "replace every TODO with a one-line justification before the "
            "baseline will load"
        )
        return 0

    baseline = None
    if not args.no_baseline:
        source = args.baseline if args.baseline is not None else Path(DEFAULT_BASELINE)
        if source.is_file():
            baseline = Baseline.load(source)
        elif args.baseline is not None:
            raise ConfigurationError(f"baseline file not found: {source}")

    report = run(paths, baseline=baseline, select=select, project=args.project)

    if args.prune_baseline:
        if baseline is None:
            raise ConfigurationError(
                "--prune-baseline needs a baseline file (none found/loaded)"
            )
        removed = prune_baseline(baseline.path, report.stale_entries)
        print(
            f"pruned {removed} stale entr{'y' if removed == 1 else 'ies'} "
            f"from {baseline.path}"
        )

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in report.findings:
            print(finding.render())
        if not args.prune_baseline:
            for entry in report.stale_entries:
                print(
                    f"warning: stale baseline entry (code fixed or edited): "
                    f"[{entry.rule}] {entry.path} {entry.snippet!r} "
                    f"-- justified as {entry.justification.lstrip('# ')!r}; "
                    "delete the line or rerun with --prune-baseline",
                    file=sys.stderr,
                )
        if args.statistics and report.findings:
            counts: dict = {}
            for finding in report.findings:
                counts[finding.rule] = counts.get(finding.rule, 0) + 1
            for rule_id, count in sorted(counts.items()):
                print(f"{rule_id}: {count}")
        summary = (
            f"{len(report.findings)} finding(s), "
            f"{len(report.suppressed)} suppressed, "
            f"{report.files_checked} file(s) checked"
        )
        print(("FAIL: " if report.findings else "OK: ") + summary)
    return 1 if report.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())

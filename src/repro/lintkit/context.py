"""Per-module analysis context shared by every rule.

One :class:`ModuleContext` is built per analyzed file: the parsed AST,
the source lines (for snippets and inline suppressions) and an import
table that lets rules resolve a ``Name``/``Attribute`` chain to the
qualified name it refers to (``pc(...)`` -> ``time.perf_counter`` after
``from time import perf_counter as pc``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path.

    The name anchors on the last ``src`` component (the project
    layout) or, failing that, the first ``repro`` component, so rules
    can scope themselves to packages (``repro.sim``) regardless of
    where the tree is checked out.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    anchor = 0
    for index, part in enumerate(parts):
        if part == "src":
            anchor = index + 1
    if anchor == 0 and "repro" in parts:
        anchor = parts.index("repro")
    dotted = ".".join(parts[anchor:])
    return dotted or "__main__"


def _base_package(module: str, level: int) -> str:
    """Package a ``from ... import`` with ``level`` dots resolves against."""
    parts = module.split(".")
    # Drop the module's own name, then one more package per extra dot.
    drop = max(level, 1)
    if drop >= len(parts):
        return ""
    return ".".join(parts[: len(parts) - drop])


def build_import_table(tree: ast.AST, module: str) -> Dict[str, str]:
    """Map local names to the qualified names they import."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds ``a``; attribute chains then
                    # resolve ``a.b.c`` naturally from the root.
                    root = alias.name.split(".")[0]
                    table[root] = root
        elif isinstance(node, ast.ImportFrom):
            source = node.module or ""
            if node.level:
                base = _base_package(module, node.level)
                source = f"{base}.{source}" if base and source else (base or source)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{source}.{alias.name}" if source else alias.name
    return table


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: str
    module: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls, source: str, path: str = "<source>", module: Optional[str] = None
    ) -> "ModuleContext":
        name = module if module is not None else module_name_for_path(path)
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            module=name,
            tree=tree,
            lines=source.splitlines(),
            imports=build_import_table(tree, name),
        )

    @classmethod
    def from_path(cls, path: str, module: Optional[str] = None) -> "ModuleContext":
        source = Path(path).read_text(encoding="utf-8")
        return cls.from_source(source, path=path, module=module)

    def line(self, lineno: int) -> str:
        """Source text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def qualname(self, node: ast.AST) -> Optional[str]:
        """Qualified dotted name a ``Name``/``Attribute`` chain refers to.

        Resolution goes through the import table, so ``np.random.rand``
        comes back as ``numpy.random.rand``.  Bare names that were
        never imported resolve to themselves (builtins like ``set``).
        Chains rooted in anything else (a call result, a subscript)
        resolve to ``None``.
        """
        chain: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        chain.append(root)
        return ".".join(reversed(chain))

"""The analysis driver: walk files, run rules, apply suppressions.

Inline suppression is supported next to the baseline file: a trailing
``# repro-lint: ignore[REPRO201] -- reason`` comment on the flagged
line silences exactly that rule (a reason is required; the comment is
rejected otherwise).  Baseline entries live in ``lint-baseline.txt``
(see :mod:`repro.lintkit.baseline`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.lintkit.baseline import Baseline, BaselineEntry
from repro.lintkit.context import ModuleContext
from repro.lintkit.findings import Finding
from repro.lintkit.registry import ProjectRule, Rule, select_rules

#: Inline suppression comment grammar.
_INLINE_IGNORE = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<rules>[A-Z0-9,\s]+)\](?P<reason>.*)$"
)

#: Directories never worth analyzing.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})


def iter_python_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Every ``.py`` file under ``paths``, sorted for determinism."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                out.append(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    out.append(candidate)
        else:
            raise ConfigurationError(f"no such file or directory: {path}")
    return sorted(set(out))


def _inline_suppressed(ctx: ModuleContext, finding: Finding) -> bool:
    match = _INLINE_IGNORE.search(ctx.line(finding.line))
    if not match:
        return False
    rules = {rule.strip() for rule in match.group("rules").split(",")}
    if finding.rule not in rules:
        return False
    reason = match.group("reason").strip(" -—:")
    if len(reason) < 3:
        raise ConfigurationError(
            f"{finding.path}:{finding.line}: inline ignore for {finding.rule} "
            "needs a reason: `# repro-lint: ignore[RULE] -- why`"
        )
    return True


def analyze_context(
    ctx: ModuleContext, rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Run ``rules`` (default: all) over one parsed module."""
    active = list(rules) if rules is not None else select_rules()
    findings: List[Finding] = []
    for rule in active:
        if rule.requires_project or not rule.applies_to(ctx.module):
            continue
        for finding in rule.check(ctx):
            if not _inline_suppressed(ctx, finding):
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings


def analyze_source(
    source: str,
    path: str = "<source>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Analyze a source string (the fixture-test entry point).

    ``module`` places the snippet in a package for scope matching —
    e.g. ``module="repro.sim.fake"`` exercises the determinism rules.
    """
    return analyze_context(ModuleContext.from_source(source, path, module), rules)


@dataclass
class Report:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)      # unsuppressed
    suppressed: List[Finding] = field(default_factory=list)    # baselined
    stale_entries: List[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "message": f.message,
                    "snippet": f.snippet,
                }
                for f in self.findings
            ],
            "suppressed": len(self.suppressed),
            "stale_baseline_entries": [entry.render() for entry in self.stale_entries],
        }


def run(
    paths: Iterable[Union[str, Path]],
    baseline: Optional[Baseline] = None,
    select: Optional[Iterable[str]] = None,
    project: bool = False,
) -> Report:
    """Analyze every Python file under ``paths`` and apply the baseline.

    With ``project=True`` the tree is additionally parsed into a
    :class:`~repro.lintkit.flow.Project` and the project rules
    (key completeness, lock discipline, interprocedural taint) run on
    top of the per-file ones.  The project's contexts back the
    per-file pass too, so the tree is parsed exactly once.
    """
    rules = select_rules(list(select) if select is not None else None)
    files = iter_python_files(paths)
    all_findings: List[Finding] = []
    if project:
        from repro.lintkit import flow

        proj = flow.project_for(files)
        by_path = {ctx.path: ctx for ctx in proj.contexts}
        for ctx in proj.contexts:
            all_findings.extend(analyze_context(ctx, rules))
        for rule in rules:
            if not isinstance(rule, ProjectRule):
                continue
            for finding in rule.check_project(proj):
                ctx = by_path.get(finding.path)
                if ctx is None or not _inline_suppressed(ctx, finding):
                    all_findings.append(finding)
    else:
        for file_path in files:
            ctx = ModuleContext.from_path(str(file_path))
            all_findings.extend(analyze_context(ctx, rules))
    all_findings.sort(key=Finding.sort_key)
    if baseline is None:
        return Report(findings=all_findings, files_checked=len(files))
    unsuppressed, suppressed, stale = baseline.partition(all_findings)
    return Report(
        findings=unsuppressed,
        suppressed=suppressed,
        stale_entries=stale,
        files_checked=len(files),
    )

"""Finding records produced by the static-analysis rules.

A finding is one rule violation at one source location.  The
``snippet`` — the stripped source line the finding sits on — doubles as
the finding's stable identity for baseline matching: line numbers
drift every edit, but a suppression should only survive while the
flagged code itself is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: Longest snippet stored/matched; keeps baseline lines readable.
SNIPPET_WIDTH = 160


def normalize_snippet(line: str) -> str:
    """Canonical form of a source line for baseline identity."""
    return " ".join(line.split())[:SNIPPET_WIDTH]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline suppression (line-number free)."""
        return (self.rule, self.path.replace("\\", "/"), self.snippet)

    def render(self) -> str:
        """Human-readable one-liner (``path:line:col: RULE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

"""``repro.lintkit.flow`` — project-wide dataflow analysis.

The per-file rules (REPRO1xx-5xx) see one module at a time; the flow
engine parses the whole tree once and builds three layers on top of
the same :class:`~repro.lintkit.context.ModuleContext` objects:

* a **symbol table** (:mod:`repro.lintkit.flow.symbols`) — every
  top-level function, class and method, addressable by project
  qualname (``repro.pipeline.keys.cache_key``,
  ``repro.service.jobs.JobSpec.result_key``);
* a **call graph** (:mod:`repro.lintkit.flow.callgraph`) — resolved
  call sites, queryable by caller and by callee;
* per-function **flow summaries**
  (:mod:`repro.lintkit.flow.summaries`) — which parameters reach the
  return value, and which taint sources (wall clock, PRNGs) do,
  propagated through helper calls to a fixpoint.

:mod:`repro.lintkit.flow.taint` defines the taint-source vocabulary
shared with the per-file determinism rules.

Everything hangs off a :class:`Project`: one parse of the tree,
lazily-built layers, and a process-wide cache keyed on file stats so
repeated runs (the CLI, the meta-tests) never re-parse an unchanged
tree.  The known imprecision of the engine — flow-insensitive joins,
generous propagation through unresolved calls, no alias tracking — is
documented in DESIGN.md §14 along with what it means for each rule
family built on top.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.lintkit.context import ModuleContext
from repro.lintkit.flow.callgraph import CallGraph, CallSite
from repro.lintkit.flow.summaries import FunctionSummary, SummaryIndex
from repro.lintkit.flow.symbols import ClassInfo, FunctionInfo, SymbolTable


class Project:
    """One parsed project: contexts plus the lazily-built flow layers."""

    def __init__(self, contexts: Iterable[ModuleContext]) -> None:
        self.contexts: List[ModuleContext] = list(contexts)
        #: module name -> context (last one wins on duplicates).
        self.by_module: Dict[str, ModuleContext] = {
            ctx.module: ctx for ctx in self.contexts
        }
        self._symbols: Optional[SymbolTable] = None
        self._callgraph: Optional[CallGraph] = None
        self._summaries: Optional[SummaryIndex] = None

    @property
    def symbols(self) -> SymbolTable:
        if self._symbols is None:
            self._symbols = SymbolTable.build(self.contexts)
        return self._symbols

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph.build(self)
        return self._callgraph

    @property
    def summaries(self) -> SummaryIndex:
        if self._summaries is None:
            self._summaries = SummaryIndex(self)
        return self._summaries

    def has_module(self, module: str) -> bool:
        """Whether ``module`` (or a package containing it) was analyzed."""
        return module in self.by_module


#: Process-wide parse cache: file-stat signature -> Project.
_CACHE: Dict[Tuple[Tuple[str, int, int], ...], Project] = {}
#: Bounded so pathological fixture churn cannot grow without limit.
_CACHE_LIMIT = 8


def _signature(files: Sequence[Union[str, Path]]) -> Tuple[Tuple[str, int, int], ...]:
    out = []
    for raw in files:
        path = str(raw)
        stat = os.stat(path)
        out.append((path, stat.st_mtime_ns, stat.st_size))
    return tuple(sorted(out))


def project_for(files: Sequence[Union[str, Path]]) -> Project:
    """The (cached) :class:`Project` over ``files``.

    The cache key is every file's ``(path, mtime, size)``: an edit, an
    added file or a removed file all miss, so a stale analysis can
    never be served.  Within one process, repeated runs over an
    unchanged tree — the common case for the CLI and the test suite —
    parse and summarize exactly once.
    """
    key = _signature(files)
    project = _CACHE.get(key)
    if project is None:
        if len(_CACHE) >= _CACHE_LIMIT:
            _CACHE.clear()
        project = Project(ModuleContext.from_path(str(path)) for path in files)
        _CACHE[key] = project
    return project


__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "FunctionSummary",
    "Project",
    "SummaryIndex",
    "SymbolTable",
    "project_for",
]

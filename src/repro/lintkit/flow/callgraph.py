"""Project call graph: resolved call sites, by caller and by callee.

Built once per :class:`~repro.lintkit.flow.Project` from the symbol
table.  Every syntactic call inside every indexed function is recorded
as a :class:`CallSite`; sites whose callee resolves to a project
function additionally land in the caller/callee indices.  Unresolved
sites (builtins, stdlib, method calls on values) keep their dotted
name when the import table can produce one, so rules can still match
them against vocabularies like the wall-clock call set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.lintkit.flow.symbols import FunctionInfo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lintkit.flow import Project


@dataclass
class CallSite:
    """One syntactic call inside one project function."""

    caller: str
    node: ast.Call
    path: str
    line: int
    #: Project qualname of the callee when resolved, else ``None``.
    callee: Optional[str]
    #: Best-effort dotted name (``time.monotonic``) even when the
    #: callee is not a project function; ``None`` for value-rooted
    #: chains (``obj.method()``).
    dotted: Optional[str]


class CallGraph:
    """Call sites indexed by caller and by resolved callee."""

    def __init__(self) -> None:
        self.sites: List[CallSite] = []
        self._by_caller: Dict[str, List[CallSite]] = {}
        self._by_callee: Dict[str, List[CallSite]] = {}

    @classmethod
    def build(cls, project: "Project") -> "CallGraph":
        graph = cls()
        symbols = project.symbols
        for info in symbols.functions.values():
            ctx = project.by_module.get(info.module)
            if ctx is None:
                continue
            enclosing = symbols.class_of(info)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = symbols.resolve_call(ctx, node, enclosing)
                graph._add(
                    CallSite(
                        caller=info.qualname,
                        node=node,
                        path=info.path,
                        line=getattr(node, "lineno", info.node.lineno),
                        callee=resolved.qualname if resolved is not None else None,
                        dotted=ctx.qualname(node.func),
                    )
                )
        return graph

    def _add(self, site: CallSite) -> None:
        self.sites.append(site)
        self._by_caller.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self._by_callee.setdefault(site.callee, []).append(site)

    def calls_from(self, qualname: str) -> List[CallSite]:
        """Every call site inside ``qualname``."""
        return list(self._by_caller.get(qualname, ()))

    def calls_to(self, qualname: str) -> List[CallSite]:
        """Every resolved call site targeting ``qualname``."""
        return list(self._by_callee.get(qualname, ()))

    def callees(self, qualname: str) -> List[str]:
        """Resolved callee qualnames reachable in one hop, sorted."""
        return sorted(
            {site.callee for site in self._by_caller.get(qualname, ()) if site.callee}
        )

    def callers(self, qualname: str) -> List[str]:
        """Caller qualnames with at least one resolved site, sorted."""
        return sorted({site.caller for site in self._by_callee.get(qualname, ())})

    def functions_calling(self, info: FunctionInfo) -> Iterator[str]:
        """Convenience: callers of an info record."""
        return iter(self.callers(info.qualname))

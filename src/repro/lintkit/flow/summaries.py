"""Per-function label flow: which inputs reach the return value.

The evaluator is a flow-insensitive abstract interpreter over one
function body.  Values are *label sets*; labels name where a value
came from:

* ``param:<name>`` — the function's own parameter;
* ``field:<name>`` — a ``self.<name>`` read (methods, opt-in);
* ``source:<category>`` — a taint source (wall clock, global PRNG).

Propagation is deliberately **generous** — the engine answers "could
this input plausibly reach that expression?", and the rules built on
it (key completeness, determinism taint) treat *absence* of flow as
the defect.  Over-approximating keeps those rules quiet on legitimate
code; the cost is that the engine cannot prove flow *doesn't* happen,
which is documented imprecision (DESIGN.md §14):

* joins are unions: both branches of an ``if`` contribute, every
  assignment accumulates onto the name's previous labels;
* unresolved calls (builtins, stdlib, methods on values) propagate
  every argument — and the callee expression itself — into the result;
* resolved project calls propagate exactly the arguments whose
  parameters reach the callee's return, per its (fixpoint) summary;
* container mutations (``parts.append(x)``) flow into the receiver;
* a ``yield`` counts as a return (generators "return" their stream).

:class:`SummaryIndex` memoizes one :class:`FunctionSummary` per
project function, computed on demand with a recursion guard (cycles
see a partial, empty summary and re-iterate to a fixpoint).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from repro.lintkit.flow.symbols import ClassInfo, FunctionInfo
from repro.lintkit.flow.taint import source_category

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lintkit.flow import Project

#: In-place container mutations whose arguments flow into the receiver.
_MUTATING_METHODS = frozenset(
    {"append", "appendleft", "add", "extend", "insert", "setdefault", "update"}
)

#: Maximum body passes; two suffice for loop-carried flow, the third
#: only confirms stability on pathological bodies.
_MAX_PASSES = 3

PARAM = "param:"
FIELD = "field:"
SOURCE = "source:"


@dataclass
class FlowResult:
    """Outcome of evaluating one function body."""

    #: Labels reaching any ``return`` (or ``yield``) expression.
    returns: Set[str] = field(default_factory=set)
    #: Final label environment, by local name.
    env: Dict[str, Set[str]] = field(default_factory=dict)

    def reaching(self, names: Sequence[str]) -> Set[str]:
        """Union of labels reaching any of the named locals."""
        out: Set[str] = set()
        for name in names:
            out |= self.env.get(name, set())
        return out


@dataclass
class FunctionSummary:
    """Interprocedural digest of one function."""

    qualname: str
    #: Parameter names whose value reaches the return.
    params_to_return: Set[str] = field(default_factory=set)
    #: Taint categories reaching the return.
    sources_to_return: Set[str] = field(default_factory=set)


def analyze_function(
    project: "Project",
    info: FunctionInfo,
    seed_params: bool = True,
    seed_fields: bool = False,
    track_sources: bool = False,
) -> FlowResult:
    """Evaluate one function body into a :class:`FlowResult`."""
    return _Evaluator(project, info, seed_params, seed_fields, track_sources).run()


def expression_labels(
    project: "Project",
    info: FunctionInfo,
    expr: ast.expr,
    seed_params: bool = True,
    seed_fields: bool = False,
    track_sources: bool = False,
) -> Set[str]:
    """Labels reaching one expression *inside* ``info``'s body.

    Runs the body to its flow fixpoint first, then evaluates ``expr``
    in the final environment — the way the key-completeness rules ask
    "what reaches this specific dict entry / f-string?" when the key
    is built inline rather than bound to a local.
    """
    evaluator = _Evaluator(project, info, seed_params, seed_fields, track_sources)
    evaluator.run()
    return evaluator._eval(expr)


class SummaryIndex:
    """Memoized per-function summaries with a recursion guard."""

    def __init__(self, project: "Project") -> None:
        self._project = project
        self._cache: Dict[str, FunctionSummary] = {}
        self._in_progress: Set[str] = set()
        self._recursed: Set[str] = set()

    def summary(self, qualname: str) -> Optional[FunctionSummary]:
        """The summary for a project function, or ``None`` if unknown.

        Recursive cycles see the (empty) partial summary of the
        function being computed; once the outermost computation
        finishes, members of a cycle are recomputed until stable so
        mutual recursion still converges to the generous fixpoint.
        """
        if qualname in self._cache:
            return self._cache[qualname]
        info = self._project.symbols.function(qualname)
        if info is None:
            return None
        if qualname in self._in_progress:
            self._recursed.add(qualname)
            return FunctionSummary(qualname=qualname)
        self._in_progress.add(qualname)
        try:
            summary = self._compute(info)
            self._cache[qualname] = summary
            while qualname in self._recursed:
                self._recursed.discard(qualname)
                again = self._compute(info)
                if (
                    again.params_to_return == summary.params_to_return
                    and again.sources_to_return == summary.sources_to_return
                ):
                    break
                summary = again
                self._cache[qualname] = summary
        finally:
            self._in_progress.discard(qualname)
        return self._cache[qualname]

    def _compute(self, info: FunctionInfo) -> FunctionSummary:
        result = analyze_function(
            self._project, info, seed_params=True, track_sources=True
        )
        return FunctionSummary(
            qualname=info.qualname,
            params_to_return={
                label[len(PARAM):] for label in result.returns if label.startswith(PARAM)
            },
            sources_to_return={
                label[len(SOURCE):]
                for label in result.returns
                if label.startswith(SOURCE)
            },
        )


class _Evaluator:
    """One function body's label propagation (see module docstring)."""

    def __init__(
        self,
        project: "Project",
        info: FunctionInfo,
        seed_params: bool,
        seed_fields: bool,
        track_sources: bool,
    ) -> None:
        self.project = project
        self.info = info
        self.ctx = project.by_module[info.module]
        self.enclosing: Optional[ClassInfo] = project.symbols.class_of(info)
        self.seed_fields = seed_fields
        self.track_sources = track_sources
        self.returns: Set[str] = set()
        self.env: Dict[str, Set[str]] = {}
        if seed_params:
            for name in info.params:
                self.env[name] = {PARAM + name}

    def run(self) -> FlowResult:
        for _ in range(_MAX_PASSES):
            before = sum(len(labels) for labels in self.env.values()) + len(
                self.returns
            )
            self._exec(self.info.node.body)
            after = sum(len(labels) for labels in self.env.values()) + len(
                self.returns
            )
            if after == before:
                break
        return FlowResult(returns=self.returns, env=self.env)

    # -- statements --------------------------------------------------

    def _exec(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            labels = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, labels)
        elif isinstance(stmt, ast.AugAssign):
            self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.returns |= self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec(stmt.body)
            self._exec(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._eval(stmt.iter))
            self._exec(stmt.body)
            self._exec(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec(stmt.body)
            self._exec(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                labels = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, labels)
            self._exec(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec(stmt.body)
            for handler in stmt.handlers:
                self._exec(handler.body)
            self._exec(stmt.orelse)
            self._exec(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            self._container_mutation(stmt.value)
        # Nested defs/classes keep their own flow; imports, raises,
        # asserts and pass contribute nothing.

    def _container_mutation(self, expr: ast.expr) -> None:
        """``parts.append(x)``: argument labels flow into ``parts``."""
        if not isinstance(expr, ast.Call):
            return
        func = expr.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
        ):
            labels: Set[str] = set()
            for arg in expr.args:
                labels |= self._eval(arg)
            for keyword in expr.keywords:
                labels |= self._eval(keyword.value)
            if labels:
                self.env.setdefault(func.value.id, set()).update(labels)

    def _bind(self, target: ast.expr, labels: Set[str]) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(labels)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, labels)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # Writing through an attribute/element taints the base
            # object — ``record["key"] = spec`` makes record carry spec.
            base = target.value
            if isinstance(base, ast.Name):
                self.env.setdefault(base.id, set()).update(labels)

    # -- expressions -------------------------------------------------

    def _eval_all(self, exprs: Sequence[Optional[ast.expr]]) -> Set[str]:
        labels: Set[str] = set()
        for expr in exprs:
            if expr is not None:
                labels |= self._eval(expr)
        return labels

    def _eval(self, expr: ast.expr) -> Set[str]:
        if isinstance(expr, ast.Name):
            return set(self.env.get(expr.id, ()))
        if isinstance(expr, ast.Constant):
            return set()
        if isinstance(expr, ast.Attribute):
            if (
                self.seed_fields
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return {FIELD + expr.attr}
            return self._eval(expr.value)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.BinOp):
            return self._eval(expr.left) | self._eval(expr.right)
        if isinstance(expr, ast.BoolOp):
            return self._eval_all(expr.values)
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand)
        if isinstance(expr, ast.Compare):
            return self._eval(expr.left) | self._eval_all(expr.comparators)
        if isinstance(expr, ast.IfExp):
            return self._eval_all([expr.test, expr.body, expr.orelse])
        if isinstance(expr, ast.JoinedStr):
            return self._eval_all(expr.values)
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value) | (
                self._eval(expr.format_spec) if expr.format_spec is not None else set()
            )
        if isinstance(expr, ast.Subscript):
            return self._eval(expr.value) | self._eval(expr.slice)
        if isinstance(expr, ast.Slice):
            return self._eval_all([expr.lower, expr.upper, expr.step])
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return self._eval_all(expr.elts)
        if isinstance(expr, ast.Dict):
            return self._eval_all(list(expr.keys) + list(expr.values))
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value)
        if isinstance(expr, ast.Lambda):
            return set()
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._comprehension_bindings(expr.generators)
            return self._eval(expr.elt)
        if isinstance(expr, ast.DictComp):
            self._comprehension_bindings(expr.generators)
            return self._eval(expr.key) | self._eval(expr.value)
        if isinstance(expr, ast.NamedExpr):
            labels = self._eval(expr.value)
            self._bind(expr.target, labels)
            return labels
        if isinstance(expr, ast.Await):
            return self._eval(expr.value)
        if isinstance(expr, (ast.Yield, ast.YieldFrom)):
            if expr.value is not None:
                self.returns |= self._eval(expr.value)
            return set()
        # Anything exotic: union over child expressions, generously.
        return self._eval_all(
            [child for child in ast.iter_child_nodes(expr) if isinstance(child, ast.expr)]
        )

    def _comprehension_bindings(self, generators: Sequence[ast.comprehension]) -> None:
        for gen in generators:
            self._bind(gen.target, self._eval(gen.iter))
            for condition in gen.ifs:
                self._eval(condition)

    def _call(self, call: ast.Call) -> Set[str]:
        labels: Set[str] = set()
        dotted = self.ctx.qualname(call.func)
        if self.track_sources:
            category = source_category(dotted, call)
            if category is not None:
                labels.add(SOURCE + category)
        resolved = self.project.symbols.resolve_call(self.ctx, call, self.enclosing)
        summary = (
            self.project.summaries.summary(resolved.qualname)
            if resolved is not None
            else None
        )
        labels |= self._eval(call.func)
        if summary is None:
            # Unresolved (or unknown) callee: every argument could
            # plausibly reach the result.
            for arg in call.args:
                labels |= self._eval(arg)
            for keyword in call.keywords:
                labels |= self._eval(keyword.value)
            return labels
        assert resolved is not None
        flows = summary.params_to_return
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                labels |= self._eval(arg)
                continue
            name = resolved.params[index] if index < len(resolved.params) else None
            if name is None or name in flows:
                labels |= self._eval(arg)
        for keyword in call.keywords:
            if (
                keyword.arg is None
                or keyword.arg not in resolved.params
                or keyword.arg in flows
            ):
                labels |= self._eval(keyword.value)
        if self.track_sources:
            labels |= {SOURCE + category for category in summary.sources_to_return}
        return labels

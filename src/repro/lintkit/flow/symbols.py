"""Project symbol table: functions, classes and methods by qualname.

A *project qualname* is the defining module's dotted name plus the
lexical path to the definition: ``repro.pipeline.stages.routed_work``,
``repro.service.leases.LeaseManager.grant``.  One nesting level of
classes is indexed (methods); functions nested inside functions are
deliberately not — they cannot be called from elsewhere, so they never
matter for interprocedural questions.

Call resolution (:meth:`SymbolTable.resolve_call`) goes through the
module's import table (``keys.cache_key`` after ``from repro.pipeline
import keys`` resolves to ``repro.pipeline.keys.cache_key``) and the
``self.method(...)`` convention inside a class.  Anything it cannot
resolve — builtins, stdlib, attribute chains rooted in values — comes
back ``None``, and the dataflow layers treat those calls generously.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lintkit.context import ModuleContext


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    node: ast.FunctionDef
    #: Parameter names in declaration order, ``self``/``cls`` dropped.
    params: Tuple[str, ...]
    class_name: Optional[str] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One class definition with its methods and declared fields."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Annotated class-body names (dataclass fields), declaration order.
    fields: Tuple[str, ...] = ()


def _param_names(node: ast.FunctionDef, is_method: bool) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


def _declared_fields(cls: ast.ClassDef) -> Tuple[str, ...]:
    """Annotated class-body names — the dataclass field vocabulary.

    ``ClassVar`` annotations are skipped on the annotation's textual
    root; anything else annotated in the class body counts.
    """
    names: List[str] = []
    for stmt in cls.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        annotation = ast.unparse(stmt.annotation) if stmt.annotation else ""
        if annotation.split("[", 1)[0].rsplit(".", 1)[-1] == "ClassVar":
            continue
        names.append(stmt.target.id)
    return tuple(names)


class SymbolTable:
    """Every function/class/method of the project, by qualname."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    @classmethod
    def build(cls, contexts: Iterable[ModuleContext]) -> "SymbolTable":
        table = cls()
        for ctx in contexts:
            table._index_module(ctx)
        return table

    def _index_module(self, ctx: ModuleContext) -> None:
        tree = ctx.tree
        if not isinstance(tree, ast.Module):
            return
        for stmt in tree.body:
            if isinstance(stmt, ast.FunctionDef):
                self._add_function(ctx, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(ctx, stmt)

    def _add_function(
        self, ctx: ModuleContext, node: ast.FunctionDef, class_name: Optional[str]
    ) -> FunctionInfo:
        parts = [ctx.module] + ([class_name] if class_name else []) + [node.name]
        info = FunctionInfo(
            qualname=".".join(parts),
            module=ctx.module,
            path=ctx.path,
            node=node,
            params=_param_names(node, is_method=class_name is not None),
            class_name=class_name,
        )
        self.functions[info.qualname] = info
        return info

    def _add_class(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        info = ClassInfo(
            qualname=f"{ctx.module}.{node.name}",
            module=ctx.module,
            path=ctx.path,
            node=node,
            fields=_declared_fields(node),
        )
        for stmt in node.body:
            if isinstance(stmt, ast.FunctionDef):
                info.methods[stmt.name] = self._add_function(
                    ctx, stmt, class_name=node.name
                )
        self.classes[info.qualname] = info

    # -- lookup ------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def class_of(self, info: FunctionInfo) -> Optional[ClassInfo]:
        if info.class_name is None:
            return None
        return self.classes.get(f"{info.module}.{info.class_name}")

    def resolve_call(
        self,
        ctx: ModuleContext,
        call: ast.Call,
        enclosing_class: Optional[ClassInfo] = None,
    ) -> Optional[FunctionInfo]:
        """The project function a call refers to, or ``None``.

        Handles ``self.method(...)`` inside a class and plain/imported
        names (``cache_key(...)``, ``keys.cache_key(...)``).
        Constructor calls are deliberately *not* resolved: an instance
        carries everything its constructor consumed, so the dataflow
        layers treat them like any other unresolved call — generously,
        every argument flows into the result.
        """
        func = call.func
        if (
            enclosing_class is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return enclosing_class.methods.get(func.attr)
        name = ctx.qualname(func)
        if name is None or name in self.classes:
            return None
        info = self.functions.get(name)
        if info is not None:
            return info
        # A bare name with no import entry: a same-module definition.
        local = f"{ctx.module}.{name}"
        if local in self.classes:
            return None
        return self.functions.get(local)

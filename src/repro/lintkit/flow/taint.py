"""Taint-source vocabulary for the interprocedural determinism rules.

Two source categories exist, shared with the per-file determinism
rules (:mod:`repro.lintkit.rules.determinism`):

* ``wall-clock`` — any call in ``WALL_CLOCK_CALLS``;
* ``rng`` — the process-global PRNG surfaces: ``random.<fn>`` (except
  an explicitly *seeded* ``random.Random(seed)``) and
  ``numpy.random.<fn>`` (except a *seeded* seedable constructor).

:func:`source_category` classifies one call; the summary layer
propagates the categories through assignments, expressions and helper
calls, so ``REPRO111`` can ask "does this function's return value
derive from a clock or a global PRNG, however indirectly?".
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional

from repro.lintkit.rules.determinism import WALL_CLOCK_CALLS, _SEEDABLE_CONSTRUCTORS

#: The taint categories a value can carry.
WALL_CLOCK = "wall-clock"
RNG = "rng"
CATEGORIES: FrozenSet[str] = frozenset({WALL_CLOCK, RNG})


def source_category(dotted: Optional[str], call: ast.Call) -> Optional[str]:
    """The taint category a call introduces, or ``None``.

    ``dotted`` is the import-resolved name of the call target
    (``time.monotonic``, ``numpy.random.default_rng``); value-rooted
    calls arrive as ``None`` and introduce nothing themselves (taint
    on the *receiver* is the evaluator's business, not this table's).
    """
    if dotted is None:
        return None
    if dotted in WALL_CLOCK_CALLS:
        return WALL_CLOCK
    if dotted == "random.Random" or dotted in _SEEDABLE_CONSTRUCTORS:
        # Seeded constructions are deterministic; unseeded draw entropy.
        if not call.args and not call.keywords:
            return RNG
        return None
    if dotted.startswith("random.") or dotted.startswith("numpy.random."):
        return RNG
    return None


def describe(category: str) -> str:
    """Human phrasing for finding messages."""
    if category == WALL_CLOCK:
        return "the wall clock"
    return "a process-global PRNG"

"""Pluggable rule registry.

A rule is a class with an ``id`` (``REPROnnn``), a one-line ``title``,
an optional tuple of module ``scopes`` it applies to, and a
``check(ctx)`` generator yielding :class:`Finding` objects.  Rules
self-register at import time via the :func:`register` decorator; the
engine asks :func:`all_rules` for the active set, so adding a rule is
one new module in :mod:`repro.lintkit.rules` — no engine changes.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.lintkit.context import ModuleContext
from repro.lintkit.findings import Finding, normalize_snippet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lintkit.flow import Project


class Rule:
    """Base class every lint rule derives from."""

    #: Stable identifier (``REPROnnn``); baseline entries key on it.
    id: str = ""
    #: One-line summary shown by ``repro-lint --list-rules``.
    title: str = ""
    #: Module prefixes the rule applies to; ``None`` means every module.
    scopes: Optional[Tuple[str, ...]] = None
    #: Project rules need the whole-tree flow analysis (``--project``).
    requires_project: bool = False

    def applies_to(self, module: str) -> bool:
        if self.scopes is None:
            return True
        return any(
            module == scope or module.startswith(scope + ".") for scope in self.scopes
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.id,
            path=ctx.path,
            line=line,
            col=col,
            message=message,
            snippet=normalize_snippet(ctx.line(line)),
        )


class ProjectRule(Rule):
    """A rule over the whole project instead of one module.

    Project rules run only in ``--project`` mode: they see the
    :class:`~repro.lintkit.flow.Project` (symbol table, call graph,
    flow summaries) and may anchor findings in any analyzed file.  The
    per-file ``check`` is a no-op so a project rule in the default
    rule set never fires accidentally on single-file runs.
    """

    requires_project = True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    if not cls.id:
        raise ConfigurationError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ConfigurationError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (imports the built-ins)."""
    import repro.lintkit.rules  # noqa: F401  (registers the built-in rules)

    return [rule for _id, rule in sorted(_REGISTRY.items())]


def select_rules(select: Optional[Iterable[str]] = None) -> List[Rule]:
    """The active rule set, optionally narrowed to ``select`` ids."""
    rules = all_rules()
    if select is None:
        return rules
    wanted = set(select)
    unknown = wanted - {rule.id for rule in rules}
    if unknown:
        raise ConfigurationError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}"
        )
    return [rule for rule in rules if rule.id in wanted]

"""Built-in rule modules; importing this package registers them all."""

from repro.lintkit.rules import concurrency, cycles, determinism, obs

__all__ = ["concurrency", "cycles", "determinism", "obs"]

"""Built-in rule modules; importing this package registers them all."""

from repro.lintkit.rules import batch, concurrency, cycles, determinism, obs

__all__ = ["batch", "concurrency", "cycles", "determinism", "obs"]

"""Built-in rule modules; importing this package registers them all."""

from repro.lintkit.rules import (
    batch,
    concurrency,
    cycles,
    determinism,
    keyflow,
    lockflow,
    obs,
    taintflow,
)

__all__ = [
    "batch",
    "concurrency",
    "cycles",
    "determinism",
    "keyflow",
    "lockflow",
    "obs",
    "taintflow",
]

"""Batch-core rules (REPRO5xx).

The fragment→texel→cache hot path is vectorized end to end: raster
emits :class:`~repro.raster.fragments.FragmentBuffer` columns with
array passes, the trilinear filter translates whole columns at once,
and the LRU replay runs as chunked array phases.  A Python-level
``for``/``while`` loop over those columns reintroduces exactly the
per-fragment interpreter cost the batch core removed — silently, since
the result stays bit-identical.  These rules make that regression loud
inside the vectorized perimeter.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lintkit.context import ModuleContext
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register
from repro.raster.fragments import FragmentBuffer

#: Modules that must stay array-native (the batch perimeter).
VECTORIZED_SCOPES: Tuple[str, ...] = (
    "repro.raster.batch",
    "repro.texture.filtering",
    "repro.cache.stream",
    "repro.cache.batchlru",
    "repro.texture.pages",
    "repro.workloads.vt",
)

#: The per-fragment column names, taken from the buffer itself so the
#: rule tracks schema changes.
_COLUMN_NAMES = frozenset(FragmentBuffer.COLUMNS)


def _column_mention(node: ast.expr) -> Optional[str]:
    """Describe ``node`` if it names a FragmentBuffer column.

    Both spellings used by the batch modules are recognised: attribute
    access on a buffer (``fragments.u``) and string-keyed subscripts on
    a column dict (``piece["u"]``).
    """
    if isinstance(node, ast.Attribute) and node.attr in _COLUMN_NAMES:
        return f"`.{node.attr}`"
    if isinstance(node, ast.Subscript):
        key = node.slice
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and key.value in _COLUMN_NAMES
        ):
            return f'`["{key.value}"]`'
    return None


def _first_column_mention(node: ast.expr) -> Optional[str]:
    """First column reference anywhere inside an expression, if any."""
    for child in ast.walk(node):
        if isinstance(child, ast.expr):
            described = _column_mention(child)
            if described is not None:
                return described
    return None


@register
class FragmentColumnLoopRule(Rule):
    id = "REPRO501"
    title = "no Python loops over FragmentBuffer columns in the batch perimeter"
    scopes = VECTORIZED_SCOPES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            suspects = []
            if isinstance(node, ast.For):
                suspects.append(("for", node.iter))
            elif isinstance(node, ast.While):
                suspects.append(("while", node.test))
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                suspects.extend(("comprehension", gen.iter) for gen in node.generators)
            for kind, expr in suspects:
                described = _first_column_mention(expr)
                if described is None:
                    continue
                where = "condition" if kind == "while" else "iterable"
                yield self.finding(
                    ctx,
                    expr,
                    f"Python-level {kind} loop whose {where} touches the "
                    f"fragment column {described}; this path is vectorized — "
                    "express the work as whole-column array ops instead",
                )
                break

"""Concurrency-discipline rules (REPRO4xx) for the service layer.

The scheduler and its helpers are the only truly multi-threaded code
in the tree, and their locking convention is lexical: state shared
between dispatcher threads is mutated inside ``with self._lock:``
blocks.  REPRO402 machine-checks that convention — any attribute that
is *sometimes* mutated under a class's lock must *always* be, except
in ``__init__`` (no concurrent access yet) and in methods that declare
the caller-holds-the-lock convention (a ``*_locked`` name or a
docstring containing "holds the lock").
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lintkit.context import ModuleContext
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

#: Packages whose classes are exercised from multiple threads.
CONCURRENT_SCOPES: Tuple[str, ...] = ("repro.service",)

#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)


@register
class BareExceptRule(Rule):
    id = "REPRO401"
    title = "no bare `except:` in the service layer"
    scopes = CONCURRENT_SCOPES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` swallows KeyboardInterrupt/SystemExit and "
                    "hides worker crashes; catch `Exception` (or narrower)",
                )


def _self_attribute(node: ast.expr) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lock_context(item: ast.withitem) -> bool:
    """Whether a ``with`` item is ``self.<something lock-ish>``."""
    attr = _self_attribute(item.context_expr)
    return attr is not None and "lock" in attr.lower()


def _caller_holds_lock(method: ast.FunctionDef) -> bool:
    """Methods exempt by the documented caller-holds-the-lock convention."""
    if method.name.endswith("_locked"):
        return True
    doc = ast.get_docstring(method) or ""
    return "holds the lock" in doc.lower()


def _mutations(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(attr, node)`` for every ``self.X`` mutation under ``node``.

    Covers assignment (``self.x = ...``), augmented assignment,
    deletion, subscript stores (``self.x[k] = ...``, ``del self.x[k]``)
    and in-place container methods (``self.x.append(...)``).
    """
    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                yield from _mutation_targets(target, child)
        elif isinstance(child, ast.AugAssign):
            yield from _mutation_targets(child.target, child)
        elif isinstance(child, ast.AnnAssign) and child.value is not None:
            yield from _mutation_targets(child.target, child)
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                yield from _mutation_targets(target, child)
        elif isinstance(child, ast.Call):
            func = child.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
                attr = _self_attribute(func.value)
                if attr is not None:
                    yield attr, child


def _mutation_targets(target: ast.expr, node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    attr = _self_attribute(target)
    if attr is not None:
        yield attr, node
        return
    if isinstance(target, ast.Subscript):
        attr = _self_attribute(target.value)
        if attr is not None:
            yield attr, node
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _mutation_targets(element, node)


class _MethodScan:
    """Mutations of one method, split by lock protection."""

    def __init__(self, method: ast.FunctionDef) -> None:
        self.method = method
        self.locked: List[Tuple[str, ast.AST]] = []
        self.unlocked: List[Tuple[str, ast.AST]] = []
        self._scan(method)

    def _scan(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue  # nested scopes have their own discipline
            if isinstance(child, ast.With) and any(
                _is_lock_context(item) for item in child.items
            ):
                # Everything lexically under the lock counts as locked,
                # including nested for/if/with bodies.
                for statement in child.body:
                    self.locked.extend(_mutations(statement))
                continue
            self.unlocked.extend(_direct_mutations_shallow(child))
            self._scan(child)


def _direct_mutations_shallow(node: ast.AST) -> List[Tuple[str, ast.AST]]:
    """Mutations attributable to exactly this node (no recursion)."""
    out: List[Tuple[str, ast.AST]] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            out.extend(_mutation_targets(target, node))
    elif isinstance(node, ast.AugAssign):
        out.extend(_mutation_targets(node.target, node))
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        out.extend(_mutation_targets(node.target, node))
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            out.extend(_mutation_targets(target, node))
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            attr = _self_attribute(func.value)
            if attr is not None:
                out.append((attr, node))
    return out


@register
class LockDisciplineRule(Rule):
    id = "REPRO402"
    title = "lock-guarded attributes are never mutated outside the lock"
    scopes = CONCURRENT_SCOPES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: ModuleContext, cls: ast.ClassDef) -> Iterator[Finding]:
        methods = [
            stmt for stmt in cls.body if isinstance(stmt, ast.FunctionDef)
        ]
        scans: Dict[str, _MethodScan] = {m.name: _MethodScan(m) for m in methods}
        guarded: Set[str] = set()
        for scan in scans.values():
            guarded.update(attr for attr, _node in scan.locked)
        if not guarded:
            return
        for scan in scans.values():
            method = scan.method
            if method.name == "__init__" or _caller_holds_lock(method):
                continue
            for attr, site in scan.unlocked:
                if attr in guarded:
                    yield self.finding(
                        ctx,
                        site,
                        f"`self.{attr}` is mutated under `{cls.name}`'s lock "
                        f"elsewhere but written here without it; wrap the "
                        "mutation in the lock or document the caller-holds-"
                        "the-lock convention",
                    )

"""Cycle-accounting rules (REPRO2xx).

Cycle and latency quantities are logically integers (one unit == one
engine clock) even where the implementation stores them as floats.
Exact ``==``/``!=`` on derived float cycle values drifts the moment an
optimisation reassociates an addition, and true division silently
turns a cycle count into a fraction — both corrupt golden cycle counts
without failing loudly.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lintkit.context import ModuleContext
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register
from repro.lintkit.rules.determinism import DETERMINISTIC_SCOPES

#: Identifier fragments that mark a value as cycle/latency-valued.
_CYCLE_NAME = re.compile(
    r"(?:^|_)(?:cycle|cycles|latency|latencies|deadline)(?:$|_)|"
    r"^(?:finish|free_at|stall|busy)(?:$|_)"
)


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The rightmost identifier of a ``Name``/``Attribute`` chain."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def names_cycle_value(node: ast.expr) -> bool:
    """Whether ``node`` is named like a cycle/latency quantity."""
    name = _terminal_name(node)
    return bool(name and _CYCLE_NAME.search(name))


def _is_exempt_operand(node: ast.expr) -> bool:
    """Operands whose comparison can never be a float-drift bug."""
    return isinstance(node, ast.Constant) and isinstance(
        node.value, (str, bytes, bool, type(None))
    )


@register
class CycleEqualityRule(Rule):
    id = "REPRO201"
    title = "no float ==/!= on cycle or latency values"
    scopes = DETERMINISTIC_SCOPES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_exempt_operand(left) or _is_exempt_operand(right):
                    continue
                if names_cycle_value(left) or names_cycle_value(right):
                    yield self.finding(
                        ctx,
                        node,
                        "exact ==/!= on a cycle/latency value drifts under float "
                        "reassociation; compare integers or use an ordering test",
                    )
                    break


def _contains_true_division(node: ast.AST) -> bool:
    """Whether ``node`` contains a ``/``, not descending into lambdas."""
    if isinstance(node, ast.Lambda):
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    return any(_contains_true_division(child) for child in ast.iter_child_nodes(node))


@register
class CycleDivisionRule(Rule):
    id = "REPRO202"
    title = "no true division assigned into cycle-valued names"
    scopes = DETERMINISTIC_SCOPES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets = []
            value: Optional[ast.expr] = None
            divides = False
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
                value = node.value
                # ``x /= n``: the division is the operator, not the value.
                divides = isinstance(node, ast.AugAssign) and isinstance(
                    node.op, ast.Div
                )
            if not divides and (value is None or not _contains_true_division(value)):
                continue
            for target in targets:
                if isinstance(target, ast.expr) and names_cycle_value(target):
                    yield self.finding(
                        ctx,
                        node,
                        "true division assigned into a cycle-valued name makes "
                        "the count fractional; use // or account in texels/bytes",
                    )
                    break

"""Determinism rules (REPRO1xx).

The golden-value tests pin exact cycle counts; the simulation core
must therefore be a pure function of its inputs.  These rules forbid
the classic nondeterminism sources inside the hot packages: wall-clock
reads, global PRNG state, and iteration whose order depends on a
``set``'s hash layout.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lintkit.context import ModuleContext
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register

#: Packages whose results must be bit-exact across runs.  The VT page
#: table and workload driver join the core: the golden points pin the
#: whole residency trajectory, frame by frame.
DETERMINISTIC_SCOPES: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.cache",
    "repro.raster",
    "repro.texture.pages",
    "repro.workloads.vt",
)

#: Wall-clock reads; any of these makes a cycle count run-dependent.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Scopes where only *duration arithmetic* on the wall clock is banned:
#: the service layer legitimately stamps display timestamps with
#: ``time.time()``, but subtracting two of them measures a duration
#: that jumps with every NTP step — durations must be monotonic.
DURATION_SCOPES: Tuple[str, ...] = ("repro.service",)

#: Scopes that additionally require *seeded* numpy PRNGs: the
#: experiment framework's search driver must reproduce the same trial
#: sequence from an explicit seed, so global numpy.random state (or an
#: unseeded Generator) is banned there too.
SEEDED_PRNG_SCOPES: Tuple[str, ...] = DETERMINISTIC_SCOPES + ("repro.expfw",)

#: Clock sources that step under adjustment (unlike the monotonic family).
ADJUSTABLE_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random constructors that are deterministic *when seeded*.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
    }
)


def _in_scope(module: str, scopes: Tuple[str, ...]) -> bool:
    return any(
        module == scope or module.startswith(scope + ".") for scope in scopes
    )


@register
class WallClockRule(Rule):
    id = "REPRO101"
    title = (
        "no wall-clock reads in the deterministic core; no wall-clock "
        "duration arithmetic in the service layer"
    )
    scopes = DETERMINISTIC_SCOPES + DURATION_SCOPES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _in_scope(ctx.module, DETERMINISTIC_SCOPES):
            yield from self._check_core(ctx)
        elif _in_scope(ctx.module, DURATION_SCOPES):
            yield from self._check_durations(ctx)

    def _check_core(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualname(node.func)
            if name in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx,
                    node,
                    f"wall-clock read `{name}()` makes simulation output "
                    "run-dependent; derive times from the simulation clock",
                )

    def _check_durations(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Flag adjustable-clock reads used as arithmetic operands.

        ``time.time()`` alone (a display timestamp) is fine; the bug is
        ``time.time() - started`` — a duration that steps whenever the
        wall clock is adjusted.  Comparisons against deadlines built
        from wall time are the same bug in disguise, so comparison
        operands are flagged too.
        """
        for node in ast.walk(ctx.tree):
            operands = []
            if isinstance(node, ast.BinOp):
                operands = [node.left, node.right]
            elif isinstance(node, ast.AugAssign):
                operands = [node.value]
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
            for operand in operands:
                if not isinstance(operand, ast.Call):
                    continue
                name = ctx.qualname(operand.func)
                if name in ADJUSTABLE_CLOCK_CALLS:
                    yield self.finding(
                        ctx,
                        operand,
                        f"duration arithmetic on the adjustable clock "
                        f"`{name}()` steps with every clock adjustment; "
                        "use `time.monotonic()` for durations and keep "
                        "wall time for display timestamps only",
                    )


@register
class StdlibRandomRule(Rule):
    id = "REPRO102"
    title = "no global `random` module state in the deterministic core"
    scopes = DETERMINISTIC_SCOPES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualname(node.func)
            if name is None:
                continue
            if name == "random.Random":
                # A locally seeded Random(seed) instance is reproducible.
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node, "`random.Random()` without a seed is nondeterministic"
                    )
                continue
            if name.startswith("random."):
                yield self.finding(
                    ctx,
                    node,
                    f"`{name}()` uses the process-global PRNG; thread a seeded "
                    "generator through instead",
                )


@register
class NumpyRandomRule(Rule):
    id = "REPRO103"
    title = "no unseeded numpy.random in the deterministic core or expfw"
    scopes = SEEDED_PRNG_SCOPES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualname(node.func)
            if name is None or not name.startswith("numpy.random."):
                continue
            if name in _SEEDABLE_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx,
                        node,
                        f"`{name}()` without an explicit seed draws OS entropy",
                    )
                continue
            yield self.finding(
                ctx,
                node,
                f"`{name}()` mutates numpy's global PRNG state; use a seeded "
                "`numpy.random.default_rng(seed)` generator",
            )


def _set_expression(node: ast.expr) -> Optional[str]:
    """Describe ``node`` if iterating it depends on set hash order."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"`{func.id}(...)`"
    return None


#: Wrappers that preserve the (undefined) order of a set argument.
_ORDER_PRESERVING_WRAPPERS = frozenset({"enumerate", "list", "tuple", "iter", "reversed"})


@register
class SetIterationRule(Rule):
    id = "REPRO104"
    title = "no iteration-order dependence on sets in the deterministic core"
    scopes = DETERMINISTIC_SCOPES

    def _iter_target(self, node: ast.expr) -> Optional[str]:
        described = _set_expression(node)
        if described is not None:
            return described
        # One unwrap through order-preserving wrappers: list(set(...)).
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_PRESERVING_WRAPPERS
                and node.args
            ):
                inner = _set_expression(node.args[0])
                if inner is not None:
                    return f"{inner} (via `{func.id}`)"
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for target in iters:
                described = self._iter_target(target)
                if described is not None:
                    yield self.finding(
                        ctx,
                        target,
                        f"iterating {described} visits elements in hash order; "
                        "wrap it in `sorted(...)` to fix the order",
                    )

"""Key completeness: every result-affecting input must be keyed.

The repo's caching/replay layers all hinge on content-addressed keys:
the pipeline stage keys (``plan_key``/``replay_key``/``work_key``),
the job-service result key, and the expfw archive fingerprints.  A
knob that affects the result but is *not* folded into the key silently
serves stale entries — the classic "added a parameter, forgot to key
it" bug (PR 4 shipped exactly this shape for ``translator``).

These rules machine-check that invariant against the table below
(:data:`KEYED_COMPUTATIONS`).  Each entry names one key-building
function and, per input, either *requires* flow into the key
expression (possibly through helper calls, per the flow summaries) or
carries a **written exemption justification**.  Three failure modes
produce findings:

* a non-exempt parameter/field that does not reach the key
  (``REPRO601``/``602``/``603`` proper);
* a table entry pointing at a function that no longer exists
  (table rot — the mapping must move with the code);
* an exemption naming an input the function no longer has
  (stale justification).

Entries whose *module* is absent from the analyzed tree are skipped,
so fixture-sized projects don't trip over the real table.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, List, Mapping, Optional, Tuple

from repro.lintkit.findings import Finding
from repro.lintkit.registry import ProjectRule, register

# NOTE: repro.lintkit.flow is imported lazily inside the checks.  The
# flow package's taint vocabulary imports rules.determinism, which
# initializes this rules package — a module-level import back into
# flow here would re-enter flow.summaries mid-initialization.

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lintkit.flow import Project
    from repro.lintkit.flow.symbols import FunctionInfo


@dataclass(frozen=True)
class KeyedComputation:
    """One keyed function and the contract its inputs must meet."""

    rule: str
    #: Project qualname of the key-building function.
    function: str
    #: Local names holding the key; empty means the return value.
    key_variables: Tuple[str, ...] = ()
    #: Literal dict key whose value *is* the key, for record builders
    #: returning ``{"key": ..., ...}`` (checking the whole return dict
    #: would be vacuous — everything flows into it).
    key_dict_entry: Optional[str] = None
    #: Also require the enclosing class's dataclass fields.
    use_fields: bool = False
    #: input name -> why it is legitimately not part of the key.
    exempt: Mapping[str, str] = field(default_factory=dict)


#: The machine-checked mapping: every keyed computation in the repo.
#: Adding a result-affecting knob to one of these functions without
#: keying it (or exempting it here, with a reason) fails lint.
KEYED_COMPUTATIONS: Tuple[KeyedComputation, ...] = (
    KeyedComputation(
        rule="REPRO601",
        function="repro.pipeline.stages.routed_work",
        key_variables=("plan_key", "replay_key", "work_key"),
        exempt={
            "fragments": (
                "an explicit fragment-stream override disables caching "
                "entirely (the cacheable gate), so it never reaches a key"
            ),
        },
    ),
    KeyedComputation(
        rule="REPRO602",
        function="repro.service.jobs.JobSpec.result_key",
        use_fields=True,
        exempt={
            "kind": (
                "selects which key family is emitted; every branch keys "
                "its own result-affecting fields"
            ),
        },
    ),
    KeyedComputation(
        rule="REPRO603",
        function="repro.expfw.spec.ExperimentSpec.run_key",
    ),
    KeyedComputation(
        rule="REPRO603",
        function="repro.expfw.archive.run_record",
        key_dict_entry="key",
        exempt={
            "result": "the archived output, not an input to the computation",
        },
    ),
    KeyedComputation(
        rule="REPRO603",
        function="repro.expfw.archive.trial_record",
        key_dict_entry="key",
        exempt={
            "point": (
                "the pre-resolution form of payload; payload (which is "
                "keyed) is the resolved superset actually simulated"
            ),
            "seed": (
                "selects which points the search enumerates, not what one "
                "trial computes; recorded in the record body"
            ),
            "result": "the archived output, not an input to the computation",
            "spec": (
                "code identity is recorded in the record body fingerprint, "
                "not in the content address"
            ),
        },
    ),
)


def _module_prefix_present(project: "Project", qualname: str) -> bool:
    """Whether the entry's defining module is part of this analysis."""
    parts = qualname.split(".")
    return any(
        ".".join(parts[:cut]) in project.by_module for cut in range(len(parts), 0, -1)
    )


def _key_entry_expression(node: ast.FunctionDef, entry_name: str) -> Optional[ast.expr]:
    """The value of ``{"<entry_name>": <value>}`` in a returned dict."""
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Return) or not isinstance(stmt.value, ast.Dict):
            continue
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == entry_name
                and value is not None
            ):
                return value
    return None


class _KeyCompletenessRule(ProjectRule):
    """Shared driver; subclasses only narrow the table by rule id."""

    def check_project(self, project: "Project") -> Iterator[Finding]:
        for entry in KEYED_COMPUTATIONS:
            if entry.rule != self.id:
                continue
            yield from self._check_entry(project, entry)

    def _check_entry(
        self, project: "Project", entry: KeyedComputation
    ) -> Iterator[Finding]:
        info = project.symbols.function(entry.function)
        if info is None:
            if _module_prefix_present(project, entry.function):
                yield from self._table_rot(project, entry)
            return
        ctx = project.by_module[info.module]
        required, stale_exempt = self._inputs(project, info, entry)
        for name in stale_exempt:
            yield self.finding(
                ctx,
                info.node,
                f"KEYED_COMPUTATIONS exempts {name!r} on {entry.function}, "
                "which has no such parameter or field — drop or update the "
                "stale justification",
            )
        from repro.lintkit.flow.summaries import FIELD, PARAM

        reached = self._reached_labels(project, info, entry)
        if reached is None:
            yield self.finding(
                ctx,
                info.node,
                f"KEYED_COMPUTATIONS expects {entry.function} to build its "
                f"key in {self._target_description(entry)}, but no such "
                "expression exists — update the mapping table",
            )
            return
        for kind, name in required:
            label = (PARAM if kind == "parameter" else FIELD) + name
            if label not in reached:
                yield self.finding(
                    ctx,
                    info.node,
                    f"{kind} {name!r} of {entry.function} does not flow into "
                    f"{self._target_description(entry)} — key every "
                    "result-affecting input, or exempt it in "
                    "KEYED_COMPUTATIONS with a justification",
                )

    def _inputs(
        self, project: "Project", info: "FunctionInfo", entry: KeyedComputation
    ) -> Tuple[List[Tuple[str, str]], List[str]]:
        names = {name: "parameter" for name in info.params}
        if entry.use_fields:
            cls = project.symbols.class_of(info)
            if cls is not None:
                for field_name in cls.fields:
                    names.setdefault(field_name, "field")
        required = [
            (kind, name) for name, kind in names.items() if name not in entry.exempt
        ]
        stale = [name for name in entry.exempt if name not in names]
        return required, stale

    def _reached_labels(
        self, project: "Project", info: "FunctionInfo", entry: KeyedComputation
    ):
        from repro.lintkit.flow.summaries import analyze_function, expression_labels

        if entry.key_dict_entry is not None:
            expr = _key_entry_expression(info.node, entry.key_dict_entry)
            if expr is None:
                return None
            return expression_labels(
                project, info, expr, seed_fields=entry.use_fields
            )
        result = analyze_function(project, info, seed_fields=entry.use_fields)
        if entry.key_variables:
            missing = [
                name for name in entry.key_variables if name not in result.env
            ]
            if len(missing) == len(entry.key_variables):
                return None
            return result.reaching(entry.key_variables)
        return result.returns

    def _table_rot(
        self, project: "Project", entry: KeyedComputation
    ) -> Iterator[Finding]:
        parts = entry.function.split(".")
        for cut in range(len(parts), 0, -1):
            ctx = project.by_module.get(".".join(parts[:cut]))
            if ctx is not None:
                yield self.finding(
                    ctx,
                    ctx.tree,
                    f"KEYED_COMPUTATIONS names {entry.function}, which no "
                    "longer exists — the mapping table must move with the "
                    "code it protects",
                )
                return

    @staticmethod
    def _target_description(entry: KeyedComputation) -> str:
        if entry.key_dict_entry is not None:
            return f'the returned "{entry.key_dict_entry}" record entry'
        if entry.key_variables:
            return "/".join(entry.key_variables)
        return "the returned key"


@register
class PipelineKeyCompleteness(_KeyCompletenessRule):
    id = "REPRO601"
    title = (
        "every result-affecting routed_work parameter must flow into the "
        "plan/replay/work keys (or carry a written exemption)"
    )


@register
class JobResultKeyCompleteness(_KeyCompletenessRule):
    id = "REPRO602"
    title = (
        "every JobSpec field must flow into result_key (or carry a written "
        "exemption) — unkeyed knobs silently collide result-store entries"
    )


@register
class ArchiveKeyCompleteness(_KeyCompletenessRule):
    id = "REPRO603"
    title = (
        "expfw run/trial archive keys must fold in every result-affecting "
        "input (or carry a written exemption)"
    )

"""Flow-sensitive lock discipline for the service layer (REPRO411/412).

REPRO402 is syntactic: an attribute mutated under *some* ``with
self._lock:`` must always be.  These rules upgrade that in three ways:

* **locks are found by type, not name** — any attribute assigned a
  ``threading.Lock``/``RLock``/``Condition`` in ``__init__`` counts
  (``JobQueue._condition`` guards state but fails a name heuristic);
* **guarded attributes are inferred from majority use** — an attribute
  written after ``__init__`` whose accesses are *mostly* lock-held is
  presumed guarded; immutable config read both inside and outside the
  lock never qualifies (no post-init write);
* **lock context flows through private helpers** — a method whose
  every in-class call site is lock-held inherits the lock context, to
  a fixpoint, alongside the explicit ``*_locked`` suffix and
  "caller holds the lock" docstring conventions.

An access to a guarded attribute reachable outside the inferred lock
is then flagged: writes as ``REPRO411``, reads as ``REPRO412`` (a
racy read of scheduler state is how PR 7's reaper double-requeued
leases).  Thread-safe *sub-objects* (queues, stores) are naturally
exempt: calling their methods is a read of the attribute, and such
attributes are rebound at most in ``__init__`` — no post-init write,
never guarded.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.lintkit.findings import Finding
from repro.lintkit.registry import ProjectRule, register
from repro.lintkit.rules.concurrency import (
    CONCURRENT_SCOPES,
    _MUTATING_METHODS,
    _caller_holds_lock,
    _self_attribute,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lintkit.context import ModuleContext
    from repro.lintkit.flow import Project
    from repro.lintkit.flow.symbols import ClassInfo

#: Constructors whose instances serialize access to other attributes.
_LOCK_TYPES = frozenset(
    {"threading.Lock", "threading.RLock", "threading.Condition"}
)


@dataclass
class _Access:
    """One ``self.<attr>`` touch inside one method."""

    attr: str
    write: bool
    node: ast.AST
    method: str
    #: Lexically inside a ``with self.<lock>:`` block?
    locked: bool
    #: The lock attribute lexically held, when ``locked``.
    guard: Optional[str] = None


@dataclass
class _SelfCall:
    """One ``self.method(...)`` site, for lock-context inheritance."""

    callee: str
    caller: str
    locked: bool


def _lock_attributes(ctx: "ModuleContext", cls: ast.ClassDef) -> Set[str]:
    """Attributes holding a lock, by ``__init__`` assignment type."""
    init = next(
        (
            stmt
            for stmt in cls.body
            if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
        ),
        None,
    )
    locks: Set[str] = set()
    if init is None:
        return locks
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        dotted = ctx.qualname(node.value.func)
        if dotted not in _LOCK_TYPES:
            continue
        for target in node.targets:
            attr = _self_attribute(target)
            if attr is not None:
                locks.add(attr)
    return locks


class _MethodAccessScan:
    """Lexical lock-held classification of one method's accesses."""

    def __init__(
        self,
        method: ast.FunctionDef,
        lock_attrs: Set[str],
        method_names: Set[str],
    ) -> None:
        self.method = method
        self._locks = lock_attrs
        self._methods = method_names
        self.accesses: List[_Access] = []
        self.calls: List[_SelfCall] = []
        self._consumed: Set[int] = set()
        self._statements(method.body, locked=False, guard=None)

    def _statements(
        self, body: List[ast.stmt], locked: bool, guard: Optional[str]
    ) -> None:
        for stmt in body:
            self._node(stmt, locked, guard)

    def _node(self, node: ast.AST, locked: bool, guard: Optional[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes have their own discipline
        if isinstance(node, (ast.With, ast.AsyncWith)):
            held = guard
            now_locked = locked
            for item in node.items:
                attr = _self_attribute(item.context_expr)
                if attr is not None and (attr in self._locks or "lock" in attr.lower()):
                    now_locked, held = True, attr
                self._node(item.context_expr, locked, guard)
            self._statements(node.body, now_locked, held)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                self._target(target, locked, guard)
            if node.value is not None:
                self._node(node.value, locked, guard)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                self._target(target, locked, guard)
            return
        if isinstance(node, ast.Call):
            self._call(node, locked, guard)
            return
        if isinstance(node, ast.Attribute):
            self._attribute(node, locked, guard)
            return
        for child in ast.iter_child_nodes(node):
            self._node(child, locked, guard)

    def _target(self, target: ast.expr, locked: bool, guard: Optional[str]) -> None:
        """Assignment/deletion targets: ``self.x``, ``self.x[k]``,
        ``self.x.y`` and tuple unpacking all write through ``x``."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(element, locked, guard)
            return
        if isinstance(target, ast.Starred):
            self._target(target.value, locked, guard)
            return
        attr_node: Optional[ast.Attribute] = None
        if isinstance(target, ast.Attribute):
            attr_node = target if _self_attribute(target) else None
            if attr_node is None and isinstance(target.value, ast.Attribute):
                attr_node = target.value if _self_attribute(target.value) else None
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute) and _self_attribute(
                target.value
            ):
                attr_node = target.value
        if attr_node is not None:
            attr = _self_attribute(attr_node)
            assert attr is not None
            self._record(attr_node, attr, write=True, locked=locked, guard=guard)
            self._consumed.add(id(attr_node))
        # Anything else (locals, subscripts of locals) carries no
        # class state; still scan it for embedded self reads.
        for child in ast.iter_child_nodes(target):
            self._node(child, locked, guard)

    def _call(self, call: ast.Call, locked: bool, guard: Optional[str]) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            method_name = _self_attribute(func)
            if method_name is not None and method_name in self._methods:
                # self.helper(...): lock context may flow into the callee.
                self.calls.append(
                    _SelfCall(
                        callee=method_name, caller=self.method.name, locked=locked
                    )
                )
                self._consumed.add(id(func))
            elif func.attr in _MUTATING_METHODS:
                inner = _self_attribute(func.value)
                if inner is not None:
                    # self.attr.append(...): a write to the container.
                    self._record(func.value, inner, write=True, locked=locked, guard=guard)
                    self._consumed.add(id(func.value))
        for child in ast.iter_child_nodes(call):
            self._node(child, locked, guard)

    def _attribute(self, node: ast.Attribute, locked: bool, guard: Optional[str]) -> None:
        if id(node) not in self._consumed:
            attr = _self_attribute(node)
            if attr is not None and attr not in self._methods:
                write = isinstance(node.ctx, (ast.Store, ast.Del))
                self._record(node, attr, write=write, locked=locked, guard=guard)
        for child in ast.iter_child_nodes(node):
            self._node(child, locked, guard)

    def _record(
        self,
        node: ast.AST,
        attr: str,
        write: bool,
        locked: bool,
        guard: Optional[str],
    ) -> None:
        if attr in self._locks:
            return  # the lock itself is not guarded state
        self.accesses.append(
            _Access(
                attr=attr,
                write=write,
                node=node,
                method=self.method.name,
                locked=locked,
                guard=guard,
            )
        )


def _locked_method_fixpoint(
    methods: Dict[str, ast.FunctionDef], scans: List[_MethodAccessScan]
) -> Set[str]:
    """Methods whose whole body runs with the lock held.

    Seeds: the explicit conventions (``*_locked`` suffix, "holds the
    lock" docstring).  Growth: a private method is lock-held if it has
    in-class call sites and *every* one is lock-held — lexically, or
    inside an already lock-held method — iterated to a fixpoint.
    """
    held = {
        name
        for name, node in methods.items()
        if name != "__init__" and _caller_holds_lock(node)
    }
    sites: Dict[str, List[_SelfCall]] = {}
    for scan in scans:
        for call in scan.calls:
            sites.setdefault(call.callee, []).append(call)
    changed = True
    while changed:
        changed = False
        for name in methods:
            if name in held or not name.startswith("_") or name.startswith("__"):
                continue
            calls = sites.get(name)
            if calls and all(c.locked or c.caller in held for c in calls):
                held.add(name)
                changed = True
    return held


class _LockFlowRule(ProjectRule):
    """Shared inference; subclasses pick writes (411) or reads (412)."""

    scopes = CONCURRENT_SCOPES
    flag_writes = True

    def check_project(self, project: "Project") -> Iterator[Finding]:
        for cls in project.symbols.classes.values():
            if not self.applies_to(cls.module):
                continue
            yield from self._check_class(project, cls)

    def _check_class(self, project: "Project", cls: "ClassInfo") -> Iterator[Finding]:
        ctx = project.by_module[cls.module]
        lock_attrs = _lock_attributes(ctx, cls.node)
        if not lock_attrs:
            return
        methods = {
            stmt.name: stmt
            for stmt in cls.node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        scans = [
            _MethodAccessScan(node, lock_attrs, set(methods))
            for name, node in methods.items()
            if name != "__init__"
        ]
        held_methods = _locked_method_fixpoint(methods, scans)
        accesses = [access for scan in scans for access in scan.accesses]
        for access in accesses:
            if access.method in held_methods and not access.locked:
                access.locked = True  # inherited lock context
        guarded = self._guarded_attributes(accesses)
        for access in accesses:
            if access.attr not in guarded or access.locked:
                continue
            if access.write != self.flag_writes:
                continue
            guard, locked_count, total = guarded[access.attr]
            verb = "write to" if access.write else "read of"
            yield self.finding(
                ctx,
                access.node,
                f"{verb} `self.{access.attr}` outside `self.{guard}`, which "
                f"is inferred to guard it ({locked_count}/{total} accesses "
                f"in `{cls.node.name}` are lock-held); take the lock or "
                "document the caller-holds-the-lock convention",
            )

    @staticmethod
    def _guarded_attributes(
        accesses: List[_Access],
    ) -> Dict[str, Tuple[str, int, int]]:
        """attr -> (majority guard, locked count, total count).

        Guarded means: written at least once after ``__init__`` *and*
        lock-held accesses strictly outnumber unlocked ones.
        """
        by_attr: Dict[str, List[_Access]] = {}
        for access in accesses:
            by_attr.setdefault(access.attr, []).append(access)
        guarded: Dict[str, Tuple[str, int, int]] = {}
        for attr, touches in by_attr.items():
            if not any(t.write for t in touches):
                continue
            locked = [t for t in touches if t.locked]
            if len(locked) <= len(touches) - len(locked):
                continue
            guards = Counter(t.guard for t in locked if t.guard is not None)
            guard = guards.most_common(1)[0][0] if guards else "_lock"
            guarded[attr] = (guard, len(locked), len(touches))
        return guarded


@register
class UnlockedWriteRule(_LockFlowRule):
    id = "REPRO411"
    title = (
        "no writes to lock-guarded service state outside the inferred lock "
        "(flow-sensitive upgrade of REPRO402)"
    )
    flag_writes = True


@register
class UnlockedReadRule(_LockFlowRule):
    id = "REPRO412"
    title = (
        "no reads of lock-guarded service state outside the inferred lock — "
        "racy reads double-dispatch and double-requeue"
    )
    flag_writes = False

"""Observability-hygiene rules (REPRO3xx).

The instrumentation contract (DESIGN.md §8): hot paths hold one
recorder reference resolved *once* — either the null object or a live
recorder — so an event site costs a single attribute check, and every
metric name follows the ``dotted.lower`` grammar so ``/metrics`` dumps
group and diff cleanly.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List

from repro.lintkit.context import ModuleContext
from repro.lintkit.findings import Finding
from repro.lintkit.registry import Rule, register
from repro.lintkit.rules.determinism import DETERMINISTIC_SCOPES

#: Qualified names of the process-wide recorder accessor.
_RECORDER_ACCESSORS = frozenset(
    {
        "repro.obs.recorder",
        "repro.obs.recorder.recorder",
    }
)

#: Metric name grammar: at least two dotted lowercase segments.
METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Characters allowed in the literal fragments of an f-string name.
_FSTRING_FRAGMENT = re.compile(r"^[a-z0-9_.]*$")

#: Registry methods whose first argument is a metric name.
_INSTRUMENT_METHODS = frozenset({"counter", "gauge", "histogram"})


def _is_recorder_accessor(ctx: ModuleContext, node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = ctx.qualname(node.func)
    return name in _RECORDER_ACCESSORS


@register
class RecorderAccessRule(Rule):
    id = "REPRO301"
    title = "hot paths resolve the recorder once (null-object pattern)"
    scopes = DETERMINISTIC_SCOPES

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self._walk(ctx, ctx.tree, loop_depth=0)

    def _walk(
        self, ctx: ModuleContext, node: ast.AST, loop_depth: int
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            # Chained use: ``obs.recorder().span(...)`` re-resolves the
            # global per event instead of dispatching on a held
            # null-object/None reference.
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and _is_recorder_accessor(ctx, child.func.value)
            ):
                yield self.finding(
                    ctx,
                    child,
                    "recorder accessor chained per call site; resolve the "
                    "recorder once outside the hot path and dispatch on the "
                    "held reference (NULL_RECORDER / None)",
                )
            elif _is_recorder_accessor(ctx, child) and loop_depth > 0:
                yield self.finding(
                    ctx,
                    child,
                    "recorder accessor called inside a loop; hoist the lookup "
                    "out of the hot path",
                )
            deeper = loop_depth + (1 if isinstance(child, (ast.For, ast.While)) else 0)
            yield from self._walk(ctx, child, deeper)


def _name_fragments(node: ast.expr) -> List[str]:
    """Literal fragments of a metric-name argument (may be empty)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.JoinedStr):
        return [
            value.value
            for value in node.values
            if isinstance(value, ast.Constant) and isinstance(value.value, str)
        ]
    return []


@register
class MetricNameRule(Rule):
    id = "REPRO302"
    title = "metric names follow the dotted.lower grammar"
    scopes = ("repro",)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _INSTRUMENT_METHODS:
                continue
            name_arg = node.args[0]
            if isinstance(name_arg, ast.Constant):
                if not isinstance(name_arg.value, str):
                    continue
                if not METRIC_NAME.match(name_arg.value):
                    yield self.finding(
                        ctx,
                        name_arg,
                        f"metric name {name_arg.value!r} does not match the "
                        "`dotted.lower` grammar (e.g. `cache.misses`)",
                    )
            elif isinstance(name_arg, ast.JoinedStr):
                for fragment in _name_fragments(name_arg):
                    if not _FSTRING_FRAGMENT.match(fragment):
                        yield self.finding(
                            ctx,
                            name_arg,
                            f"metric name fragment {fragment!r} contains "
                            "characters outside the `dotted.lower` grammar",
                        )
                        break

"""Interprocedural determinism taint (REPRO111).

REPRO101 catches a wall-clock or global-PRNG call *written inside* the
deterministic perimeter (``repro.sim``/``core``/``cache``/``raster``
and the deterministic texture/workload modules).  It cannot see the
laundered version: a helper *outside* the perimeter returns
``time.time()`` (or a ``random.random()``-derived value) and
deterministic code calls the helper.

This rule closes that hole with the flow summaries: for every call
from a perimeter function to a project function defined outside the
perimeter, if the callee's return value derives from a taint source —
directly or through further helpers, to a fixpoint — the *call site*
is flagged.  Calls to functions inside the perimeter are skipped
(REPRO101 already polices their bodies), as are unresolved calls
(stdlib and third-party surfaces are REPRO101's vocabulary problem).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lintkit.findings import Finding
from repro.lintkit.registry import ProjectRule, register
from repro.lintkit.rules.determinism import DETERMINISTIC_SCOPES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lintkit.flow import Project


def _in_perimeter(module: str) -> bool:
    return any(
        module == scope or module.startswith(scope + ".")
        for scope in DETERMINISTIC_SCOPES
    )


@register
class InterproceduralTaintRule(ProjectRule):
    id = "REPRO111"
    title = (
        "deterministic code must not call helpers whose return value "
        "derives from the wall clock or a process-global PRNG"
    )
    scopes = DETERMINISTIC_SCOPES

    def check_project(self, project: "Project") -> Iterator[Finding]:
        from repro.lintkit.flow.taint import describe

        symbols = project.symbols
        for info in symbols.functions.values():
            if not _in_perimeter(info.module):
                continue
            ctx = project.by_module[info.module]
            for site in project.callgraph.calls_from(info.qualname):
                if site.callee is None:
                    continue
                callee = symbols.function(site.callee)
                if callee is None or _in_perimeter(callee.module):
                    continue
                summary = project.summaries.summary(site.callee)
                if summary is None or not summary.sources_to_return:
                    continue
                sources = " and ".join(
                    describe(cat) for cat in sorted(summary.sources_to_return)
                )
                yield self.finding(
                    ctx,
                    site.node,
                    f"call to {site.callee} from deterministic code: its "
                    f"return value derives from {sources} (possibly through "
                    "further helpers); thread the value in as a parameter "
                    "instead",
                )

"""``repro.obs`` — the unified instrumentation layer.

Three cooperating pieces:

* :class:`MetricsRegistry` (:mod:`repro.obs.registry`) — always-on
  counters/gauges/histograms with labeled children.  The scheduler,
  the cache replay and the bus publish here; the service's
  ``/metrics`` endpoint and the CLI's ``--metrics-out`` dump it.
* span timers (:mod:`repro.obs.spans`) — nested wall-clock timers the
  pipeline stages run under.
* the event recorder (:mod:`repro.obs.recorder`) — **off by
  default**.  ``enable_tracing()`` swaps the no-op
  :data:`NULL_RECORDER` for an :class:`EventRecorder` that captures
  per-node busy/stall spans, distributor blocking and FIFO occupancy
  from the sim kernel, exportable as Chrome ``chrome://tracing`` JSON
  (``--trace-out``).  Simulation results are bit-identical with the
  recorder on or off; with it off, instrumented sites cost one
  ``is not None``/attribute check.

Typical use::

    from repro import obs

    rec = obs.enable_tracing()
    ...run experiments...
    rec.write_chrome_trace("trace.json")
    print(obs.registry().snapshot())
    obs.disable_tracing()
"""

from __future__ import annotations

from repro.obs.recorder import (
    NULL_RECORDER,
    EventRecorder,
    NullRecorder,
    disable_tracing,
    enable_tracing,
    recorder,
    set_recorder,
    tracing_enabled,
)
from repro.obs.registry import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.spans import Span, current_span, span

__all__ = [
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "EventRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "current_span",
    "disable_tracing",
    "enable_tracing",
    "recorder",
    "registry",
    "reset",
    "set_recorder",
    "span",
    "tracing_enabled",
]


def reset() -> None:
    """Test hook: drop all metrics and disable tracing."""
    registry().reset()
    disable_tracing()

"""Event recorder for the sim kernel, with Chrome-trace export.

The recorder is the opt-in half of the observability layer.  When
enabled (``repro.obs.enable_tracing()`` or the CLI's ``--trace-out``),
the sim kernel, the bounded FIFOs, the node timing model and the host
pipeline stages feed it timestamped records:

* **spans** — a named interval on a *track* (busy/stall per node,
  blocked time on the distributor, process lifetimes, host stages);
* **values** — a sampled series (FIFO occupancy at each put/get);
* **instants** — point events.

A track is a ``(process, thread)`` label pair — e.g. ``("sim",
"node-3")`` — which the Chrome exporter maps onto ``pid``/``tid``
integers plus the metadata events ``chrome://tracing`` uses to show
human names.  Sim timestamps are engine cycles written verbatim into
the trace's microsecond field; host timestamps are monotonic wall
microseconds on their own ``host`` process row.

When tracing is off the module-level :data:`NULL_RECORDER` stands in:
every method is a pass-through no-op, so instrumented code costs one
attribute check per event site and simulation results are bit-identical
either way.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Protocol, Tuple, Union

Track = Tuple[str, str]

#: The ``args`` payload attached to trace events.
EventArgs = Dict[str, object]


class RecorderLike(Protocol):
    """What instrumented code needs from a recorder.

    Both :class:`NullRecorder` and :class:`EventRecorder` satisfy this
    structurally; hot paths hold a ``RecorderLike`` (or ``None``) so the
    enabled/disabled decision is one attribute check, never an
    ``isinstance``.
    """

    @property
    def enabled(self) -> bool: ...

    def span(self, track: Track, name: str, start: float, end: float,
             args: Optional[EventArgs] = None) -> None: ...

    def instant(self, track: Track, name: str, ts: float,
                args: Optional[EventArgs] = None) -> None: ...

    def value(self, track: Track, name: str, ts: float, value: float) -> None: ...


class NullRecorder:
    """The disabled recorder: records nothing, costs (almost) nothing."""

    __slots__ = ()
    enabled = False

    def span(self, track: Track, name: str, start: float, end: float,
             args: Optional[EventArgs] = None) -> None:
        pass

    def instant(self, track: Track, name: str, ts: float,
                args: Optional[EventArgs] = None) -> None:
        pass

    def value(self, track: Track, name: str, ts: float, value: float) -> None:
        pass

    def __bool__(self) -> bool:
        return False


#: The shared disabled recorder (stateless, safe to reuse everywhere).
NULL_RECORDER = NullRecorder()


class EventRecorder:
    """Collects spans/values/instants and exports them.

    Events accumulate in Chrome trace-event form as they arrive (one
    dict append per event) while tiny running aggregates per
    ``(track, name)`` key make :meth:`summary` cheap afterwards.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self._meta: List[Dict[str, object]] = []
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}
        # (track, name) -> [count, total_dur, max_dur, max_end]
        self._span_aggregates: Dict[Tuple[Track, str], List[float]] = {}
        # (track, name) -> list of sampled values
        self._value_samples: Dict[Tuple[Track, str], List[float]] = {}

    # -- track bookkeeping -------------------------------------------

    def _ids(self, track: Track) -> Tuple[int, int]:
        process, thread = track
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
            self._meta.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "ts": 0, "args": {"name": process},
            })
        key = (pid, thread)
        tid = self._tids.get(key)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[key] = tid
            self._meta.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "ts": 0, "args": {"name": thread},
            })
        return pid, tid

    # -- recording ----------------------------------------------------

    def span(self, track: Track, name: str, start: float, end: float,
             args: Optional[EventArgs] = None) -> None:
        """Record a complete ``[start, end]`` interval on ``track``."""
        pid, tid = self._ids(track)
        duration = float(end) - float(start)
        event: Dict[str, object] = {
            "ph": "X", "name": name, "cat": track[0],
            "ts": float(start), "dur": duration,
            "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)
        aggregate = self._span_aggregates.get((track, name))
        if aggregate is None:
            aggregate = [0, 0.0, 0.0, float("-inf")]
            self._span_aggregates[(track, name)] = aggregate
        aggregate[0] += 1
        aggregate[1] += duration
        aggregate[2] = max(aggregate[2], duration)
        aggregate[3] = max(aggregate[3], float(end))

    def instant(self, track: Track, name: str, ts: float,
                args: Optional[EventArgs] = None) -> None:
        """Record a point event at ``ts`` on ``track``."""
        pid, tid = self._ids(track)
        event: Dict[str, object] = {
            "ph": "i", "name": name, "cat": track[0],
            "ts": float(ts), "pid": pid, "tid": tid, "s": "t",
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def value(self, track: Track, name: str, ts: float, value: float) -> None:
        """Record one sample of a counter series (FIFO occupancy)."""
        pid, tid = self._ids(track)
        self.events.append({
            "ph": "C", "name": name, "cat": track[0],
            "ts": float(ts), "pid": pid, "tid": tid,
            "args": {name: value},
        })
        self._value_samples.setdefault((track, name), []).append(float(value))

    # -- export -------------------------------------------------------

    def chrome_trace(self) -> Dict[str, object]:
        """The full run as a ``chrome://tracing`` JSON object."""
        return {
            "traceEvents": self._meta + self.events,
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: Union[str, "os.PathLike[str]"]) -> None:
        """Write :meth:`chrome_trace` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)

    # -- summaries ----------------------------------------------------

    def span_summary(self) -> Dict[str, Dict[str, float]]:
        """Per ``process/thread/name`` span totals."""
        out: Dict[str, Dict[str, float]] = {}
        for ((process, thread), name), agg in sorted(self._span_aggregates.items()):
            out[f"{process}/{thread}/{name}"] = {
                "count": agg[0],
                "total": agg[1],
                "max": agg[2],
                "last_end": agg[3],
            }
        return out

    def node_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-node busy/stall totals and utilization from sim spans."""
        nodes: Dict[str, Dict[str, float]] = {}
        for ((process, thread), name), agg in self._span_aggregates.items():
            if process != "sim" or not thread.startswith("node"):
                continue
            if name not in ("busy", "stall"):
                continue
            node = nodes.setdefault(
                thread, {"busy_cycles": 0.0, "stall_cycles": 0.0, "finish": 0.0}
            )
            node[f"{name}_cycles"] += agg[1]
            node["finish"] = max(node["finish"], agg[3])
        for node in nodes.values():
            finish = node["finish"]
            node["utilization"] = node["busy_cycles"] / finish if finish > 0 else 0.0
        return dict(sorted(nodes.items()))

    def value_summary(self) -> Dict[str, Dict[str, object]]:
        """Per-series sample stats plus a power-of-two histogram.

        This is where the FIFO occupancy histograms come from: each
        bounded FIFO samples its depth at every put/get, and the
        summary buckets those samples by ``<= 0, 1, 2, 4, 8, ...``.
        """
        out: Dict[str, Dict[str, object]] = {}
        for ((process, thread), name), samples in sorted(self._value_samples.items()):
            histogram: Dict[str, int] = {}
            for sample in samples:
                edge = 0
                while edge < sample:
                    edge = 1 if edge == 0 else edge * 2
                histogram[f"<={edge:g}"] = histogram.get(f"<={edge:g}", 0) + 1
            out[f"{process}/{thread}/{name}"] = {
                "count": len(samples),
                "min": min(samples),
                "max": max(samples),
                "mean": sum(samples) / len(samples),
                "histogram": dict(
                    sorted(histogram.items(), key=lambda kv: float(kv[0][2:]))
                ),
            }
        return out

    def summary(self) -> Dict[str, object]:
        """Everything the ``--metrics-out`` dump wants from the trace."""
        return {
            "events": len(self.events),
            "nodes": self.node_summary(),
            "spans": self.span_summary(),
            "values": self.value_summary(),
        }


# -- the process-wide current recorder --------------------------------

_current: RecorderLike = NULL_RECORDER


def recorder() -> RecorderLike:
    """The currently installed recorder (the null one unless enabled)."""
    return _current


def set_recorder(new: RecorderLike) -> RecorderLike:
    """Install ``new`` as the process recorder; returns the previous one."""
    global _current
    previous, _current = _current, new
    return previous


def enable_tracing() -> EventRecorder:
    """Install (and return) a fresh :class:`EventRecorder`."""
    fresh = EventRecorder()
    set_recorder(fresh)
    return fresh


def disable_tracing() -> None:
    """Put the null recorder back (the default state)."""
    set_recorder(NULL_RECORDER)


def tracing_enabled() -> bool:
    """True when an :class:`EventRecorder` is installed."""
    return _current.enabled

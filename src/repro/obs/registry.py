"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the always-on half of the observability layer (the
event recorder in :mod:`repro.obs.recorder` is the opt-in half).  Every
instrument is named, optionally carries labeled children (``metric
.labels(node="3")``), and serialises into a plain-dict snapshot that
the service's ``/metrics`` endpoint and the CLI's ``--metrics-out``
flag emit as JSON.

Design constraints, in order:

1. cheap — one lock acquisition per update, no allocation on the hot
   path once an instrument exists;
2. deterministic — snapshots sort names and labels so dumps diff
   cleanly (the golden-value CI job relies on this);
3. stdlib only.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, Optional, Sequence, Tuple, Type, TypeVar, cast

from repro.errors import ConfigurationError

#: Duration buckets (seconds) used by span timers by default.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Occupancy/size buckets used for FIFO depth style histograms.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)

LabelKey = Tuple[Tuple[str, str], ...]


M = TypeVar("M", bound="_Metric")


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


def _qualified(name: str, key: LabelKey) -> str:
    if not key:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


class _Metric:
    """Shared machinery: a named instrument with labeled children.

    The parent object doubles as the unlabeled instrument; ``labels``
    returns (creating on first use) a child keyed by the sorted label
    items.  Children are full instruments of the same kind.
    """

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._children: Dict[LabelKey, "_Metric"] = {}
        self._touched = False

    def labels(self: M, **labels: object) -> M:
        key = _label_key(labels)
        with self._lock:
            existing = self._children.get(key)
            if existing is not None:
                # Children are always spawned by type(self), so the
                # stored base-typed reference is really an M.
                return cast(M, existing)
            child = self._spawn()
            self._children[key] = child
            return child

    def _spawn(self: M) -> M:
        return type(self)(self.name, self.help)

    def _collect(self, out: Dict[str, object]) -> None:
        with self._lock:
            if self._touched:
                out[self.name] = self._value_snapshot()
            children = sorted(self._children.items())
        for key, child in children:
            with child._lock:
                if child._touched:
                    out[_qualified(self.name, key)] = child._value_snapshot()

    def _value_snapshot(self) -> object:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self.value += amount
            self._touched = True

    def _value_snapshot(self) -> float:
        return self.value


class Gauge(_Metric):
    """A value that can go up and down (queue depth, pool size)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value: float = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            self._touched = True

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount
            self._touched = True

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)

    def _value_snapshot(self) -> float:
        return self.value


class Histogram(_Metric):
    """Bucketed observations with count/sum/min/max.

    ``edges`` are upper bounds with ``value <= edge`` semantics (the
    Prometheus ``le`` convention); one overflow bucket catches the
    rest.  Snapshots render cumulative bucket counts keyed by edge.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        edges: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> None:
        super().__init__(name, help)
        if not edges or list(edges) != sorted(edges):
            raise ConfigurationError(
                f"histogram {name!r} needs sorted, non-empty bucket edges"
            )
        self.edges: Tuple[float, ...] = tuple(float(edge) for edge in edges)
        self._counts = [0] * (len(self.edges) + 1)  # +1 = overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def _spawn(self) -> "Histogram":
        return Histogram(self.name, self.help, self.edges)

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.edges, value)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._touched = True

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative ``le``-keyed bucket counts (plus ``+Inf``)."""
        with self._lock:
            return self._cumulative()

    def _cumulative(self) -> Dict[str, int]:
        # Caller holds self._lock.
        out: Dict[str, int] = {}
        running = 0
        for edge, count in zip(self.edges, self._counts):
            running += count
            out[f"{edge:g}"] = running
        out["+Inf"] = running + self._counts[-1]
        return out

    def _value_snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": self._cumulative(),
        }


class MetricsRegistry:
    """A named collection of metrics with JSON-friendly snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _instrument(self, cls: Type[M], name: str, factory: Callable[[], M]) -> M:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                created = factory()
                self._metrics[name] = created
                return created
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {existing.kind}"
                )
            return existing

    def counter(self, name: str, help: str = "") -> Counter:
        return self._instrument(Counter, name, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._instrument(Gauge, name, lambda: Gauge(name, help))

    def histogram(
        self,
        name: str,
        help: str = "",
        edges: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        return self._instrument(Histogram, name, lambda: Histogram(name, help, edges))

    def get(self, name: str) -> Optional[_Metric]:
        """The registered metric named ``name`` (None when absent)."""
        with self._lock:
            return self._metrics.get(name)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All touched instruments, grouped by kind, sorted by name."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for _name, metric in metrics:
            metric._collect(out[metric.kind + "s"])
        return out

    def reset(self) -> None:
        """Drop every metric (the object itself stays shared)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide default registry every subsystem publishes into.
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide :class:`MetricsRegistry`."""
    return _DEFAULT

"""Nested span timers for host-side (wall-clock) phases.

A span is a named ``with`` block: it knows its parent (spans nest per
thread), observes its duration into the default registry's
``span.<name>`` histogram, and — when tracing is enabled — also lands
on the recorder's ``("host", <thread>)`` track so pipeline stages show
up in the same ``chrome://tracing`` view as the simulated machine.

The pipeline's ``--timings`` plumbing routes through here (see
:mod:`repro.pipeline.stages`): a stage computation is just a span whose
name is ``stage.<stage>``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional, cast

from repro.obs.recorder import recorder
from repro.obs.registry import DEFAULT_TIME_BUCKETS, registry

_local = threading.local()


class Span:
    """One live (or finished) span; see :func:`span`."""

    __slots__ = ("name", "parent", "depth", "seconds")

    def __init__(self, name: str, parent: Optional["Span"]) -> None:
        self.name = name
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.seconds: Optional[float] = None  # set when the block exits

    @property
    def path(self) -> str:
        """Slash-joined names from the root span down to this one."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"


def current_span() -> Optional[Span]:
    """The innermost span open on this thread (None outside any)."""
    return cast(Optional[Span], getattr(_local, "top", None))


@contextmanager
def span(name: str, **args: object) -> Iterator[Span]:
    """Time a block as ``name``; nests under any enclosing span.

    Always observes the duration into the registry histogram
    ``span.<name>``; when tracing is enabled, additionally records a
    host-track trace event whose args carry the nesting ``path`` plus
    any keyword ``args``.
    """
    opened = Span(name, current_span())
    _local.top = opened
    started = time.perf_counter()
    try:
        yield opened
    finally:
        elapsed = time.perf_counter() - started
        opened.seconds = elapsed
        _local.top = opened.parent
        registry().histogram(
            f"span.{name}", edges=DEFAULT_TIME_BUCKETS
        ).observe(elapsed)
        active = recorder()
        if active.enabled:
            end_us = time.perf_counter() * 1e6
            active.span(
                ("host", threading.current_thread().name),
                name,
                end_us - elapsed * 1e6,
                end_us,
                args={"path": opened.path, **args} if args else {"path": opened.path},
            )

"""Staged experiment pipeline with a memoized artifact store.

Every figure of the paper is a sweep over hundreds of (scene,
distribution, processors, FIFO, bus) points whose expensive prefixes —
scene generation, rasterisation, routing, cache replay — repeat across
points.  This package makes the pipeline explicit: each stage produces
an artifact with a deterministic content-identity key, stored in an
in-memory LRU with an optional disk tier (``REPRO_ARTIFACT_DIR``)
shared across sweep points and worker processes.

Public surface::

    from repro import pipeline

    scene = pipeline.scene_artifact("truc640", 0.25)   # stage 1
    frags = pipeline.fragments_artifact(scene)          # stage 2
    work = pipeline.routed_work(scene, distribution)    # stages 3-5

    pipeline.stats()        # {stage: counters} snapshot
    pipeline.render_stats(pipeline.stats())  # printable table
    pipeline.reset()        # drop memory entries + counters (tests)
    pipeline.configure(disk_dir=...)         # attach/replace the store

``repro.core.routing.build_routed_work`` and
``repro.workloads.scenes.build_scene`` route through these stages, so
existing call sites inherit the memoization without change.
"""

from __future__ import annotations

from typing import Dict

from repro.pipeline.stages import (
    fragments_artifact,
    routed_work,
    scene_artifact,
    stage_timer,
)
from repro.pipeline.stats import StageStats, render_stats
from repro.pipeline.store import (
    ARTIFACT_DIR_ENV_VAR,
    ARTIFACT_ENTRIES_ENV_VAR,
    ArtifactStore,
    configure,
    ensure_shared_store,
    store,
)

__all__ = [
    "ARTIFACT_DIR_ENV_VAR",
    "ARTIFACT_ENTRIES_ENV_VAR",
    "ArtifactStore",
    "StageStats",
    "configure",
    "ensure_shared_store",
    "fragments_artifact",
    "render_stats",
    "reset",
    "routed_work",
    "scene_artifact",
    "stage_timer",
    "stats",
    "store",
]


def stats() -> Dict[str, Dict[str, float]]:
    """Snapshot of per-stage counters (see :class:`StageStats`)."""
    return store().stats()


def reset() -> None:
    """Drop every in-memory artifact and all counters (disk untouched)."""
    store().clear()

"""Deterministic cache keys for pipeline artifacts.

An artifact's identity is the content identity of everything that went
into computing it: the scene (spec fingerprint + scale), the stage's
own configuration (distribution, cache geometry, texture layout,
routing mode, ...), and nothing else.  Keys are plain strings so they
are printable, diffable and stable across processes — two workers that
derive the same key are by construction computing the same artifact.
"""

from __future__ import annotations

import hashlib
from typing import Optional


def fingerprint(text: str) -> str:
    """Short stable digest of an arbitrary description string."""
    return hashlib.sha1(text.encode("utf-8")).hexdigest()[:16]


def spec_fingerprint(spec) -> str:
    """Digest of a frozen dataclass spec (``repr`` is deterministic)."""
    return fingerprint(repr(spec))


def scene_key(spec, scale: float) -> str:
    """Identity of a generated scene: name, scale and full spec."""
    return f"{spec.name}@{scale:g}#{spec_fingerprint(spec)}"


def distribution_key(distribution) -> str:
    """Identity of a distribution (delegates to ``fingerprint()``)."""
    return distribution.fingerprint()


def cache_key(cache_spec, cache_config) -> Optional[str]:
    """Identity of a cache model spec, or None when not keyable.

    Prebuilt model objects carry mutable replay state, so work computed
    against them is never cached.
    """
    if not isinstance(cache_spec, str):
        return None
    if cache_config is None:
        return cache_spec
    return f"{cache_spec}#{spec_fingerprint(cache_config)}"


def translator_key(translator) -> Optional[str]:
    """Identity of a line-address translator (``"direct"`` when absent).

    A translator must expose a ``cache_key()`` describing its *current*
    mapping (the virtual-texturing page table does); anything without
    one is treated as stateful and makes the replay uncacheable.
    """
    if translator is None:
        return "direct"
    key = getattr(translator, "cache_key", None)
    if key is None:
        return None
    return str(key())


def layout_key(scene, layout) -> Optional[str]:
    """Identity of a texture-memory layout *for this scene's textures*.

    ``None`` (the scene's own block-linear layout) maps to ``default``.
    An explicit layout is keyed by its geometry knobs; it must have
    been built over ``scene.textures`` (which is how every caller
    constructs one — a layout over foreign textures would be
    meaningless for the scene's fragment stream anyway).
    """
    if layout is None:
        return "default"
    block_shape = getattr(layout, "block_shape", None)
    bytes_per_texel = getattr(layout, "bytes_per_texel", None)
    if block_shape is None or bytes_per_texel is None:
        return None
    return f"block{block_shape[0]}x{block_shape[1]}/b{bytes_per_texel}"

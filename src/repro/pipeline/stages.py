"""The staged execution graph: scene → fragments → routing → replay → work.

Each stage function returns its artifact, consulting the process-wide
:class:`~repro.pipeline.store.ArtifactStore` first.  Stage keys are
deterministic content identities (:mod:`repro.pipeline.keys`), so
hundreds of sweep points that share a prefix — every Figure-7 point of
one scene shares the scene and its rasterisation; every FIFO size of
one machine shares the whole routed work — compute that prefix once.

Inputs that have no content identity (hand-built scenes, prebuilt
cache model objects, fragment-stream overrides) fall back to direct
computation: correctness never depends on the cache, only speed.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Optional

from repro.obs.spans import span
from repro.pipeline import keys
from repro.pipeline.store import store


def _timed(stage: str, compute):
    """Run an uncacheable stage computation, attributing its wall time."""
    with stage_timer(stage):
        return compute()


@contextmanager
def stage_timer(stage: str):
    """Attribute a ``with`` block's wall time to ``stage`` (e.g. timing).

    The block runs under an obs span named ``stage.<stage>`` — so it
    lands in the ``span.stage.<stage>`` registry histogram and, when
    tracing is enabled, on the host track of the Chrome trace — and its
    duration still feeds the ``--timings`` table via the artifact
    store's per-stage counters.
    """
    started = time.perf_counter()
    with span(f"stage.{stage}"):
        try:
            yield
        finally:
            store().record_compute(stage, time.perf_counter() - started)


def scene_artifact(name: str, scale: float):
    """Stage 1: a generated benchmark scene, by (name, scale, spec) key."""
    from repro.workloads.scenes import SCENE_SPECS

    spec = SCENE_SPECS[name]
    key = keys.scene_key(spec, scale)

    def compute():
        from repro.workloads.generator import generate_scene

        return generate_scene(spec, scale=scale)

    return store().get_or_compute("scene", key, compute)


def fragments_artifact(scene):
    """Stage 2: the scene's rasterised fragment stream.

    The scene object's own lazy memo is the fastest tier; the store
    adds cross-object (and, with a disk dir, cross-process) reuse for
    scenes that carry an ``artifact_key``.
    """
    s = store()
    if scene._fragments is not None:
        stats = s.stage_stats("fragments")
        stats.calls += 1
        stats.memory_hits += 1
        return scene._fragments
    key = getattr(scene, "artifact_key", None)
    if key is None:
        return _timed("fragments", scene.fragments)
    value = s.get_or_compute("fragments", key, scene.fragments)
    scene._fragments = value
    return value


def routed_work(
    scene,
    distribution,
    cache_spec="lru",
    cache_config=None,
    setup_cycles: int = 25,
    chunk_size: Optional[int] = None,
    layout=None,
    route_by: str = "bbox",
    fragments=None,
    translator=None,
):
    """Stages 3-5: routing plan, cache replay, assembled per-node work.

    The plan is keyed without the cache (an oracle-vs-bbox routing
    contrast shares its replay) and the replay is keyed without the
    routing mode or setup cost (a setup sweep shares its replay); the
    assembled :class:`~repro.core.routing.RoutedWork` is memoized in
    memory only, since it is cheap to reassemble from its parents.
    ``translator`` (a virtual-texturing page table) joins the replay
    key through its current-mapping ``cache_key()``, so a memoized
    replay can never leak across residency states.
    """
    from repro.core import routing

    scene_id = getattr(scene, "artifact_key", None)
    cache_part = keys.cache_key(cache_spec, cache_config)
    layout_part = keys.layout_key(scene, layout)
    translator_part = keys.translator_key(translator)
    cacheable = (
        scene_id is not None
        and fragments is None
        and cache_part is not None
        and layout_part is not None
        and translator_part is not None
    )

    if not cacheable:
        frags = fragments if fragments is not None else fragments_artifact(scene)
        plan = _timed(
            "routing",
            lambda: routing.compute_routing_plan(scene, distribution, frags, route_by),
        )
        replay = _timed(
            "replay",
            lambda: routing.compute_replay(
                scene,
                distribution,
                frags,
                cache_spec,
                cache_config,
                layout,
                chunk_size,
                translator=translator,
            ),
        )
        return routing.assemble_routed_work(plan, replay, setup_cycles)

    s = store()
    dist_part = keys.distribution_key(distribution)
    plan_key = f"{scene_id}/{dist_part}/{route_by}"
    replay_key = (
        f"{scene_id}/{dist_part}/{cache_part}/{layout_part}/chunk{chunk_size or 0}"
    )
    if translator_part != "direct":
        replay_key += f"/{translator_part}"
    work_key = f"{plan_key}|{replay_key}|setup{setup_cycles}"

    def assemble():
        plan = s.get_or_compute(
            "routing",
            plan_key,
            lambda: routing.compute_routing_plan(
                scene, distribution, fragments_artifact(scene), route_by
            ),
        )
        replay = s.get_or_compute(
            "replay",
            replay_key,
            lambda: routing.compute_replay(
                scene,
                distribution,
                fragments_artifact(scene),
                cache_spec,
                cache_config,
                layout,
                chunk_size,
                translator=translator,
            ),
        )
        return routing.assemble_routed_work(plan, replay, setup_cycles)

    return s.get_or_compute("routed", work_key, assemble, disk=False)

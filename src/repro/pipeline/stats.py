"""Per-stage instrumentation for the staged experiment pipeline.

Every artifact stage (scene, fragments, routing, replay, routed work)
and the timing model record what they did here: how often they ran,
how often a memory or disk artifact satisfied the request instead, how
long the real computations took, and how many bytes the disk tier has
absorbed.  ``repro.pipeline.stats()`` snapshots these counters and the
``--timings`` CLI flag renders them, so a sweep's cost structure is
always one flag away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class StageStats:
    """Counters for one pipeline stage."""

    #: Artifact requests (or, for ``timing``, model executions).
    calls: int = 0
    #: Requests satisfied by the in-memory LRU.
    memory_hits: int = 0
    #: Requests satisfied by a ``REPRO_ARTIFACT_DIR`` pickle.
    disk_hits: int = 0
    #: Requests that had to run the stage computation.
    misses: int = 0
    #: Wall-clock seconds spent inside the stage computation.
    compute_seconds: float = 0.0
    #: Wall-clock seconds spent loading artifacts from disk.
    load_seconds: float = 0.0
    #: Serialized bytes this stage has written to the disk tier.
    stored_bytes: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "compute_seconds": self.compute_seconds,
            "load_seconds": self.load_seconds,
            "stored_bytes": self.stored_bytes,
        }


@dataclass
class PipelineStats:
    """Per-stage counters, created on first touch of each stage."""

    stages: Dict[str, StageStats] = field(default_factory=dict)

    def stage(self, name: str) -> StageStats:
        if name not in self.stages:
            self.stages[name] = StageStats()
        return self.stages[name]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {name: stats.as_dict() for name, stats in sorted(self.stages.items())}

    def clear(self) -> None:
        self.stages.clear()


def render_stats(snapshot: Dict[str, Dict[str, float]]) -> str:
    """Plain-text table of a :meth:`PipelineStats.snapshot`."""
    headers = ["stage", "calls", "mem hits", "disk hits", "misses",
               "compute s", "load s", "stored KB"]
    rows = []
    for name, stats in snapshot.items():
        rows.append([
            name,
            str(stats["calls"]),
            str(stats["memory_hits"]),
            str(stats["disk_hits"]),
            str(stats["misses"]),
            f"{stats['compute_seconds']:.3f}",
            f"{stats['load_seconds']:.3f}",
            f"{stats['stored_bytes'] / 1024.0:.1f}",
        ])
    if not rows:
        return "pipeline: no stages have run"
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "pipeline stage timings\n" + "\n".join(lines)

"""Memoized artifact store: an in-memory LRU over an optional disk tier.

The store holds the products of pipeline stages keyed by deterministic
content identity (see :mod:`repro.pipeline.keys`).  Lookups walk two
tiers:

1. an in-process LRU bounded by entry count (``REPRO_ARTIFACT_ENTRIES``
   overrides the default), which is what repeated sweep points inside
   one process hit;
2. an optional directory of pickles named by key digest, enabled by
   pointing ``REPRO_ARTIFACT_DIR`` at a directory (or by
   :func:`repro.pipeline.configure`).  The directory is shared by
   every process that sees the same environment, which is how sweep
   workers hydrate stage prefixes instead of rebuilding scenes.

Disk writes are atomic (temp file + ``os.replace``) so concurrent
workers racing to produce the same artifact simply overwrite each
other with identical bytes; unreadable or truncated pickles are
treated as misses and recomputed.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.spans import span
from repro.pipeline.keys import fingerprint
from repro.pipeline.stats import PipelineStats, StageStats

#: Directory for the shared disk tier (unset = memory only).
ARTIFACT_DIR_ENV_VAR = "REPRO_ARTIFACT_DIR"
#: Override for the in-memory LRU entry bound.
ARTIFACT_ENTRIES_ENV_VAR = "REPRO_ARTIFACT_ENTRIES"
#: Default in-memory LRU entry bound.
DEFAULT_MAX_ENTRIES = 512


class ArtifactStore:
    """Two-tier (memory LRU + disk) store for pipeline artifacts."""

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        disk_dir: Optional[os.PathLike] = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigurationError(f"store needs >= 1 entry, got {max_entries}")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._lock = threading.RLock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        #: Keys whose values must never be spilled to disk.
        self._memory_only: set = set()
        self._stats = PipelineStats()

    # -- lookup ------------------------------------------------------

    def get_or_compute(
        self,
        stage: str,
        key: str,
        compute: Callable[[], object],
        disk: bool = True,
    ) -> object:
        """Return the artifact for ``stage``/``key``, computing at most once.

        ``disk=False`` keeps the artifact out of the disk tier (used
        for cheap-to-assemble products that are large to serialize).
        """
        full_key = f"{stage}/{key}"
        with self._lock:
            stats = self._stats.stage(stage)
            stats.calls += 1
            if full_key in self._entries:
                self._entries.move_to_end(full_key)
                stats.memory_hits += 1
                return self._entries[full_key]

        if disk:
            loaded, value = self._disk_read(stage, key)
            if loaded:
                with self._lock:
                    self._stats.stage(stage).disk_hits += 1
                    self._remember(full_key, value, disk)
                return value

        started = time.perf_counter()
        with span(f"stage.{stage}", key=key):
            value = compute()
        elapsed = time.perf_counter() - started
        with self._lock:
            self._stats.stage(stage).misses += 1
            self._stats.stage(stage).compute_seconds += elapsed
            self._remember(full_key, value, disk)
        if disk:
            self._disk_write(stage, key, value)
        return value

    def peek(self, stage: str, key: str) -> Tuple[bool, object]:
        """Look up ``stage``/``key`` without computing: ``(found, value)``.

        Walks both tiers like :meth:`get_or_compute` (a disk hit is
        promoted into memory) but never runs a computation; the miss is
        recorded and ``(False, None)`` returned.  Used by layers that
        populate the store explicitly with :meth:`put` — e.g. the
        experiment job service's content-addressed result store.
        """
        full_key = f"{stage}/{key}"
        with self._lock:
            stats = self._stats.stage(stage)
            stats.calls += 1
            if full_key in self._entries:
                self._entries.move_to_end(full_key)
                stats.memory_hits += 1
                return True, self._entries[full_key]
        loaded, value = self._disk_read(stage, key)
        if loaded:
            with self._lock:
                self._stats.stage(stage).disk_hits += 1
                self._remember(full_key, value, disk=True)
            return True, value
        with self._lock:
            self._stats.stage(stage).misses += 1
        return False, None

    def put(self, stage: str, key: str, value: object, disk: bool = True) -> None:
        """Store a value computed elsewhere under ``stage``/``key``."""
        full_key = f"{stage}/{key}"
        with self._lock:
            self._remember(full_key, value, disk)
        if disk:
            self._disk_write(stage, key, value)

    def contains(self, stage: str, key: str) -> bool:
        """True when the artifact is resident in the memory tier."""
        with self._lock:
            return f"{stage}/{key}" in self._entries

    def _remember(self, full_key: str, value: object, disk: bool) -> None:
        self._entries[full_key] = value
        self._entries.move_to_end(full_key)
        if not disk:
            self._memory_only.add(full_key)
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._memory_only.discard(evicted)

    # -- disk tier ---------------------------------------------------

    def _disk_path(self, stage: str, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / stage / f"{fingerprint(key)}.pkl"

    def _disk_read(self, stage: str, key: str):
        path = self._disk_path(stage, key)
        if path is None or not path.exists():
            return False, None
        started = time.perf_counter()
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except Exception:
            # Truncated or stale pickle: treat as a miss and recompute.
            return False, None
        finally:
            with self._lock:
                self._stats.stage(stage).load_seconds += time.perf_counter() - started
        return True, value

    def _disk_write(self, stage: str, key: str, value: object) -> None:
        path = self._disk_path(stage, key)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            fd, temp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(temp_name, path)
            except BaseException:
                os.unlink(temp_name)
                raise
        except OSError:
            # A full or read-only disk degrades to memory-only caching.
            return
        with self._lock:
            self._stats.stage(stage).stored_bytes += len(payload)

    def attach_disk(self, disk_dir: os.PathLike) -> None:
        """Point the disk tier at ``disk_dir`` without dropping memory."""
        with self._lock:
            self.disk_dir = Path(disk_dir)

    def flush_to_disk(self) -> int:
        """Spill every disk-eligible memory entry; returns the count.

        Called before fanning out worker processes so they hydrate the
        parent's already-computed prefixes instead of rebuilding them.
        """
        if self.disk_dir is None:
            return 0
        with self._lock:
            items = [
                (full_key, value)
                for full_key, value in self._entries.items()
                if full_key not in self._memory_only
            ]
        written = 0
        for full_key, value in items:
            stage, _, key = full_key.partition("/")
            path = self._disk_path(stage, key)
            if path is not None and not path.exists():
                self._disk_write(stage, key, value)
                written += 1
        return written

    # -- instrumentation --------------------------------------------

    def stage_stats(self, stage: str) -> StageStats:
        with self._lock:
            return self._stats.stage(stage)

    def record_compute(self, stage: str, seconds: float) -> None:
        """Attribute uncached work (e.g. the timing model) to a stage."""
        with self._lock:
            stats = self._stats.stage(stage)
            stats.calls += 1
            stats.misses += 1
            stats.compute_seconds += seconds

    def stats(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            return self._stats.snapshot()

    def reset_stats(self) -> None:
        with self._lock:
            self._stats.clear()

    def clear(self) -> None:
        """Drop every memory entry and all counters (disk is untouched)."""
        with self._lock:
            self._entries.clear()
            self._memory_only.clear()
            self._stats.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# -- module-level singleton ------------------------------------------

_store: Optional[ArtifactStore] = None
_store_lock = threading.Lock()


def _entries_from_env() -> int:
    raw = os.environ.get(ARTIFACT_ENTRIES_ENV_VAR)
    if raw is None:
        return DEFAULT_MAX_ENTRIES
    try:
        entries = int(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{ARTIFACT_ENTRIES_ENV_VAR} must be an int, got {raw!r}"
        ) from exc
    if entries < 1:
        raise ConfigurationError(
            f"{ARTIFACT_ENTRIES_ENV_VAR} must be >= 1, got {entries}"
        )
    return entries


def store() -> ArtifactStore:
    """The process-wide artifact store (created from the env on first use)."""
    global _store
    if _store is None:
        with _store_lock:
            if _store is None:
                _store = ArtifactStore(
                    max_entries=_entries_from_env(),
                    disk_dir=os.environ.get(ARTIFACT_DIR_ENV_VAR),
                )
    return _store


def ensure_shared_store() -> Path:
    """Guarantee a disk tier exists and return its directory.

    If no ``REPRO_ARTIFACT_DIR`` is configured, a temporary directory
    is created, exported through the environment (so worker processes
    inherit it) and removed at interpreter exit.  Called by
    :func:`repro.analysis.parallel.run_tasks` before fanning out, so
    workers hydrate stage prefixes instead of rebuilding them.
    """
    current = store()
    if current.disk_dir is not None:
        return current.disk_dir
    import atexit
    import shutil

    temp = Path(tempfile.mkdtemp(prefix="repro-artifacts-"))
    os.environ[ARTIFACT_DIR_ENV_VAR] = str(temp)
    atexit.register(shutil.rmtree, temp, ignore_errors=True)
    current.attach_disk(temp)
    return temp


def configure(
    max_entries: Optional[int] = None,
    disk_dir: Optional[os.PathLike] = None,
) -> ArtifactStore:
    """Replace the process-wide store (e.g. to attach a disk directory).

    The previous store's memory entries are dropped; artifacts already
    on disk remain readable through the new store if it points at the
    same directory.
    """
    global _store
    with _store_lock:
        _store = ArtifactStore(
            max_entries=max_entries if max_entries is not None else _entries_from_env(),
            disk_dir=disk_dir,
        )
    return _store

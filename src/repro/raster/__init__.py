"""Rasterizer substrate.

Scan-converts the trace's screen-space triangles into fragments in the
same order a hardware engine would visit them (triangle order, then
scanline order), with the exact fill convention needed so that meshes
of adjacent triangles draw every covered pixel exactly once.
"""

from repro.raster.setup import EdgeEquations, triangle_setup
from repro.raster.fragments import FragmentBuffer
from repro.raster.raster import mip_level_for_scale, rasterize_scene, rasterize_triangle
from repro.raster.depth import depth_visible_mask, resolve_depth

__all__ = [
    "EdgeEquations",
    "triangle_setup",
    "FragmentBuffer",
    "rasterize_scene",
    "rasterize_triangle",
    "mip_level_for_scale",
    "depth_visible_mask",
    "resolve_depth",
]

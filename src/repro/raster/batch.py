"""Batch scan conversion: a whole scene's triangles in array passes.

:func:`repro.raster.raster.rasterize_triangle` walks one triangle's
bounding box at a time, so a scene pays per-triangle numpy overhead
hundreds of times over.  This module evaluates every triangle's edge
functions and barycentric interpolants over one flat candidate-pixel
array instead: a cheap per-triangle setup loop extracts the scalar
edge/interpolation constants (including the scalar mip-level selection,
whose ``math.log2`` must stay bit-identical), then candidate pixels of
many triangles are generated, tested, and interpolated together.

The arithmetic is elementwise-identical to the scalar rasterizer —
the same expressions evaluated with gathered per-triangle constants —
so the output :class:`FragmentBuffer` matches column for column, bit
for bit, in the same scanline-within-submission order.  Property tests
assert that equivalence under random triangle splits.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.geometry.scene import Scene
from repro.raster.fragments import FragmentBuffer

#: Candidate pixels (bounding-box area) processed per pass — bounds the
#: working set of the flat arrays regardless of scene size and keeps
#: the hot arrays cache-resident.
CHUNK_CANDIDATES = 1 << 18


class _SpecTable:
    """Per-triangle scalar constants, columnized for gathering."""

    def __init__(self, columns: Dict[str, np.ndarray]) -> None:
        self.columns = columns

    def __len__(self) -> int:
        return len(self.columns["x0"])


def _triangle_specs(
    scene: Scene, mip_level: Callable[[float], int]
) -> Optional[_SpecTable]:
    """Extract edge and interpolation constants for live triangles.

    Mirrors the scalar path exactly: degenerate triangles and empty
    pixel clips are dropped here, winding is normalised for the edge
    functions, and interpolation solves against the *original* vertex
    order.
    """
    rows: Dict[str, List[float]] = {name: [] for name in _SPEC_FIELDS}
    width, height = scene.width, scene.height
    for index, triangle in enumerate(scene.triangles):
        if triangle.is_degenerate():
            continue
        min_x, min_y, max_x, max_y = triangle.bounding_box()
        x0 = max(0, int(math.ceil(min_x - 0.5)))
        y0 = max(0, int(math.ceil(min_y - 0.5)))
        x1 = min(width - 1, int(math.floor(max_x - 0.5)) + 1)
        y1 = min(height - 1, int(math.floor(max_y - 0.5)) + 1)
        if x1 < x0 or y1 < y0:
            continue

        v0, v1, v2 = triangle.vertices
        double_area = (v1.x - v0.x) * (v2.y - v0.y) - (v1.y - v0.y) * (v2.x - v0.x)
        e0, e1, e2 = v0, v1, v2
        if double_area < 0:
            e1, e2 = e2, e1
        for k, (a, b) in enumerate(((e0, e1), (e1, e2), (e2, e0))):
            dx, dy = b.x - a.x, b.y - a.y
            rows[f"ax{k}"].append(a.x)
            rows[f"ay{k}"].append(a.y)
            rows[f"dx{k}"].append(dx)
            rows[f"dy{k}"].append(dy)
            rows[f"tl{k}"].append(dy < 0 or (dy == 0 and dx > 0))

        rows["x0"].append(x0)
        rows["y0"].append(y0)
        rows["cols"].append(x1 - x0 + 1)
        rows["rows"].append(y1 - y0 + 1)
        rows["v0x"].append(v0.x)
        rows["v0y"].append(v0.y)
        rows["det"].append(double_area)
        rows["qx"].append(v2.y - v0.y)
        rows["qy"].append(v2.x - v0.x)
        rows["px"].append(v1.x - v0.x)
        rows["py"].append(v1.y - v0.y)
        for k, vertex in enumerate((v0, v1, v2)):
            rows[f"u{k}"].append(vertex.u)
            rows[f"v{k}"].append(vertex.v)
            rows[f"z{k}"].append(vertex.z)
        rows["texture"].append(triangle.texture)
        rows["level"].append(mip_level(triangle.texel_to_pixel_scale()))
        rows["id"].append(index)
    if not rows["x0"]:
        return None
    columns = {
        name: np.asarray(values, dtype=_SPEC_FIELDS[name])
        for name, values in rows.items()
    }
    return _SpecTable(columns)


_SPEC_FIELDS: Dict[str, object] = {
    "x0": np.int64,
    "y0": np.int64,
    "cols": np.int64,
    "rows": np.int64,
    "v0x": np.float64,
    "v0y": np.float64,
    "det": np.float64,
    "qx": np.float64,
    "qy": np.float64,
    "px": np.float64,
    "py": np.float64,
    "texture": np.int32,
    "level": np.int16,
    "id": np.int32,
}
for _k in range(3):
    _SPEC_FIELDS[f"ax{_k}"] = np.float64
    _SPEC_FIELDS[f"ay{_k}"] = np.float64
    _SPEC_FIELDS[f"dx{_k}"] = np.float64
    _SPEC_FIELDS[f"dy{_k}"] = np.float64
    _SPEC_FIELDS[f"tl{_k}"] = np.bool_
    _SPEC_FIELDS[f"u{_k}"] = np.float64
    _SPEC_FIELDS[f"v{_k}"] = np.float64
    _SPEC_FIELDS[f"z{_k}"] = np.float64


def _rasterize_span(spec: _SpecTable, first: int, last: int) -> Optional[Dict]:
    """Scan-convert triangles ``[first, last)`` of the spec table."""
    sel = slice(first, last)
    col = spec.columns
    areas = (col["cols"][sel] * col["rows"][sel]).astype(np.int64)
    total = int(areas.sum())
    if total == 0:
        return None
    offsets = np.concatenate(([0], np.cumsum(areas)[:-1]))

    # Candidates of one triangle are contiguous, so per-triangle
    # constants spread with np.repeat — much cheaper than gathering.
    def spread(name: str) -> np.ndarray:
        return np.repeat(col[name][sel], areas)

    flat = np.arange(total, dtype=np.int64) - np.repeat(offsets, areas)
    widths = spread("cols")
    row = flat // widths
    column = flat - row * widths
    gx = spread("x0") + column
    gy = spread("y0") + row
    sample_x = gx + 0.5
    sample_y = gy + 0.5

    inside = np.ones(total, dtype=bool)
    for k in range(3):
        edge = spread(f"dx{k}") * (sample_y - spread(f"ay{k}")) - spread(
            f"dy{k}"
        ) * (sample_x - spread(f"ax{k}"))
        inside &= np.where(spread(f"tl{k}"), edge >= 0, edge > 0)
    if not inside.any():
        return None
    tri = np.repeat(np.arange(first, last), areas)

    tri = tri[inside]
    frag_x = gx[inside]
    frag_y = gy[inside]
    cx = sample_x[inside]
    cy = sample_y[inside]

    det = col["det"][tri]
    rel_x = cx - col["v0x"][tri]
    rel_y = cy - col["v0y"][tri]
    w1 = (rel_x * col["qx"][tri] - rel_y * col["qy"][tri]) / det
    w2 = (col["px"][tri] * rel_y - col["py"][tri] * rel_x) / det
    w0 = 1.0 - w1 - w2
    return {
        "x": frag_x.astype(np.int32),
        "y": frag_y.astype(np.int32),
        "u": w0 * col["u0"][tri] + w1 * col["u1"][tri] + w2 * col["u2"][tri],
        "v": w0 * col["v0"][tri] + w1 * col["v1"][tri] + w2 * col["v2"][tri],
        "z": w0 * col["z0"][tri] + w1 * col["z1"][tri] + w2 * col["z2"][tri],
        "level": col["level"][tri],
        "texture": col["texture"][tri],
        "triangle": col["id"][tri],
    }


def rasterize_scene_batch(
    scene: Scene, mip_level: Callable[[float], int]
) -> FragmentBuffer:
    """Rasterize every triangle of a scene with flat array passes."""
    spec = _triangle_specs(scene, mip_level)
    if spec is None:
        return FragmentBuffer.empty(scene.num_triangles)
    areas = spec.columns["cols"] * spec.columns["rows"]
    ending = np.cumsum(areas)
    pieces: List[Dict] = []
    first = 0
    count = len(spec)
    while first < count:
        threshold = (ending[first - 1] if first else 0) + CHUNK_CANDIDATES
        last = int(np.searchsorted(ending, threshold, side="left")) + 1
        last = max(first + 1, min(last, count))
        piece = _rasterize_span(spec, first, last)
        if piece is not None:
            pieces.append(piece)
        first = last
    if not pieces:
        return FragmentBuffer.empty(scene.num_triangles)
    joined = {
        name: np.concatenate([piece[name] for piece in pieces])
        for name in FragmentBuffer.COLUMNS
    }
    return FragmentBuffer(num_triangles=scene.num_triangles, **joined)


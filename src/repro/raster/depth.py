"""Depth testing — the substrate the paper deliberately leaves out.

The paper's machine textures *every* rasterised fragment and performs
hidden-surface removal afterwards, so the Z-buffer "has no impact" on
texture-cache behaviour and is not simulated.  A modern early-Z engine
rejects occluded fragments *before* texturing, which changes both the
texture traffic and the spatial work distribution — this module
provides the test so the ablation can quantify that assumption.

Semantics are the sequential Z-buffer's: fragments are processed in
submission order; a fragment survives if its depth is strictly smaller
than every earlier surviving depth at its pixel (GL_LESS against an
initially infinite buffer).  The implementation is a vectorised
segmented running-minimum, one segment per pixel.
"""

from __future__ import annotations

import numpy as np

from repro.raster.fragments import FragmentBuffer


def depth_visible_mask(fragments: FragmentBuffer, width: int, height: int) -> np.ndarray:
    """Which fragments pass a GL_LESS Z-test, in submission order."""
    n = len(fragments)
    if n == 0:
        return np.zeros(0, dtype=bool)
    pixel = fragments.y.astype(np.int64) * width + fragments.x
    # Stable-sort by pixel: each pixel's fragments stay in submission
    # order inside their segment.
    order = np.argsort(pixel, kind="stable")
    sorted_pixel = pixel[order]
    sorted_z = fragments.z[order]

    # Running minimum of the *previous* entries within each segment: a
    # fragment passes iff z < min(earlier z at the pixel).  Depths are
    # first densely ranked (strictly monotone, so all < comparisons are
    # preserved) so the segmented prefix-min trick below runs in exact
    # integer arithmetic: shift each segment's ranks down by a large
    # per-segment offset (later segments lower), making earlier
    # segments' keys strictly larger — a plain cumulative minimum then
    # cannot leak across segment boundaries.
    starts = np.ones(n, dtype=bool)
    starts[1:] = sorted_pixel[1:] != sorted_pixel[:-1]
    segment_id = np.cumsum(starts) - 1
    unique_depths, ranks = np.unique(sorted_z, return_inverse=True)
    ranks = ranks.astype(np.int64)
    span = np.int64(len(unique_depths) + 1)
    sentinel = span  # larger than every rank
    keyed = ranks - segment_id * span
    best_keyed = np.minimum.accumulate(keyed)
    prev_best = np.empty(n, dtype=np.int64)
    prev_best[0] = sentinel
    prev_best[1:] = best_keyed[:-1] + segment_id[1:] * span
    prev_best[starts] = sentinel
    visible_sorted = ranks < prev_best

    visible = np.empty(n, dtype=bool)
    visible[order] = visible_sorted
    return visible


def resolve_depth(fragments: FragmentBuffer, width: int, height: int) -> FragmentBuffer:
    """The early-Z machine's fragment stream: survivors only."""
    return fragments.select(depth_visible_mask(fragments, width, height))

"""Fragment buffers: the rasterizer's struct-of-arrays output.

A fragment is one drawn pixel of one triangle.  Buffers keep fragments
in engine order — triangles in submission order, pixels in scanline
order within a triangle — because both the texture cache and the timing
model are order-sensitive.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError


class FragmentBuffer:
    """Columnar storage for fragments.

    Columns
    -------
    x, y:
        Integer pixel coordinates.
    u, v:
        Interpolated texture coordinates in level-0 texel units.
    level:
        Base mipmap level the trilinear filter samples (it also reads
        ``level + 1``).
    texture:
        Texture table index.
    triangle:
        Index of the owning triangle in the scene's submission order.
    z:
        Interpolated depth (only the early-Z ablation consults it).
    """

    COLUMNS = ("x", "y", "u", "v", "level", "texture", "triangle", "z")

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        level: np.ndarray,
        texture: np.ndarray,
        triangle: np.ndarray,
        num_triangles: int,
        z: np.ndarray = None,
    ) -> None:
        if z is None:
            z = np.zeros(len(x))
        lengths = {len(col) for col in (x, y, u, v, level, texture, triangle, z)}
        if len(lengths) != 1:
            raise ConfigurationError(f"fragment columns disagree on length: {lengths}")
        self.x = np.asarray(x, dtype=np.int32)
        self.y = np.asarray(y, dtype=np.int32)
        self.u = np.asarray(u, dtype=np.float64)
        self.v = np.asarray(v, dtype=np.float64)
        self.level = np.asarray(level, dtype=np.int16)
        self.texture = np.asarray(texture, dtype=np.int32)
        self.triangle = np.asarray(triangle, dtype=np.int32)
        self.z = np.asarray(z, dtype=np.float64)
        self.num_triangles = num_triangles

    def __len__(self) -> int:
        return len(self.x)

    @classmethod
    def empty(cls, num_triangles: int = 0) -> "FragmentBuffer":
        """A buffer with no fragments."""
        nothing = np.zeros(0)
        return cls(
            nothing, nothing, nothing, nothing, nothing, nothing, nothing,
            num_triangles, z=nothing,
        )

    @classmethod
    def concatenate(cls, buffers: Sequence["FragmentBuffer"], num_triangles: int) -> "FragmentBuffer":
        """Join buffers preserving order."""
        if not buffers:
            return cls.empty(num_triangles)
        columns = {
            name: np.concatenate([getattr(b, name) for b in buffers])
            for name in cls.COLUMNS
        }
        return cls(num_triangles=num_triangles, **columns)

    def select(self, mask_or_index: np.ndarray) -> "FragmentBuffer":
        """A new buffer with the masked/indexed rows, order preserved."""
        columns = {name: getattr(self, name)[mask_or_index] for name in self.COLUMNS}
        return FragmentBuffer(num_triangles=self.num_triangles, **columns)

    def triangle_pixel_counts(self) -> np.ndarray:
        """Pixels drawn per triangle, indexed by triangle id."""
        return np.bincount(self.triangle, minlength=self.num_triangles)

    def iter_rows(self) -> Iterator[tuple]:
        """Yield fragments as tuples, mainly for tests and debugging."""
        for i in range(len(self)):
            yield (
                int(self.x[i]),
                int(self.y[i]),
                float(self.u[i]),
                float(self.v[i]),
                int(self.level[i]),
                int(self.texture[i]),
                int(self.triangle[i]),
            )

    def __repr__(self) -> str:
        return f"FragmentBuffer({len(self)} fragments, {self.num_triangles} triangles)"

"""Scan conversion of triangles into fragment buffers."""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.geometry.scene import Scene
from repro.geometry.triangle import Triangle
from repro.raster.fragments import FragmentBuffer
from repro.raster.setup import triangle_setup

#: Deepest mip level the engine addresses (a 2**15 texture edge is far
#: beyond anything the era's hardware supported).
MAX_MIP_LEVEL = 15


def mip_level_for_scale(scale: float) -> int:
    """Base mipmap level for a texel:pixel scale.

    Standard GL selection: ``level = floor(log2(scale))`` clamped to the
    pyramid.  A magnified mapping (scale <= 1) stays on level 0, which is
    what gives magnified textures their artificially high locality — the
    effect the paper's magnification-removal step exists to cancel.
    """
    if scale <= 1.0:
        return 0
    return min(MAX_MIP_LEVEL, int(math.floor(math.log2(scale))))


def rasterize_triangle(
    triangle: Triangle,
    width: int,
    height: int,
    triangle_id: int = 0,
) -> Optional[dict]:
    """Scan-convert one triangle; returns column arrays or ``None``.

    Fragments come out in scanline order (rows top to bottom, pixels
    left to right), the order a hardware scanner visits them.  Returns
    ``None`` when the triangle covers no pixel centre.
    """
    if triangle.is_degenerate():
        return None
    equations = triangle_setup(triangle)
    min_x, min_y, max_x, max_y = triangle.bounding_box()
    # Pixel (i, j) has its centre at (i + 0.5, j + 0.5); find the pixel
    # range whose centres can fall inside the bounding box.
    x0 = max(0, int(math.ceil(min_x - 0.5)))
    y0 = max(0, int(math.ceil(min_y - 0.5)))
    x1 = min(width - 1, int(math.floor(max_x - 0.5)) + 1)
    y1 = min(height - 1, int(math.floor(max_y - 0.5)) + 1)
    if x1 < x0 or y1 < y0:
        return None

    xs = np.arange(x0, x1 + 1, dtype=np.int32)
    ys = np.arange(y0, y1 + 1, dtype=np.int32)
    grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
    px = grid_x + 0.5
    py = grid_y + 0.5
    covered = equations.covers(px, py)
    if not covered.any():
        return None

    frag_x = grid_x[covered]
    frag_y = grid_y[covered]
    cx = frag_x + 0.5
    cy = frag_y + 0.5

    # Barycentric interpolation of (u, v).  Weight of a vertex is the
    # edge function of the opposite edge over twice the area; with the
    # winding normalised in triangle_setup the edges are (v0 v1),
    # (v1 v2), (v2 v0), so vertex v0 faces edge 1, v1 faces edge 2 and
    # v2 faces edge 0 — but setup may have swapped v1/v2, so interpolate
    # from the original vertices via an explicit solve instead.
    v0, v1, v2 = triangle.vertices
    det = (v1.x - v0.x) * (v2.y - v0.y) - (v1.y - v0.y) * (v2.x - v0.x)
    w1 = ((cx - v0.x) * (v2.y - v0.y) - (cy - v0.y) * (v2.x - v0.x)) / det
    w2 = ((v1.x - v0.x) * (cy - v0.y) - (v1.y - v0.y) * (cx - v0.x)) / det
    w0 = 1.0 - w1 - w2
    frag_u = w0 * v0.u + w1 * v1.u + w2 * v2.u
    frag_v = w0 * v0.v + w1 * v1.v + w2 * v2.v
    frag_z = w0 * v0.z + w1 * v1.z + w2 * v2.z

    level = mip_level_for_scale(triangle.texel_to_pixel_scale())
    n = len(frag_x)
    return {
        "x": frag_x,
        "y": frag_y,
        "u": frag_u,
        "v": frag_v,
        "z": frag_z,
        "level": np.full(n, level, dtype=np.int16),
        "texture": np.full(n, triangle.texture, dtype=np.int32),
        "triangle": np.full(n, triangle_id, dtype=np.int32),
    }


def rasterize_scene(scene: Scene) -> FragmentBuffer:
    """Rasterize every triangle of a scene, preserving submission order.

    Delegates to the batch scan converter; the per-triangle path below
    (:func:`rasterize_scene_scalar`) is the bit-exact reference the
    equivalence property tests compare against.
    """
    from repro.raster.batch import rasterize_scene_batch

    return rasterize_scene_batch(scene, mip_level_for_scale)


def rasterize_scene_scalar(scene: Scene) -> FragmentBuffer:
    """Reference rasterizer: one triangle at a time."""
    columns: List[dict] = []
    for index, triangle in enumerate(scene.triangles):
        result = rasterize_triangle(triangle, scene.width, scene.height, index)
        if result is not None:
            columns.append(result)
    if not columns:
        return FragmentBuffer.empty(scene.num_triangles)
    joined = {
        name: np.concatenate([c[name] for c in columns])
        for name in FragmentBuffer.COLUMNS
    }
    return FragmentBuffer(num_triangles=scene.num_triangles, **joined)

"""Triangle setup: edge equations and fill convention.

This is the work the paper's setup engine performs at a rate of one
triangle per 25 cycles — computing the edge slopes the pixel scanner
then evaluates.  The fill convention is the usual top-left rule so a
pixel on an edge shared by two triangles belongs to exactly one of
them; without it, meshes would show systematic overdraw and the
depth-complexity accounting would drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.geometry.triangle import Triangle
from repro.geometry.vertex import Vertex


@dataclass(frozen=True)
class EdgeEquations:
    """Edge functions of a positively-oriented triangle.

    For edge ``k`` from vertex ``a_k`` to ``b_k`` (in winding order),
    ``E_k(p) = dx_k * (p.y - ay_k) - dy_k * (p.x - ax_k)`` is positive
    strictly inside the triangle.  ``top_left[k]`` marks edges whose
    boundary pixels are owned by this triangle (screen coordinates grow
    downward, so a *top* edge runs in +x and a *left* edge in -y).
    """

    ax: Tuple[float, float, float]
    ay: Tuple[float, float, float]
    dx: Tuple[float, float, float]
    dy: Tuple[float, float, float]
    top_left: Tuple[bool, bool, bool]
    double_area: float

    def evaluate(self, k: int, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """Evaluate edge function ``k`` at sample positions."""
        return self.dx[k] * (py - self.ay[k]) - self.dy[k] * (px - self.ax[k])

    def covers(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        """Coverage mask at sample positions, honouring the fill rule."""
        inside = np.ones(np.shape(px), dtype=bool)
        for k in range(3):
            e = self.evaluate(k, px, py)
            if self.top_left[k]:
                inside &= e >= 0
            else:
                inside &= e > 0
        return inside


def _is_top_left(dx: float, dy: float) -> bool:
    # With y growing downward and E > 0 inside, the winding is clockwise
    # on screen: a left edge runs upward (dy < 0) and a top edge runs
    # right (dy == 0, dx > 0).
    return dy < 0 or (dy == 0 and dx > 0)


def triangle_setup(triangle: Triangle) -> EdgeEquations:
    """Build edge equations, normalising winding to positive orientation."""
    v0, v1, v2 = triangle.vertices
    double_area = (v1.x - v0.x) * (v2.y - v0.y) - (v1.y - v0.y) * (v2.x - v0.x)
    if double_area < 0:
        v1, v2 = v2, v1
        double_area = -double_area

    def edge(a: Vertex, b: Vertex) -> Tuple[float, float, float, float, bool]:
        dx, dy = b.x - a.x, b.y - a.y
        return a.x, a.y, dx, dy, _is_top_left(dx, dy)

    edges = [edge(v0, v1), edge(v1, v2), edge(v2, v0)]
    return EdgeEquations(
        ax=tuple(e[0] for e in edges),
        ay=tuple(e[1] for e in edges),
        dx=tuple(e[2] for e in edges),
        dy=tuple(e[3] for e in edges),
        top_left=tuple(e[4] for e in edges),
        double_area=double_area,
    )

"""Software rendering back end.

The cache study never needs texel *values*, but an adoptable 3D-engine
simulator should be able to show its frames — and actually computing
the trilinear filter arithmetic gives the texture substrate golden
tests (sampling a gradient must reproduce the gradient).  This package
adds procedural texture contents and a framebuffer renderer on top of
the existing rasterizer/filter machinery.
"""

from repro.render.procedural import (
    CheckerTexture,
    GradientTexture,
    NoiseTexture,
    ProceduralTexture,
    default_palette,
)
from repro.render.framebuffer import render_node_views, render_scene

__all__ = [
    "ProceduralTexture",
    "CheckerTexture",
    "GradientTexture",
    "NoiseTexture",
    "default_palette",
    "render_scene",
    "render_node_views",
]

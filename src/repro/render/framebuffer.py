"""Framebuffer rendering: fragments -> trilinear-filtered pixels.

Implements the same sampling the cache model traces — 2x2 bilinear
footprints on two adjacent mipmap levels, blended by the fractional
level of detail — but with actual texel values, producing an image.
Hidden surfaces resolve with the Z-buffer (closest fragment wins).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.scene import Scene
from repro.render.procedural import ProceduralTexture, default_palette


def _fractional_lod(scene: Scene) -> np.ndarray:
    """Per-triangle fractional LOD (log2 of the texel:pixel scale)."""
    lod = np.zeros(scene.num_triangles)
    for index, triangle in enumerate(scene.triangles):
        scale = triangle.texel_to_pixel_scale()
        lod[index] = math.log2(scale) if scale > 1.0 else 0.0
    return lod


def _sample_level(
    contents: Sequence[ProceduralTexture],
    scene: Scene,
    texture_ids: np.ndarray,
    level: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
) -> np.ndarray:
    """Bilinear sample of one mip level per fragment; shape (n, 3)."""
    widths = np.array([t.width for t in scene.textures], dtype=np.int64)
    heights = np.array([t.height for t in scene.textures], dtype=np.int64)
    levels_max = np.array(
        [t.num_levels - 1 for t in scene.textures], dtype=np.int64
    )
    level = np.minimum(level, levels_max[texture_ids])
    width = np.maximum(widths[texture_ids] >> level, 1)
    height = np.maximum(heights[texture_ids] >> level, 1)

    scale = np.ldexp(1.0, -level.astype(np.int32))
    ul = u * scale - 0.5
    vl = v * scale - 0.5
    i0 = np.floor(ul).astype(np.int64)
    j0 = np.floor(vl).astype(np.int64)
    fu = (ul - i0)[:, None]
    fv = (vl - j0)[:, None]

    color = np.zeros((len(u), 3))
    for di, dj, weight in (
        (0, 0, (1 - fu) * (1 - fv)),
        (1, 0, fu * (1 - fv)),
        (0, 1, (1 - fu) * fv),
        (1, 1, fu * fv),
    ):
        i = (i0 + di) % width
        j = (j0 + dj) % height
        # Per-texture dispatch (procedural contents differ per id).
        for tex_id in np.unique(texture_ids):
            mask = texture_ids == tex_id
            color[mask] += weight[mask] * contents[tex_id].texel_colors(
                level[mask], i[mask], j[mask], width[mask], height[mask]
            )
    return color


def render_scene(
    scene: Scene,
    contents: Optional[Sequence[ProceduralTexture]] = None,
    background: Tuple[float, float, float] = (0.05, 0.05, 0.08),
    depth_test: bool = True,
) -> np.ndarray:
    """Render one frame; returns an ``(height, width, 3)`` uint8 image.

    ``contents`` assigns a procedural texture to each entry of the
    scene's texture table (defaults to a generated palette).  With
    ``depth_test`` the closest fragment per pixel wins; without it, the
    last submitted wins (painter's order).
    """
    if contents is None:
        contents = default_palette(len(scene.textures))
    if len(contents) < len(scene.textures):
        raise ConfigurationError(
            f"scene has {len(scene.textures)} textures, palette only {len(contents)}"
        )
    fragments = scene.fragments()
    image = np.empty((scene.height, scene.width, 3))
    image[:, :] = np.asarray(background, dtype=float)
    if len(fragments) == 0:
        return (image * 255).astype(np.uint8)

    pixel = fragments.y.astype(np.int64) * scene.width + fragments.x
    if depth_test:
        # Closest-z fragment per pixel, later submission breaking ties:
        # stable-sort by (pixel, z) and keep each pixel's first entry —
        # sorting is stable, so equal depths keep submission order and
        # we take the *first* (the one that passed GL_LESS).
        order = np.lexsort((np.arange(len(fragments)), fragments.z, pixel))
        sorted_pixel = pixel[order]
        keep = np.ones(len(order), dtype=bool)
        keep[1:] = sorted_pixel[1:] != sorted_pixel[:-1]
        chosen = order[keep]
    else:
        # Painter: last submitted fragment per pixel.
        order = np.lexsort((np.arange(len(fragments)), pixel))
        sorted_pixel = pixel[order]
        last = np.ones(len(order), dtype=bool)
        last[:-1] = sorted_pixel[1:] != sorted_pixel[:-1]
        chosen = order[last]

    chosen_fragments = fragments.select(chosen)
    lod = _fractional_lod(scene)[chosen_fragments.triangle]
    base_level = np.floor(lod).astype(np.int64)
    frac = (lod - base_level)[:, None]

    texture_ids = chosen_fragments.texture.astype(np.int64)
    lower = _sample_level(
        contents, scene, texture_ids, base_level,
        chosen_fragments.u, chosen_fragments.v,
    )
    upper = _sample_level(
        contents, scene, texture_ids, base_level + 1,
        chosen_fragments.u, chosen_fragments.v,
    )
    color = lower * (1 - frac) + upper * frac

    image.reshape(-1, 3)[pixel[chosen]] = np.clip(color, 0.0, 1.0)
    return (image * 255 + 0.5).astype(np.uint8)


def render_node_views(
    scene: Scene,
    distribution,
    contents: Optional[Sequence[ProceduralTexture]] = None,
    background: Tuple[float, float, float] = (0.05, 0.05, 0.08),
) -> list:
    """One partial framebuffer per processor of a sort-middle machine.

    Each node's image contains exactly the pixels its tiles own —
    composited together they reproduce :func:`render_scene`'s frame,
    which is what the machine's (ideal) video merge does.  Useful for
    visualising a distribution on real content.
    """
    full = render_scene(scene, contents, background=background)
    owners = distribution.owner_map(scene.width, scene.height)
    background_row = np.clip(
        np.asarray(background, dtype=float) * 255 + 0.5, 0, 255
    ).astype(np.uint8)
    views = []
    for node in range(distribution.num_processors):
        view = np.empty_like(full)
        view[:, :] = background_row
        mask = owners == node
        view[mask] = full[mask]
        views.append(view)
    return views

"""Procedural texture contents.

Texel values are pure functions of (level, i, j), so no texture memory
is ever allocated — mipmap levels are generated analytically (each
level samples the same underlying pattern at its own frequency, which
is exactly what a correct box-filtered pyramid converges to for these
patterns).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError


class ProceduralTexture(ABC):
    """Texel colours as a vectorised function of level-local coords."""

    @abstractmethod
    def texel_colors(
        self, level: np.ndarray, i: np.ndarray, j: np.ndarray,
        width: np.ndarray, height: np.ndarray,
    ) -> np.ndarray:
        """RGB in [0, 1] for texels ``(i, j)`` of the given mip levels.

        ``width``/``height`` are the level dimensions, elementwise.
        Returns shape ``(n, 3)``.
        """


class CheckerTexture(ProceduralTexture):
    """A two-colour checkerboard with ``checks`` squares per edge."""

    def __init__(
        self,
        color_a: Tuple[float, float, float] = (0.9, 0.9, 0.85),
        color_b: Tuple[float, float, float] = (0.2, 0.25, 0.3),
        checks: int = 8,
    ) -> None:
        if checks < 1:
            raise ConfigurationError(f"need at least 1 check, got {checks}")
        self.color_a = np.asarray(color_a, dtype=float)
        self.color_b = np.asarray(color_b, dtype=float)
        self.checks = checks

    def texel_colors(self, level, i, j, width, height):
        # Normalised coordinates keep the pattern stable across levels.
        u = (i + 0.5) / np.maximum(width, 1)
        v = (j + 0.5) / np.maximum(height, 1)
        cell = (np.floor(u * self.checks) + np.floor(v * self.checks)) % 2
        # Deep levels average out to the mean, like a filtered pyramid.
        blend = np.clip(level / 6.0, 0.0, 1.0)[:, None]
        mean = 0.5 * (self.color_a + self.color_b)
        base = np.where(cell[:, None] == 0, self.color_a, self.color_b)
        return base * (1 - blend) + mean * blend


class GradientTexture(ProceduralTexture):
    """Red ramps with u, green with v — the filtering oracle.

    Because the pattern is linear in (u, v), any correct bilinear or
    trilinear filter must reproduce it exactly; tests rely on this.
    """

    def texel_colors(self, level, i, j, width, height):
        u = (i + 0.5) / np.maximum(width, 1)
        v = (j + 0.5) / np.maximum(height, 1)
        blue = np.full_like(u, 0.25)
        return np.stack([u, v, blue], axis=-1)


class NoiseTexture(ProceduralTexture):
    """Deterministic hash-noise (think stone/dirt) with a base tint."""

    def __init__(self, tint: Tuple[float, float, float] = (0.55, 0.45, 0.35), seed: int = 0) -> None:
        self.tint = np.asarray(tint, dtype=float)
        self.seed = seed

    def texel_colors(self, level, i, j, width, height):
        # Integer hash (xorshift-like) on the normalised lattice so the
        # pattern is level-coherent.
        scale = np.maximum(width, 1)
        key = (
            (i.astype(np.uint64) * np.uint64(0x9E3779B1))
            ^ (j.astype(np.uint64) * np.uint64(0x85EBCA77))
            ^ ((level.astype(np.uint64) + np.uint64(self.seed)) * np.uint64(0xC2B2AE3D))
            ^ scale.astype(np.uint64)
        )
        key ^= key >> np.uint64(15)
        key = key * np.uint64(0x2C1B3C6D) & np.uint64(0xFFFFFFFF)
        key ^= key >> np.uint64(12)
        noise = (key & np.uint64(0xFFFF)).astype(float) / 65535.0
        brightness = 0.6 + 0.4 * noise
        return np.clip(self.tint[None, :] * brightness[:, None], 0.0, 1.0)


def default_palette(count: int, seed: int = 0) -> List[ProceduralTexture]:
    """A varied texture set for rendering any scene's texture table."""
    if count < 1:
        raise ConfigurationError("palette needs at least one texture")
    rng = np.random.default_rng(seed)
    palette: List[ProceduralTexture] = []
    for index in range(count):
        kind = index % 3
        if kind == 0:
            colors = rng.uniform(0.2, 0.95, size=(2, 3))
            palette.append(
                CheckerTexture(tuple(colors[0]), tuple(colors[1]),
                               checks=int(rng.choice([4, 8, 16])))
            )
        elif kind == 1:
            palette.append(GradientTexture())
        else:
            palette.append(NoiseTexture(tuple(rng.uniform(0.3, 0.8, size=3)), seed=index))
    return palette

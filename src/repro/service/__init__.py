"""Experiment job service: async scheduler, supervised worker pool,
content-addressed result store, stdlib HTTP front end.

The figure sweeps stop being blocking foreground CLI runs: a
long-running ``repro-experiments serve`` process accepts declarative
job submissions over HTTP, runs them on a supervised process pool
(per-job timeout, bounded retries with exponential backoff, pool-crash
recovery), and stores every result content-addressed by the job's
pipeline key — duplicate submissions coalesce into one computation and
repeat clients get cache hits.

Beyond the single process, the service scales out as a small cluster:
remote :class:`WorkerNode` processes pull jobs from the coordinator
over HTTP through a lease + heartbeat + requeue-on-expiry protocol,
and a shared ``REPRO_ARTIFACT_DIR`` disk tier lets any node serve any
cached result.

Public surface::

    from repro.service import Scheduler, ServiceClient, WorkerNode, serve

    scheduler = Scheduler(workers=2).start()
    job, deduped = scheduler.submit({"scene": "truc640", "scale": 0.125})
    scheduler.wait(job.id)

    serve(scheduler, port=8765)          # blocking HTTP server
    ServiceClient("http://127.0.0.1:8765").run({"experiment": "table1"})

    WorkerNode("http://127.0.0.1:8765").run()   # one fleet member
"""

from repro.service.jobs import (
    DEFAULT_TENANT,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    TIMED_OUT,
    Job,
    JobSpec,
    execute_payload,
    parse_submission,
    spec_from_payload,
)
from repro.service.client import ServiceClient
from repro.service.http import ServiceHTTPServer, make_server, serve
from repro.service.leases import Lease, LeaseManager
from repro.service.queue import JobQueue
from repro.service.results import RESULT_STAGE, ResultStore
from repro.service.scheduler import Scheduler, SupervisedPool
from repro.service.worker import WorkerNode, default_worker_id

__all__ = [
    "DEFAULT_TENANT",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "STATES",
    "TERMINAL_STATES",
    "TIMED_OUT",
    "Job",
    "JobQueue",
    "JobSpec",
    "Lease",
    "LeaseManager",
    "RESULT_STAGE",
    "ResultStore",
    "Scheduler",
    "ServiceClient",
    "ServiceHTTPServer",
    "SupervisedPool",
    "WorkerNode",
    "default_worker_id",
    "execute_payload",
    "make_server",
    "parse_submission",
    "serve",
    "spec_from_payload",
]

"""Python client for the experiment job service (stdlib ``urllib``).

Usage::

    from repro.service import ServiceClient

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit({"scene": "truc640", "scale": 0.125, "processors": 16})
    done = client.wait(job["id"])
    print(client.result(done["result_key"])["text"])

Errors come back as :class:`~repro.errors.ServiceError` carrying the
server's ``error`` message (or the transport failure).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional
from urllib.parse import quote

from repro.errors import ServiceError
from repro.service.jobs import TERMINAL_STATES


class ServiceClient:
    """Talks to one running ``repro-experiments serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- endpoints ---------------------------------------------------

    def submit(self, payload: Dict) -> Dict:
        """POST a job description; returns the job record (+ ``deduped``)."""
        return self._request("POST", "/jobs", body=payload)

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{quote(job_id, safe='')}")

    def jobs(self) -> Dict:
        return self._request("GET", "/jobs")

    def result(self, key: str) -> Dict:
        """Fetch a content-addressed result payload by its key."""
        return self._request("GET", f"/results/{quote(key, safe='')}")

    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    # -- auto-search -------------------------------------------------

    def start_search(self, payload: Dict) -> Dict:
        """POST /searches: launch a budgeted auto-search; returns its record."""
        return self._request("POST", "/searches", body=payload)

    def search(self, search_id: str) -> Dict:
        return self._request("GET", f"/searches/{quote(search_id, safe='')}")

    def searches(self) -> Dict:
        return self._request("GET", "/searches")

    def wait_search(
        self, search_id: str, timeout: float = 600.0, poll: float = 0.2
    ) -> Dict:
        """Poll until the search leaves ``running``; returns its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.search(search_id)
            if record["state"] != "running":
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"{search_id} still running after {timeout}s"
                )
            time.sleep(poll)

    # -- worker lease protocol ---------------------------------------

    def lease(self, worker: str) -> Optional[Dict]:
        """Pull the next job under a lease; ``None`` if the queue is empty."""
        return self._request("POST", "/leases", body={"worker": worker})

    def heartbeat(self, lease_id: str) -> Dict:
        """Renew a lease; raises ``ServiceError`` (status 410) if stale."""
        return self._request(
            "POST", f"/leases/{quote(lease_id, safe='')}/heartbeat", body={}
        )

    def complete(self, lease_id: str, payload: Dict) -> Dict:
        """Deliver a leased job's result payload; returns the job record."""
        return self._request(
            "POST", f"/leases/{quote(lease_id, safe='')}/complete", body=payload
        )

    def fail(self, lease_id: str, error: str) -> Dict:
        """Report a leased job's execution failure; returns the job record."""
        return self._request(
            "POST", f"/leases/{quote(lease_id, safe='')}/fail", body={"error": error}
        )

    def leases(self) -> Dict:
        """Active leases across the fleet (introspection)."""
        return self._request("GET", "/leases")

    # -- conveniences ------------------------------------------------

    def wait(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.2
    ) -> Dict:
        """Poll until the job reaches a terminal state; returns it."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"{job_id} still {job['state']!r} after {timeout}s"
                )
            time.sleep(poll)

    def run(self, payload: Dict, timeout: float = 600.0) -> Dict:
        """Submit, wait, and return the result payload (or raise)."""
        job = self.wait(self.submit(payload)["id"], timeout=timeout)
        if job["state"] != "done":
            raise ServiceError(
                f"{job['id']} ended {job['state']}: {job.get('error') or 'no error recorded'}"
            )
        return self.result(job["result_key"])

    # -- transport ---------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[Dict] = None) -> Optional[Dict]:
        request = urllib.request.Request(
            self.base_url + path,
            method=method,
            data=None if body is None else json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                if response.status == 204:
                    return None
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except Exception:
                message = str(exc)
            error = ServiceError(f"{method} {path}: {message}")
            error.status = exc.code  # lets callers branch on 410/429
            raise error from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from exc

"""Stdlib-only HTTP front end for the experiment job service.

Endpoints (all JSON):

* ``POST /jobs`` — submit a job description; ``202`` with the job
  record (``409``-free: duplicates coalesce, the response carries
  ``deduped: true``).  Invalid specs get ``400`` with an ``error``;
  a queue at its configured depth limit gets ``429`` (backpressure —
  retry later).
* ``GET /jobs`` — every job the service knows about.
* ``GET /jobs/<id>`` — one job's state-machine record (404 unknown).
* ``GET /results/<key>`` — the content-addressed result payload
  (URL-quote the key; it contains ``/`` and ``#``); 404 if absent.
* ``POST /searches`` — launch a budgeted auto-search
  (:mod:`repro.expfw.search`); ``202`` with the search record.  Trials
  ride the normal job queue, so a worker fleet executes them.
* ``GET /searches`` / ``GET /searches/<id>`` — search progress: state
  (``running``/``done``/``failed``), trial count, the archived report
  key and the winning configuration.
* ``GET /healthz`` — liveness: status, workers, dispatcher threads.
* ``GET /metrics`` — queue depth (total and per tenant), jobs by
  state, retry/timeout/requeue/lease counters, result-store hit rate,
  per-stage pipeline stats, and the ``obs`` metrics-registry snapshot.

Worker-fleet endpoints (the lease protocol remote workers pull with):

* ``POST /leases`` — body ``{"worker": "<name>"}``; ``200`` with the
  lease document (id, job record, execution payload, timeout) or
  ``204`` when the queue is empty.
* ``POST /leases/<id>/heartbeat`` — renew the claim; ``410`` when the
  lease is stale (the worker must abandon the attempt).
* ``POST /leases/<id>/complete`` — body is the result payload; stores
  it and finishes the job (``410`` if stale — the result is still
  kept, it is content-addressed).
* ``POST /leases/<id>/fail`` — body ``{"error": "..."}``; consumes
  retry budget with delayed-requeue backoff.
* ``GET /leases`` — active leases (introspection).

The server is a ``ThreadingHTTPServer`` so slow pollers never block
submissions; all actual work happens in the scheduler's dispatchers
and the remote workers.  A client dropping the connection mid-response
(``BrokenPipeError``/``ConnectionResetError``) is counted into the
``service.http.disconnects`` metric instead of spraying tracebacks.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import unquote

from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ReproError,
    StaleLeaseError,
    UnknownJobError,
)
from repro.service.scheduler import Scheduler


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`Scheduler`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], scheduler: Scheduler) -> None:
        super().__init__(address, _Handler)
        self.scheduler = scheduler

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # The default handler logs every request to stderr; the service is
    # introspectable through /metrics instead.
    def log_message(self, format: str, *args) -> None:
        pass

    def _send(self, status: int, document, headers: Optional[dict] = None) -> None:
        try:
            body = json.dumps(document, indent=2).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # The poller hung up mid-response; nothing to answer, just
            # count it so /metrics shows flaky clients.
            self.server.scheduler.registry.counter("service.http.disconnects").inc()
            self.close_connection = True

    def _no_content(self) -> None:
        try:
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()
        except (BrokenPipeError, ConnectionResetError):
            self.server.scheduler.registry.counter("service.http.disconnects").inc()
            self.close_connection = True

    def _error(self, status: int, message: str, headers: Optional[dict] = None) -> None:
        self._send(status, {"error": message}, headers=headers)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        scheduler = self.server.scheduler
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                self._send(200, scheduler.healthz())
            elif path == "/metrics":
                self._send(200, scheduler.metrics())
            elif path == "/jobs":
                self._send(200, {"jobs": [job.to_json() for job in scheduler.jobs()]})
            elif path == "/leases":
                self._send(200, {"leases": scheduler.lease_snapshot()})
            elif path == "/searches":
                self._send(200, {"searches": scheduler.searches()})
            elif path.startswith("/searches/"):
                search_id = unquote(path[len("/searches/"):])
                self._send(200, scheduler.search(search_id))
            elif path.startswith("/jobs/"):
                job_id = unquote(path[len("/jobs/"):])
                self._send(200, scheduler.job(job_id).to_json())
            elif path.startswith("/results/"):
                key = unquote(path[len("/results/"):])
                payload = scheduler.result(key)
                if payload is None:
                    self._error(404, f"no result stored for key {key!r}")
                else:
                    self._send(200, payload)
            else:
                self._error(404, f"unknown path {path!r}")
        except UnknownJobError as exc:
            self._error(404, str(exc))
        except ReproError as exc:
            # A real service fault, not a missing resource: say so.
            self._error(500, str(exc))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        try:
            if path == "/jobs":
                self._post_job(payload)
            elif path == "/searches":
                self._send(202, self.server.scheduler.start_search(payload))
            elif path == "/leases":
                self._post_lease(payload)
            elif path.startswith("/leases/"):
                self._post_lease_action(path, payload)
            else:
                self._error(404, f"unknown path {path!r}")
        except BackpressureError as exc:
            self._error(429, str(exc), headers={"Retry-After": "1"})
        except StaleLeaseError as exc:
            self._error(410, str(exc))
        except ConfigurationError as exc:
            self._error(400, str(exc))
        except UnknownJobError as exc:
            self._error(404, str(exc))
        except ReproError as exc:
            self._error(500, str(exc))

    def _post_job(self, payload: dict) -> None:
        job, deduped = self.server.scheduler.submit(payload)
        document = job.to_json()
        document["deduped"] = deduped
        self._send(202, document)

    def _post_lease(self, payload: dict) -> None:
        worker = payload.get("worker") if isinstance(payload, dict) else None
        if not isinstance(worker, str) or not worker.strip():
            self._error(400, "a lease request needs a non-empty 'worker' name")
            return
        lease = self.server.scheduler.lease_next(worker.strip())
        if lease is None:
            self._no_content()
            return
        self._send(
            200,
            {
                "lease_id": lease.id,
                "timeout": lease.timeout,
                "job": lease.job.to_json(),
                "payload": lease.job.spec.to_payload(),
            },
        )

    def _post_lease_action(self, path: str, payload: dict) -> None:
        scheduler = self.server.scheduler
        parts = [part for part in path.split("/") if part]
        if len(parts) != 3 or parts[0] != "leases":
            self._error(404, f"unknown path {path!r}")
            return
        lease_id, action = unquote(parts[1]), parts[2]
        if action == "heartbeat":
            lease = scheduler.heartbeat_lease(lease_id)
            self._send(200, {"lease_id": lease.id, "timeout": lease.timeout})
        elif action == "complete":
            job = scheduler.complete_lease(lease_id, payload)
            self._send(200, job.to_json())
        elif action == "fail":
            error = payload.get("error") if isinstance(payload, dict) else None
            job = scheduler.fail_lease(lease_id, str(error or "worker failure"))
            self._send(200, job.to_json())
        else:
            self._error(404, f"unknown lease action {action!r}")


def make_server(
    scheduler: Scheduler, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind the service on ``host:port`` (0 picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), scheduler)


def serve(
    scheduler: Scheduler,
    host: str = "127.0.0.1",
    port: int = 8765,
    announce: Optional[callable] = print,
) -> None:
    """Run the service until interrupted (the CLI's ``serve`` verb)."""
    server = make_server(scheduler, host, port)
    scheduler.start()
    if announce is not None:
        announce(f"serving on {server.url}", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        scheduler.stop()

"""Stdlib-only HTTP front end for the experiment job service.

Endpoints (all JSON):

* ``POST /jobs`` — submit a job description; ``202`` with the job
  record (``409``-free: duplicates coalesce, the response carries
  ``deduped: true``).  Invalid specs get ``400`` with an ``error``.
* ``GET /jobs`` — every job the service knows about.
* ``GET /jobs/<id>`` — one job's state-machine record.
* ``GET /results/<key>`` — the content-addressed result payload
  (URL-quote the key; it contains ``/`` and ``#``).
* ``GET /healthz`` — liveness: status, workers, dispatcher threads.
* ``GET /metrics`` — queue depth, jobs by state, retry/timeout/requeue
  counters, result-store hit rate, per-stage pipeline stats, and the
  ``obs`` metrics-registry snapshot (``service.*`` mirrors plus any
  simulator-level ``cache.*``/``bus.*`` counters and ``span.*``
  histograms recorded in this process).

The server is a ``ThreadingHTTPServer`` so slow pollers never block
submissions; all actual work happens in the scheduler's dispatchers.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import unquote

from repro.errors import ConfigurationError, ReproError
from repro.service.scheduler import Scheduler


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server bound to one :class:`Scheduler`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], scheduler: Scheduler) -> None:
        super().__init__(address, _Handler)
        self.scheduler = scheduler

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    # The default handler logs every request to stderr; the service is
    # introspectable through /metrics instead.
    def log_message(self, format: str, *args) -> None:
        pass

    def _send(self, status: int, document) -> None:
        body = json.dumps(document, indent=2).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send(status, {"error": message})

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        scheduler = self.server.scheduler
        path = self.path.split("?", 1)[0]
        try:
            if path == "/healthz":
                self._send(200, scheduler.healthz())
            elif path == "/metrics":
                self._send(200, scheduler.metrics())
            elif path == "/jobs":
                self._send(200, {"jobs": [job.to_json() for job in scheduler.jobs()]})
            elif path.startswith("/jobs/"):
                job_id = unquote(path[len("/jobs/"):])
                self._send(200, scheduler.job(job_id).to_json())
            elif path.startswith("/results/"):
                key = unquote(path[len("/results/"):])
                payload = scheduler.result(key)
                if payload is None:
                    self._error(404, f"no result stored for key {key!r}")
                else:
                    self._send(200, payload)
            else:
                self._error(404, f"unknown path {path!r}")
        except ReproError as exc:
            self._error(404, str(exc))

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path.split("?", 1)[0] != "/jobs":
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return
        try:
            job, deduped = self.server.scheduler.submit(payload)
        except ConfigurationError as exc:
            self._error(400, str(exc))
            return
        document = job.to_json()
        document["deduped"] = deduped
        self._send(202, document)


def make_server(
    scheduler: Scheduler, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """Bind the service on ``host:port`` (0 picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), scheduler)


def serve(
    scheduler: Scheduler,
    host: str = "127.0.0.1",
    port: int = 8765,
    announce: Optional[callable] = print,
) -> None:
    """Run the service until interrupted (the CLI's ``serve`` verb)."""
    server = make_server(scheduler, host, port)
    scheduler.start()
    if announce is not None:
        announce(f"serving on {server.url}", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        scheduler.stop()

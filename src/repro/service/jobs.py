"""The job model of the experiment service.

A :class:`JobSpec` is a declarative experiment request, validated at
submission time against the registries the rest of the system already
maintains — scene names against ``repro.workloads.scenes.SCENE_SPECS``
and experiment names against
``repro.analysis.experiments.registry.EXPERIMENTS``.  Two kinds exist:

* ``experiment`` — run one registered figure/table experiment at a
  scale (``{"experiment": "fig6", "scale": 0.125}``);
* ``simulate`` — run one machine point (``{"scene": "truc640",
  "processors": 16, "family": "block", "size": 16, ...}``) with the
  same machine vocabulary as ``repro.analysis.batch`` campaigns;
* ``vt`` — run one virtual-texturing pan sequence (``{"vt_scene":
  "vt-quake", "vt_pages": 16, "vt_residency": 0.5, "vt_frames": 3,
  ...}`` plus the same machine vocabulary), the trial unit the
  ``vt-distribution`` auto-search drives.

Every spec derives a deterministic **result key** from the pipeline's
content-identity vocabulary (:mod:`repro.pipeline.keys`), so two
submissions describing the same computation address the same result:
the service coalesces them into one execution and serves repeats from
the content-addressed result store.

:func:`execute_payload` is the module-level (picklable) function the
supervised worker pool runs; it revalidates the payload in the worker
and returns a JSON-serializable result payload.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from threading import Event
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.pipeline.keys import scene_key

# -- job states -------------------------------------------------------

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMED_OUT = "timed-out"

#: Every state a job can be in, in lifecycle order.
STATES = (QUEUED, RUNNING, DONE, FAILED, TIMED_OUT)
#: States a job never leaves.
TERMINAL_STATES = (DONE, FAILED, TIMED_OUT)

_FAMILIES = ("block", "sli", "morton", "bands", "single")
_CACHES = ("lru", "perfect", "none")

#: Submission keys that configure scheduling rather than the computation.
_OPTION_KEYS = ("priority", "timeout", "retries", "tenant")

#: Tenant jobs belong to when the submission names none.
DEFAULT_TENANT = "default"

# Clock seams (monkeypatchable in tests): wall time is for *display*
# timestamps only; durations are always monotonic deltas so a clock
# adjustment (NTP step, DST, manual set) can never corrupt them.
_WALL_CLOCK: Callable[[], float] = time.time
_MONOTONIC_CLOCK: Callable[[], float] = time.monotonic


def _wall_now() -> float:
    return _WALL_CLOCK()


def _monotonic_now() -> float:
    return _MONOTONIC_CLOCK()


@dataclass(frozen=True)
class JobSpec:
    """Declarative description of one unit of work (content identity)."""

    kind: str
    scale: float
    experiment: Optional[str] = None
    scene: Optional[str] = None
    family: str = "block"
    processors: int = 16
    size: int = 16
    cache: str = "lru"
    cache_kb: Optional[int] = None
    ways: Optional[int] = None
    bus_ratio: float = 1.0
    fifo: int = 10000
    vt_scene: Optional[str] = None
    vt_pages: Optional[int] = None
    vt_residency: Optional[float] = None
    vt_frames: Optional[int] = None

    def result_key(self) -> str:
        """Content-addressed identity of this spec's result.

        Built from the pipeline key vocabulary so the same computation
        always lands on the same store entry, across processes and
        across service restarts sharing a ``REPRO_ARTIFACT_DIR``.
        """
        if self.kind == "experiment":
            return f"experiment/{self.experiment}@{self.scale:g}"
        from repro.workloads.scenes import SCENE_SPECS

        geometry = ""
        if self.cache_kb is not None or self.ways is not None:
            geometry = f"#{self.cache_kb or 16}kb{self.ways or 4}w"
        if self.kind == "vt":
            from repro.pipeline.keys import spec_fingerprint
            from repro.workloads.vt import VT_SCENE_SPECS

            return (
                f"vt/{self.vt_scene}@{self.scale:g}"
                f"#{spec_fingerprint(VT_SCENE_SPECS[self.vt_scene])}"
                f"/pages={self.vt_pages}/res={self.vt_residency:g}"
                f"/frames={self.vt_frames}"
                f"/{self.family}{self.size}x{self.processors}"
                f"/cache={self.cache}{geometry}"
                f"/bus={self.bus_ratio:g}/fifo={self.fifo}"
            )
        return (
            f"simulate/{scene_key(SCENE_SPECS[self.scene], self.scale)}"
            f"/{self.family}{self.size}x{self.processors}"
            f"/cache={self.cache}{geometry}"
            f"/bus={self.bus_ratio:g}/fifo={self.fifo}"
        )

    def to_payload(self) -> Dict:
        """Plain-dict form that round-trips through ``spec_from_payload``
        (what gets pickled into a worker process)."""
        if self.kind == "experiment":
            return {"experiment": self.experiment, "scale": self.scale}
        payload = {
            name: value
            for name, value in asdict(self).items()
            if value is not None and name not in ("kind", "experiment")
        }
        return payload


def spec_from_payload(payload: Dict) -> JobSpec:
    """Validate a submission dict into a :class:`JobSpec`.

    Raises :class:`ConfigurationError` on unknown fields, unknown
    experiment/scene names, or out-of-range parameters — the HTTP
    layer maps that to a 400 response.
    """
    from repro.analysis.experiments.registry import EXPERIMENTS
    from repro.workloads.scenes import SCENE_NAMES, SCENE_SPECS

    if not isinstance(payload, dict):
        raise ConfigurationError(f"a job must be a JSON object, got {type(payload).__name__}")
    known = set(JobSpec.__dataclass_fields__) - {"kind"} | set(_OPTION_KEYS)
    unknown = set(payload) - known
    if unknown:
        raise ConfigurationError(
            f"unknown job field(s) {', '.join(sorted(map(repr, unknown)))}; "
            f"choose from {', '.join(sorted(known))}"
        )

    scale = _number(payload, "scale", default=0.25)
    if not 0 < scale <= 1:
        raise ConfigurationError(f"scale must be in (0, 1], got {scale}")

    if "experiment" in payload:
        name = payload["experiment"]
        if name not in EXPERIMENTS:
            raise ConfigurationError(
                f"unknown experiment {name!r}; choose from {', '.join(EXPERIMENTS)}"
            )
        return JobSpec(kind="experiment", experiment=name, scale=scale)

    scene = payload.get("scene")
    vt_scene = payload.get("vt_scene")
    if scene is None and vt_scene is None:
        raise ConfigurationError(
            "a job needs an 'experiment' name, a 'scene' or a 'vt_scene'"
        )
    if scene is not None and vt_scene is not None:
        raise ConfigurationError("'scene' and 'vt_scene' are mutually exclusive")
    if scene is not None and scene not in SCENE_SPECS:
        raise ConfigurationError(
            f"unknown scene {scene!r}; choose from {', '.join(SCENE_NAMES)}"
        )
    family = payload.get("family", "block")
    if family not in _FAMILIES:
        raise ConfigurationError(
            f"unknown family {family!r}; choose from {', '.join(_FAMILIES)}"
        )
    cache = payload.get("cache", "lru")
    if cache not in _CACHES:
        raise ConfigurationError(
            f"unknown cache {cache!r}; choose from {', '.join(_CACHES)}"
        )
    processors = _integer(payload, "processors", default=16, minimum=1)
    size = _integer(payload, "size", default=16, minimum=1)
    fifo = _integer(payload, "fifo", default=10000, minimum=1)
    bus_ratio = _number(payload, "bus_ratio", default=1.0)
    if bus_ratio <= 0:
        raise ConfigurationError(f"bus_ratio must be positive, got {bus_ratio}")
    cache_kb = ways = None
    if "cache_kb" in payload:
        cache_kb = _integer(payload, "cache_kb", default=16, minimum=1)
    if "ways" in payload:
        ways = _integer(payload, "ways", default=4, minimum=1)
    if vt_scene is not None:
        from repro.texture.pages import VirtualTextureConfig
        from repro.workloads.vt import VT_SCENE_NAMES, VT_SCENE_SPECS

        if vt_scene not in VT_SCENE_SPECS:
            raise ConfigurationError(
                f"unknown VT scene {vt_scene!r}; choose from {', '.join(VT_SCENE_NAMES)}"
            )
        vt_pages = _integer(payload, "vt_pages", default=16, minimum=1)
        vt_residency = _number(payload, "vt_residency", default=0.5)
        vt_frames = _integer(payload, "vt_frames", default=3, minimum=1)
        # One source of truth for page-size/residency legality.
        VirtualTextureConfig(vt_pages, vt_residency)
        return JobSpec(
            kind="vt",
            vt_scene=vt_scene,
            vt_pages=vt_pages,
            vt_residency=vt_residency,
            vt_frames=vt_frames,
            scale=scale,
            family=family,
            processors=processors,
            size=size,
            cache=cache,
            cache_kb=cache_kb,
            ways=ways,
            bus_ratio=bus_ratio,
            fifo=fifo,
        )
    return JobSpec(
        kind="simulate",
        scene=scene,
        scale=scale,
        family=family,
        processors=processors,
        size=size,
        cache=cache,
        cache_kb=cache_kb,
        ways=ways,
        bus_ratio=bus_ratio,
        fifo=fifo,
    )


def parse_submission(payload: Dict) -> Tuple[JobSpec, Dict]:
    """Split a submission into ``(spec, scheduling options)``.

    Options — ``priority`` (int, lower runs first), ``timeout``
    (seconds per attempt), ``retries`` (extra attempts after the
    first) and ``tenant`` (fair-queuing bucket) — affect scheduling
    only and stay out of the result key.
    """
    spec = spec_from_payload(payload)
    options: Dict = {}
    if "priority" in payload:
        options["priority"] = _integer(payload, "priority", default=0, minimum=None)
    if "tenant" in payload:
        tenant = payload["tenant"]
        if not isinstance(tenant, str) or not tenant.strip():
            raise ConfigurationError(
                f"tenant must be a non-empty string, got {tenant!r}"
            )
        options["tenant"] = tenant.strip()
    if "timeout" in payload:
        timeout = _number(payload, "timeout", default=0.0)
        if timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout}")
        options["timeout"] = timeout
    if "retries" in payload:
        options["retries"] = _integer(payload, "retries", default=0, minimum=0)
    return spec, options


def _number(payload: Dict, name: str, default: float) -> float:
    raw = payload.get(name, default)
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise ConfigurationError(f"{name} must be a number, got {raw!r}")
    return float(raw)


def _integer(payload: Dict, name: str, default: int, minimum: Optional[int]) -> int:
    raw = payload.get(name, default)
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ConfigurationError(f"{name} must be an int, got {raw!r}")
    if minimum is not None and raw < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {raw}")
    return raw


# -- the mutable job record ------------------------------------------


@dataclass
class Job:
    """One submitted request moving through the service's state machine.

    ``queued → running → done | failed | timed-out``; a pool crash or
    an expired worker lease sends a running job back to ``queued``.
    Mutations happen under the scheduler's lock; readers get consistent
    JSON via :meth:`to_json`.

    The ``*_at`` fields are wall-clock timestamps for display only;
    ``duration_seconds`` is a monotonic delta (first start → finish)
    and stays correct across clock adjustments.
    """

    id: str
    spec: JobSpec
    priority: int = 0
    tenant: str = DEFAULT_TENANT
    timeout: Optional[float] = None
    retries: int = 0
    state: str = QUEUED
    attempts: int = 0
    requeues: int = 0
    cached: bool = False
    error: Optional[str] = None
    created_at: float = field(default_factory=_wall_now)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    duration_seconds: Optional[float] = None
    result_key: str = ""
    started_monotonic: Optional[float] = field(default=None, repr=False, compare=False)
    terminal: Event = field(default_factory=Event, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.result_key:
            self.result_key = self.spec.result_key()

    def mark_started(self) -> None:
        """Record the first dispatch: wall stamp for display, monotonic
        mark for duration accounting (idempotent across requeues)."""
        if self.started_at is None:
            self.started_at = _wall_now()
        if self.started_monotonic is None:
            self.started_monotonic = _monotonic_now()

    def finish(self, state: str, error: Optional[str] = None) -> None:
        self.state = state
        self.error = error
        self.finished_at = _wall_now()
        if self.started_monotonic is not None:
            self.duration_seconds = _monotonic_now() - self.started_monotonic
        self.terminal.set()

    def to_json(self) -> Dict:
        return {
            "id": self.id,
            "state": self.state,
            "result_key": self.result_key,
            "spec": self.spec.to_payload(),
            "priority": self.priority,
            "tenant": self.tenant,
            "timeout": self.timeout,
            "retries": self.retries,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "cached": self.cached,
            "error": self.error,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "duration_seconds": self.duration_seconds,
        }


# -- worker-side execution -------------------------------------------


def execute_payload(payload: Dict) -> Dict:
    """Run one job payload; the function the worker pool executes.

    Module-level and driven by a plain dict so it pickles into worker
    processes; revalidates there (workers import the same registries).
    Returns a JSON-serializable result payload.
    """
    spec = spec_from_payload(payload)
    started = time.perf_counter()
    metrics: Optional[Dict[str, float]] = None
    if spec.kind == "experiment":
        from repro.analysis.experiments.registry import resolve

        _description, runner = resolve(spec.experiment)
        text = runner(spec.scale)
    elif spec.kind == "vt":
        text, metrics = _simulate_vt(spec)
    else:
        text, metrics = _simulate(spec)
    result = {
        "key": spec.result_key(),
        "text": text,
        "elapsed_seconds": time.perf_counter() - started,
    }
    if metrics is not None:
        result["metrics"] = metrics
    return result


def _machine_vocabulary(spec: JobSpec) -> Dict:
    machine = {
        "family": spec.family,
        "processors": spec.processors,
        "size": spec.size,
        "cache": spec.cache,
        "bus_ratio": spec.bus_ratio,
        "fifo": spec.fifo,
    }
    if spec.cache_kb is not None:
        machine["cache_kb"] = spec.cache_kb
    if spec.ways is not None:
        machine["ways"] = spec.ways
    return machine


def _simulate_vt(spec: JobSpec) -> Tuple[str, Dict[str, float]]:
    """One virtual-texturing pan sequence as a job."""
    from repro.workloads.vt import run_vt_sequence

    result = run_vt_sequence(
        spec.vt_scene,
        _machine_vocabulary(spec),
        scale=spec.scale,
        page_lines=spec.vt_pages,
        residency=spec.vt_residency,
        frames=spec.vt_frames,
    )
    final = result.final
    metrics = {
        "cycles": float(result.total_cycles),
        "baseline_cycles": float(result.total_baseline_cycles),
        "speedup": float(final.speedup),
        "miss_rate": float(final.miss_rate),
        "fault_rate": float(result.mean_fault_rate),
        "paged_in": float(result.total_paged_in),
    }
    return result.summary(), metrics


def _simulate(spec: JobSpec) -> Tuple[str, Dict[str, float]]:
    from repro.analysis.batch import distribution_from_spec, machine_config_from_spec
    from repro.core.machine import simulate_machine, single_processor_baseline
    from repro.workloads.scenes import build_scene

    machine = _machine_vocabulary(spec)
    scene = build_scene(spec.scene, spec.scale)
    distribution = distribution_from_spec(machine, scene.height)
    config = machine_config_from_spec(machine, distribution)
    baseline = single_processor_baseline(scene, config)
    result = simulate_machine(scene, config, baseline_cycles=baseline)
    metrics = {
        "cycles": float(result.cycles),
        "baseline_cycles": float(baseline),
        "texel_to_fragment": float(result.texel_to_fragment),
        "imbalance_percent": float(result.work_imbalance_percent()),
    }
    if result.speedup is not None:
        metrics["speedup"] = float(result.speedup)
    if result.efficiency is not None:
        metrics["efficiency"] = float(result.efficiency)
    return result.summary(), metrics

"""Work leases for remote workers pulling jobs over HTTP.

A worker that pulls a job gets a :class:`Lease`: a renewable claim on
that job with a deadline.  While the worker keeps heartbeating, the
claim holds; if heartbeats stop (worker crashed, network partition,
OOM-killed container) the lease expires and the scheduler requeues the
job at the front of its priority class — the same infrastructure-
failure semantics the in-process pool gets from ``BrokenProcessPool``.

All deadlines are **monotonic-clock** deltas: a wall-clock adjustment
on the coordinator can never spuriously expire (or immortalize) a
lease.  The manager is its own small lock domain; the scheduler calls
into it without holding its job lock.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.errors import StaleLeaseError
from repro.service.jobs import Job


@dataclass
class Lease:
    """One worker's renewable claim on one running job."""

    id: str
    job: Job
    worker: str
    timeout: float
    granted_monotonic: float
    expires_monotonic: float
    heartbeats: int = field(default=0)

    def remaining(self, now: float) -> float:
        """Seconds until expiry (negative = already expired)."""
        return self.expires_monotonic - now

    def to_json(self, now: float) -> Dict:
        return {
            "lease_id": self.id,
            "job_id": self.job.id,
            "worker": self.worker,
            "timeout": self.timeout,
            "heartbeats": self.heartbeats,
            "expires_in": self.remaining(now),
        }


class LeaseManager:
    """Tracks active leases and harvests the expired ones."""

    def __init__(
        self,
        timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout <= 0:
            raise StaleLeaseError(f"lease timeout must be positive, got {timeout}")
        self.timeout = timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._leases: Dict[str, Lease] = {}
        self._ids = itertools.count(1)

    def grant(self, job: Job, worker: str) -> Lease:
        """Create a lease on ``job`` for ``worker``."""
        now = self._clock()
        with self._lock:
            lease = Lease(
                id=f"lease-{next(self._ids)}",
                job=job,
                worker=worker,
                timeout=self.timeout,
                granted_monotonic=now,
                expires_monotonic=now + self.timeout,
            )
            self._leases[lease.id] = lease
            return lease

    def heartbeat(self, lease_id: str) -> Lease:
        """Extend a live lease's deadline; stale ids raise."""
        now = self._clock()
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None or lease.remaining(now) <= 0:
                raise StaleLeaseError(
                    f"lease {lease_id!r} is unknown or expired; abandon the attempt"
                )
            lease.expires_monotonic = now + lease.timeout
            lease.heartbeats += 1
            return lease

    def release(self, lease_id: str) -> Lease:
        """Remove and return a live lease (worker completed/failed it)."""
        now = self._clock()
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                raise StaleLeaseError(
                    f"lease {lease_id!r} is unknown or expired; abandon the attempt"
                )
            if lease.remaining(now) <= 0:
                # Expired while the release request was in flight: the
                # reaper may already have requeued the job elsewhere.
                raise StaleLeaseError(
                    f"lease {lease_id!r} expired before release; abandon the attempt"
                )
            return lease

    def harvest_expired(self) -> List[Lease]:
        """Remove and return every expired lease (reaper's tick)."""
        now = self._clock()
        with self._lock:
            expired = [
                lease for lease in self._leases.values() if lease.remaining(now) <= 0
            ]
            for lease in expired:
                del self._leases[lease.id]
            return expired

    def active(self) -> List[Lease]:
        """Live leases, oldest grant first (for ``GET /leases``)."""
        with self._lock:
            return sorted(
                self._leases.values(), key=lambda lease: lease.granted_monotonic
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._leases)

"""Thread-safe priority queue feeding the scheduler.

Jobs are ordered by ``(priority, sequence)`` — lower priority values
run first, ties in submission order.  Requeued jobs (pool crash
recovery) go back to the *front* of their priority class so work that
was already in flight is not starved by later submissions.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import List, Optional

from repro.service.jobs import Job


class JobQueue:
    """Blocking priority queue of :class:`~repro.service.jobs.Job`."""

    def __init__(self) -> None:
        self._heap: List = []
        self._condition = threading.Condition()
        self._sequence = itertools.count()
        # Requeues count downward so they sort before every normal entry
        # of the same priority.
        self._front_sequence = itertools.count(-1, -1)

    def push(self, job: Job, front: bool = False) -> None:
        """Enqueue a job; ``front=True`` jumps its priority class."""
        sequence = next(self._front_sequence if front else self._sequence)
        with self._condition:
            heapq.heappush(self._heap, (job.priority, sequence, job))
            self._condition.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the next job, or ``None`` if none arrived in time."""
        with self._condition:
            if not self._heap and not self._condition.wait_for(
                lambda: bool(self._heap), timeout=timeout
            ):
                return None
            _priority, _sequence, job = heapq.heappop(self._heap)
            return job

    def snapshot(self) -> List[Job]:
        """The queued jobs in dispatch order (for introspection)."""
        with self._condition:
            return [job for _p, _s, job in sorted(self._heap)]

    def __len__(self) -> int:
        with self._condition:
            return len(self._heap)

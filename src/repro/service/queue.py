"""Thread-safe tenant-fair priority queue feeding the scheduler.

Dispatch order is decided in three tiers:

1. **priority class** — lower ``job.priority`` values always run first;
2. **requeue lane** — jobs pushed with ``front=True`` (pool-crash or
   lease-expiry recovery) drain before fresh submissions of the same
   priority, and replay in **FIFO order among themselves**: work that
   entered the system earlier is re-dispatched earlier;
3. **tenant fairness** — fresh jobs of the same priority round-robin
   across tenants (FIFO within each tenant), so one tenant flooding
   the queue cannot starve another's submissions.

With a single tenant this degenerates to plain priority-then-FIFO,
which is what the original single-process scheduler promised.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.service.jobs import Job

#: Lane indices used for snapshot ordering (requeues drain first).
_REQUEUE_LANE = 0
_FRESH_LANE = 1


class JobQueue:
    """Blocking priority queue of :class:`~repro.service.jobs.Job`."""

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._sequence = itertools.count()
        #: priority -> FIFO of requeued (sequence, job) pairs.
        self._requeued: Dict[int, Deque[Tuple[int, Job]]] = {}
        #: priority -> tenant -> FIFO of fresh (sequence, job) pairs.
        self._fresh: Dict[int, Dict[str, Deque[Tuple[int, Job]]]] = {}
        #: priority -> tenant served last, for round-robin rotation.
        self._last_tenant: Dict[int, str] = {}
        self._size = 0

    def push(self, job: Job, front: bool = False) -> None:
        """Enqueue a job; ``front=True`` puts it in its priority class's
        requeue lane (drained first, FIFO among requeues)."""
        sequence = next(self._sequence)
        with self._condition:
            if front:
                lane = self._requeued.setdefault(job.priority, deque())
                lane.append((sequence, job))
            else:
                tenants = self._fresh.setdefault(job.priority, {})
                tenants.setdefault(job.tenant, deque()).append((sequence, job))
            self._size += 1
            self._condition.notify()

    def pop(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Dequeue the next job, or ``None`` if none arrived in time."""
        with self._condition:
            if not self._size and not self._condition.wait_for(
                lambda: bool(self._size), timeout=timeout
            ):
                return None
            return self._pop_locked()

    def _pop_locked(self) -> Job:
        """Remove and return the next job; caller holds the lock."""
        best: Optional[int] = None
        for priority, lane in self._requeued.items():
            if lane and (best is None or priority < best):
                best = priority
        for priority, tenants in self._fresh.items():
            if any(tenants.values()) and (best is None or priority < best):
                best = priority
        assert best is not None, "pop on an empty queue"
        lane = self._requeued.get(best)
        if lane:
            _sequence, job = lane.popleft()
        else:
            tenants = self._fresh[best]
            names = sorted(name for name, fifo in tenants.items() if fifo)
            tenant = self._next_tenant(best, names)
            self._last_tenant[best] = tenant
            _sequence, job = tenants[tenant].popleft()
        self._size -= 1
        return job

    def _next_tenant(self, priority: int, names: List[str]) -> str:
        """Round-robin choice: the first tenant after the last served."""
        last = self._last_tenant.get(priority)
        if last is not None:
            for name in names:
                if name > last:
                    return name
        return names[0]

    def snapshot(self) -> List[Job]:
        """The queued jobs in approximate dispatch order (priority, then
        requeue lane, then arrival); tenant round-robin interleaving is
        not reflected.  For introspection only."""
        with self._condition:
            entries = [
                (priority, _REQUEUE_LANE, sequence, job)
                for priority, lane in self._requeued.items()
                for sequence, job in lane
            ]
            entries.extend(
                (priority, _FRESH_LANE, sequence, job)
                for priority, tenants in self._fresh.items()
                for fifo in tenants.values()
                for sequence, job in fifo
            )
            return [job for _p, _lane, _s, job in sorted(
                entries, key=lambda entry: entry[:3]
            )]

    def tenant_depths(self) -> Dict[str, int]:
        """Queued-job counts per tenant (requeues under their tenant)."""
        with self._condition:
            depths: Dict[str, int] = {}
            for lane in self._requeued.values():
                for _sequence, job in lane:
                    depths[job.tenant] = depths.get(job.tenant, 0) + 1
            for tenants in self._fresh.values():
                for name, fifo in tenants.items():
                    if fifo:
                        depths[name] = depths.get(name, 0) + len(fifo)
            return depths

    def __len__(self) -> int:
        with self._condition:
            return self._size

"""Content-addressed result store for the experiment service.

Results live in the same two-tier pipeline artifact store the sweep
workers share (:mod:`repro.pipeline.store`), under a dedicated
``service-result`` stage: completed jobs are ``put`` by the scheduler,
and any later submission whose spec derives the same key is served
from the store instead of recomputed — across clients, across service
restarts, and (with a shared ``REPRO_ARTIFACT_DIR``) across machines
sharing a filesystem.

The store distinguishes *client-facing* lookups (:meth:`ResultStore.get`,
counted into the hit/miss metrics `/metrics` reports) from the
scheduler's *internal* re-checks (:meth:`ResultStore.peek`, uncounted),
so the hit rate reflects what submitters experienced.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

from repro import pipeline
from repro.pipeline.store import ArtifactStore

#: Stage name results occupy inside the shared pipeline store.
RESULT_STAGE = "service-result"


class ResultStore:
    """Keyed result payloads with client-facing hit/miss accounting."""

    def __init__(self, store: Optional[ArtifactStore] = None) -> None:
        self._store = store if store is not None else pipeline.store()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Tuple[bool, Optional[Dict]]:
        """Client-facing lookup: counted into the hit/miss metrics."""
        found, value = self._store.peek(RESULT_STAGE, key)
        with self._lock:
            if found:
                self.hits += 1
            else:
                self.misses += 1
        return found, value

    def peek(self, key: str) -> Tuple[bool, Optional[Dict]]:
        """Internal lookup (scheduler re-checks): not counted."""
        return self._store.peek(RESULT_STAGE, key)

    def put(self, key: str, payload: Dict) -> None:
        """Store a completed job's result payload under its key."""
        self._store.put(RESULT_STAGE, key, payload)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

"""Async scheduler and supervised worker pool of the experiment service.

The :class:`Scheduler` owns the whole job lifecycle: submissions are
validated into :class:`~repro.service.jobs.Job` records, coalesced on
their content-addressed result key (a duplicate of a queued/running
job attaches to it; a duplicate of a completed one is served from the
result store), and dispatched from a priority queue onto either a
supervised process pool (``workers >= 1``) or the dispatcher thread
itself (``workers == 0``, inline mode).

Failure semantics:

* an attempt that raises is retried with exponential backoff up to the
  job's retry budget, then the job is marked ``failed``;
* an attempt that exceeds the job's timeout marks the attempt
  timed-out and **restarts the pool** to reclaim the stuck worker
  (``ProcessPoolExecutor`` cannot cancel a running task), retrying
  within the same budget before the job ends ``timed-out``;
* a worker process dying (``BrokenProcessPool``) restarts the pool and
  requeues the in-flight job at the front of its priority class — an
  infrastructure failure does not consume the job's retry budget, but
  repeated crashes (``max_requeues``) eventually fail the job instead
  of poisoning the queue.

Inline mode cannot preempt a running attempt, so per-job timeouts are
only enforced with a process pool.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs, pipeline
from repro.analysis.parallel import share_artifacts
from repro.errors import ServiceError
from repro.obs.spans import span
from repro.service.jobs import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    TIMED_OUT,
    Job,
    execute_payload,
    parse_submission,
)
from repro.service.queue import JobQueue
from repro.service.results import ResultStore


class SupervisedPool:
    """A restartable ``ProcessPoolExecutor``.

    Before (re)creating the pool the parent's pipeline artifacts are
    spilled to the shared disk store (same plumbing as
    ``analysis.parallel.run_tasks``) so workers hydrate precomputed
    stage prefixes.  ``restart()`` terminates the worker processes —
    the only way to reclaim one stuck in a timed-out task — and builds
    a fresh executor; in-flight futures fail with
    ``BrokenProcessPool`` and their jobs are requeued by the scheduler.
    """

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self.restarts = 0

    def submit(self, fn: Callable, *args):
        with self._lock:
            if self._pool is None:
                share_artifacts()
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool.submit(fn, *args)

    def restart(self) -> None:
        """Kill the worker processes and drop the executor."""
        with self._lock:
            pool, self._pool = self._pool, None
            if pool is None:
                return
            self.restarts += 1
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)


class Scheduler:
    """The experiment job service: queue + worker pool + result store."""

    def __init__(
        self,
        workers: int = 0,
        default_timeout: Optional[float] = None,
        default_retries: int = 2,
        backoff_base: float = 0.5,
        backoff_factor: float = 2.0,
        backoff_max: float = 30.0,
        max_requeues: int = 3,
        results: Optional[ResultStore] = None,
        executor: Optional[Callable[[Dict], Dict]] = None,
        sleep: Callable[[float], None] = time.sleep,
        registry: Optional[obs.MetricsRegistry] = None,
    ) -> None:
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.max_requeues = max_requeues
        self.queue = JobQueue()
        self.results = results if results is not None else ResultStore()
        self._executor = executor if executor is not None else execute_payload
        self._sleep = sleep
        self._pool = SupervisedPool(workers) if workers >= 1 else None
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._live_by_key: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._counters = {
            "submitted": 0,
            "deduped": 0,
            "cache_hits": 0,
            "completed": 0,
            "failed": 0,
            "retries": 0,
            "timeouts": 0,
            "pool_restarts": 0,
            "requeues": 0,
        }
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started_at = time.time()
        #: Metrics registry mirror: every lifecycle counter also lands
        #: here as ``service.<name>``, next to the simulator-level
        #: series (cache.*, bus.*, span.*) the workers publish, so one
        #: ``/metrics`` read shows queue and simulation health together.
        self.registry = registry if registry is not None else obs.registry()

    def _count(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount
        self.registry.counter(f"service.{name}").inc(amount)

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "Scheduler":
        """Spawn the dispatcher threads (one per worker slot)."""
        if self._threads:
            return self
        self._stop.clear()
        for index in range(max(1, self.workers)):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop dispatching and tear the worker pool down."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        if self._pool is not None:
            self._pool.shutdown()

    # -- submission --------------------------------------------------

    def submit(self, payload: Dict) -> Tuple[Job, bool]:
        """Validate and enqueue a submission; returns ``(job, deduped)``.

        Duplicate of a live (queued/running) job → that job, ``True``.
        Duplicate of a stored result → a new job born ``done`` with the
        cached payload (a result-store hit).  Otherwise a fresh job is
        queued.
        """
        spec, options = parse_submission(payload)
        key = spec.result_key()
        with self._lock:
            self._count("submitted")
            live = self._live_by_key.get(key)
            if live is not None and live.state not in TERMINAL_STATES:
                self._count("deduped")
                return live, True
        found, _cached = self.results.get(key)
        with self._lock:
            # Re-check: another thread may have queued the same key
            # while the (possibly disk-touching) store lookup ran.
            live = self._live_by_key.get(key)
            if live is not None and live.state not in TERMINAL_STATES:
                self._count("deduped")
                return live, True
            job = Job(
                id=f"job-{next(self._ids)}",
                spec=spec,
                priority=options.get("priority", 0),
                timeout=options.get("timeout", self.default_timeout),
                retries=options.get("retries", self.default_retries),
            )
            self._jobs[job.id] = job
            if found:
                self._count("cache_hits")
                job.cached = True
                job.finish(DONE)
                return job, False
            self._live_by_key[key] = job
        self.queue.push(job)
        return job, False

    def job(self, job_id: str) -> Job:
        with self._lock:
            if job_id not in self._jobs:
                raise ServiceError(f"unknown job {job_id!r}")
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.job(job_id)
        if not job.terminal.wait(timeout=timeout):
            raise ServiceError(f"{job_id} still {job.state} after {timeout}s")
        return job

    def result(self, key: str) -> Optional[Dict]:
        """Client-facing result lookup (counts into the hit metrics)."""
        found, payload = self.results.get(key)
        return payload if found else None

    # -- dispatch ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.pop(timeout=0.05)
            if job is None:
                continue
            try:
                self._run_job(job)
            except Exception as exc:  # defensive: never kill a dispatcher
                with self._lock:
                    self._count("failed")
                    self._finish(job, FAILED, f"scheduler error: {exc}")

    def _run_job(self, job: Job) -> None:
        # The result may have appeared while the job sat in the queue
        # (another dispatcher finished the same key first).
        found, _payload = self.results.peek(job.result_key)
        if found:
            with self._lock:
                job.cached = True
                self._finish(job, DONE)
            return
        with self._lock:
            job.state = RUNNING
            if job.started_at is None:
                job.started_at = time.time()
        while True:
            with self._lock:
                job.attempts += 1
            try:
                payload = self._execute(job)
            except BrokenProcessPool:
                # Either requeued (picked up again from the queue) or
                # failed after too many crashes; this dispatch is over.
                self._requeue_after_crash(job)
                return
            except FutureTimeoutError:
                with self._lock:
                    self._count("timeouts")
                if self._pool is not None:
                    # The worker is still grinding on the dead attempt;
                    # restarting the pool is the only way to reclaim it.
                    self._pool.restart()
                    with self._lock:
                        self._count("pool_restarts")
                if not self._backoff_or_finish(job, TIMED_OUT, "attempt timed out"):
                    return
            except Exception as exc:
                if not self._backoff_or_finish(job, FAILED, str(exc) or repr(exc)):
                    return
            else:
                self.results.put(job.result_key, payload)
                with self._lock:
                    self._count("completed")
                    self._finish(job, DONE)
                return

    def _execute(self, job: Job) -> Dict:
        payload = job.spec.to_payload()
        # The span times the whole attempt (dispatcher-side, so it
        # covers pool scheduling + the worker's run) and lands in the
        # ``span.service.execute`` histogram of /metrics.
        with span("service.execute", kind=job.spec.kind, job=job.id):
            if self._pool is None:
                return self._executor(payload)
            future = self._pool.submit(self._executor, payload)
            return future.result(timeout=job.timeout)

    def _backoff_or_finish(self, job: Job, state: str, error: str) -> bool:
        """Retry with backoff if budget remains; else finish. True = retry."""
        with self._lock:
            if job.attempts > job.retries:
                if state == FAILED:
                    self._count("failed")
                self._finish(job, state, error)
                return False
            self._count("retries")
            job.error = error  # visible while the retry is pending
        delay = min(
            self.backoff_base * self.backoff_factor ** (job.attempts - 1),
            self.backoff_max,
        )
        self._sleep(delay)
        return True

    def _requeue_after_crash(self, job: Job) -> bool:
        """Recover from a dead worker pool; False = job finished failed."""
        self._pool.restart()
        with self._lock:
            self._count("pool_restarts")
            job.requeues += 1
            job.attempts -= 1  # the crashed attempt never really ran
            if job.requeues > self.max_requeues:
                self._count("failed")
                self._finish(
                    job, FAILED, "worker pool crashed repeatedly while running this job"
                )
                return False
            self._count("requeues")
            job.state = QUEUED
        self.queue.push(job, front=True)
        return True

    def _finish(self, job: Job, state: str, error: Optional[str] = None) -> None:
        """Terminal transition; caller holds the lock."""
        job.finish(state, error)
        if self._live_by_key.get(job.result_key) is job:
            del self._live_by_key[job.result_key]

    # -- introspection -----------------------------------------------

    def metrics(self) -> Dict:
        """The `/metrics` document: queue, states, counters, stores,
        plus the obs registry (service.* mirrors, simulator-level
        cache/bus counters and span histograms)."""
        with self._lock:
            by_state = {state: 0 for state in STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            counters = dict(self._counters)
        self.registry.gauge("service.queue_depth").set(len(self.queue))
        for state, count in by_state.items():
            self.registry.gauge("service.jobs").labels(state=state).set(count)
        return {
            "uptime_seconds": time.time() - self._started_at,
            "workers": self.workers,
            "queue_depth": len(self.queue),
            "jobs": by_state,
            "counters": counters,
            "result_store": self.results.snapshot(),
            "pipeline": pipeline.stats(),
            "obs": self.registry.snapshot(),
        }

    def healthz(self) -> Dict:
        return {
            "status": "ok",
            "workers": self.workers,
            "dispatchers": sum(thread.is_alive() for thread in self._threads),
            "uptime_seconds": time.time() - self._started_at,
        }

"""Async scheduler and supervised worker pool of the experiment service.

The :class:`Scheduler` owns the whole job lifecycle: submissions are
validated into :class:`~repro.service.jobs.Job` records, coalesced on
their content-addressed result key (a duplicate of a queued/running
job attaches to it; a duplicate of a completed one is served from the
result store), and dispatched from a tenant-fair priority queue onto
any mix of three execution backends:

* a supervised in-process pool (``workers >= 1``);
* the dispatcher thread itself (``workers == 0``, inline mode);
* **remote worker nodes** pulling jobs over HTTP through the lease
  protocol (:meth:`lease_next` / :meth:`heartbeat_lease` /
  :meth:`complete_lease` / :meth:`fail_lease`), with ``local=False``
  turning the scheduler into a pure coordinator.

Failure semantics:

* an attempt that raises is retried with exponential backoff up to the
  job's retry budget, then the job is marked ``failed`` — remote
  attempts use the same budget and backoff curve, but back off by
  delaying the requeue instead of sleeping a dispatcher;
* an attempt that exceeds the job's timeout marks the attempt
  timed-out and **restarts the pool** to reclaim the stuck worker
  (``ProcessPoolExecutor`` cannot cancel a running task), retrying
  within the same budget before the job ends ``timed-out``;
* a worker process dying (``BrokenProcessPool``) — or a remote
  worker's **lease expiring** without a heartbeat — requeues the
  in-flight job at the front of its priority class in FIFO order; an
  infrastructure failure does not consume the job's retry budget, but
  repeated ones (``max_requeues``) eventually fail the job instead of
  poisoning the queue.

``max_queue_depth`` bounds the fresh-submission backlog: past it,
:meth:`submit` raises :class:`~repro.errors.BackpressureError` (the
HTTP layer answers 429).  Duplicates of live jobs and result-store
hits are never rejected — they add no queue pressure.

All durations (uptime, job durations, lease deadlines, backoff
schedules) are monotonic-clock deltas; wall-clock reads only produce
display timestamps.  Inline mode cannot preempt a running attempt, so
per-job timeouts are only enforced with a process pool.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs, pipeline
from repro.analysis.parallel import share_artifacts
from repro.errors import (
    BackpressureError,
    ServiceError,
    StaleLeaseError,
    UnknownJobError,
)
from repro.obs.spans import span
from repro.service.jobs import (
    DEFAULT_TENANT,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    TIMED_OUT,
    Job,
    execute_payload,
    parse_submission,
)
from repro.service.leases import Lease, LeaseManager
from repro.service.queue import JobQueue
from repro.service.results import ResultStore


class SupervisedPool:
    """A restartable ``ProcessPoolExecutor``.

    Before (re)creating the pool the parent's pipeline artifacts are
    spilled to the shared disk store (same plumbing as
    ``analysis.parallel.run_tasks``) so workers hydrate precomputed
    stage prefixes.  ``restart()`` terminates the worker processes —
    the only way to reclaim one stuck in a timed-out task — and builds
    a fresh executor; in-flight futures fail with
    ``BrokenProcessPool`` and their jobs are requeued by the scheduler.
    """

    def __init__(self, workers: int) -> None:
        self.workers = workers
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self.restarts = 0

    def submit(self, fn: Callable, *args):
        with self._lock:
            if self._pool is None:
                share_artifacts()
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            return self._pool.submit(fn, *args)

    def restart(self) -> None:
        """Kill the worker processes and drop the executor."""
        with self._lock:
            pool, self._pool = self._pool, None
            if pool is None:
                return
            self.restarts += 1
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)

    def shutdown(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
            pool.shutdown(wait=False, cancel_futures=True)


class Scheduler:
    """The experiment job service: queue + execution backends + results."""

    def __init__(
        self,
        workers: int = 0,
        default_timeout: Optional[float] = None,
        default_retries: int = 2,
        backoff_base: float = 0.5,
        backoff_factor: float = 2.0,
        backoff_max: float = 30.0,
        max_requeues: int = 3,
        max_queue_depth: Optional[int] = None,
        lease_timeout: float = 30.0,
        local: bool = True,
        reaper_interval: float = 0.05,
        results: Optional[ResultStore] = None,
        executor: Optional[Callable[[Dict], Dict]] = None,
        sleep: Callable[[float], None] = time.sleep,
        registry: Optional[obs.MetricsRegistry] = None,
    ) -> None:
        if workers < 0:
            raise ServiceError(f"workers must be >= 0, got {workers}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        self.workers = workers
        self.default_timeout = default_timeout
        self.default_retries = default_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.max_requeues = max_requeues
        self.max_queue_depth = max_queue_depth
        self.local = local
        self.reaper_interval = reaper_interval
        self.queue = JobQueue()
        self.leases = LeaseManager(timeout=lease_timeout)
        self.results = results if results is not None else ResultStore()
        self._executor = executor if executor is not None else execute_payload
        self._sleep = sleep
        self._pool = SupervisedPool(workers) if workers >= 1 and local else None
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._live_by_key: Dict[str, Job] = {}
        #: Remote-retry backlog: (ready_monotonic, tiebreak, job) heap
        #: the reaper flushes back into the queue once backoff elapses.
        self._delayed: List[Tuple[float, int, Job]] = []
        #: worker name -> last-seen monotonic stamp (lease or heartbeat).
        self._workers_seen: Dict[str, float] = {}
        self._ids = itertools.count(1)
        self._delay_ids = itertools.count(1)
        self._search_ids = itertools.count(1)
        #: search id -> mutable state record (see ``start_search``).
        self._searches: Dict[str, Dict] = {}
        self._counters = {
            "submitted": 0,
            "deduped": 0,
            "cache_hits": 0,
            "completed": 0,
            "failed": 0,
            "retries": 0,
            "timeouts": 0,
            "pool_restarts": 0,
            "requeues": 0,
            "rejected": 0,
            "leases": 0,
            "heartbeats": 0,
            "lease_expiries": 0,
            "searches": 0,
            "searches_completed": 0,
            "searches_failed": 0,
        }
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()
        self._started_at = time.time()  # display timestamp only
        self._started_monotonic = time.monotonic()
        #: Metrics registry mirror: every lifecycle counter also lands
        #: here as ``service.<name>``, next to the simulator-level
        #: series (cache.*, bus.*, span.*) the workers publish, so one
        #: ``/metrics`` read shows queue and simulation health together.
        self.registry = registry if registry is not None else obs.registry()

    def _count(self, name: str, amount: int = 1) -> None:
        self._counters[name] += amount
        self.registry.counter(f"service.{name}").inc(amount)

    # -- lifecycle ---------------------------------------------------

    def start(self) -> "Scheduler":
        """Spawn the dispatcher threads (if executing locally) and the
        lease/backoff reaper."""
        if self._threads:
            return self
        self._stop.clear()
        if self.local:
            for index in range(max(1, self.workers)):
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    name=f"repro-dispatch-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        reaper = threading.Thread(
            target=self._reaper_loop, name="repro-lease-reaper", daemon=True
        )
        reaper.start()
        self._threads.append(reaper)
        return self

    def stop(self, timeout: float = 5.0) -> None:
        """Stop dispatching and tear the worker pool down."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()
        if self._pool is not None:
            self._pool.shutdown()

    # -- submission --------------------------------------------------

    def submit(self, payload: Dict) -> Tuple[Job, bool]:
        """Validate and enqueue a submission; returns ``(job, deduped)``.

        Duplicate of a live (queued/running) job → that job, ``True``.
        Duplicate of a stored result → a new job born ``done`` with the
        cached payload (a result-store hit).  Otherwise a fresh job is
        queued — unless the queue already sits at ``max_queue_depth``,
        in which case :class:`~repro.errors.BackpressureError` asks the
        client to retry later (deduped and cached submissions are never
        rejected: they add no queue pressure).
        """
        spec, options = parse_submission(payload)
        key = spec.result_key()
        with self._lock:
            self._count("submitted")
            live = self._live_by_key.get(key)
            if live is not None and live.state not in TERMINAL_STATES:
                self._count("deduped")
                return live, True
        found, _cached = self.results.get(key)
        with self._lock:
            # Re-check: another thread may have queued the same key
            # while the (possibly disk-touching) store lookup ran.
            live = self._live_by_key.get(key)
            if live is not None and live.state not in TERMINAL_STATES:
                self._count("deduped")
                return live, True
            if not found and self.max_queue_depth is not None:
                if len(self.queue) >= self.max_queue_depth:
                    self._count("rejected")
                    raise BackpressureError(
                        f"queue depth {len(self.queue)} is at the limit "
                        f"({self.max_queue_depth}); retry later"
                    )
            job = Job(
                id=f"job-{next(self._ids)}",
                spec=spec,
                priority=options.get("priority", 0),
                tenant=options.get("tenant", DEFAULT_TENANT),
                timeout=options.get("timeout", self.default_timeout),
                retries=options.get("retries", self.default_retries),
            )
            self._jobs[job.id] = job
            if found:
                self._count("cache_hits")
                job.cached = True
                job.finish(DONE)
                return job, False
            self._live_by_key[key] = job
        self.queue.push(job)
        return job, False

    def job(self, job_id: str) -> Job:
        with self._lock:
            if job_id not in self._jobs:
                raise UnknownJobError(f"unknown job {job_id!r}")
            return self._jobs[job_id]

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        job = self.job(job_id)
        if not job.terminal.wait(timeout=timeout):
            raise ServiceError(f"{job_id} still {job.state} after {timeout}s")
        return job

    def result(self, key: str) -> Optional[Dict]:
        """Client-facing result lookup (counts into the hit metrics)."""
        found, payload = self.results.get(key)
        return payload if found else None

    # -- dispatch ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            job = self.queue.pop(timeout=0.05)
            if job is None:
                continue
            try:
                self._run_job(job)
            except Exception as exc:  # defensive: never kill a dispatcher
                with self._lock:
                    self._count("failed")
                    self._finish(job, FAILED, f"scheduler error: {exc}")

    def _run_job(self, job: Job) -> None:
        # The result may have appeared while the job sat in the queue
        # (another dispatcher finished the same key first).
        found, _payload = self.results.peek(job.result_key)
        if found:
            with self._lock:
                job.cached = True
                self._finish(job, DONE)
            return
        with self._lock:
            job.state = RUNNING
            job.mark_started()
        while True:
            with self._lock:
                job.attempts += 1
            try:
                payload = self._execute(job)
            except BrokenProcessPool:
                # Either requeued (picked up again from the queue) or
                # failed after too many crashes; this dispatch is over.
                self._requeue_after_crash(job)
                return
            except FutureTimeoutError:
                with self._lock:
                    self._count("timeouts")
                if self._pool is not None:
                    # The worker is still grinding on the dead attempt;
                    # restarting the pool is the only way to reclaim it.
                    self._pool.restart()
                    with self._lock:
                        self._count("pool_restarts")
                if not self._backoff_or_finish(job, TIMED_OUT, "attempt timed out"):
                    return
            except Exception as exc:
                if not self._backoff_or_finish(job, FAILED, str(exc) or repr(exc)):
                    return
            else:
                self.results.put(job.result_key, payload)
                with self._lock:
                    self._count("completed")
                    self._finish(job, DONE)
                return

    def _execute(self, job: Job) -> Dict:
        payload = job.spec.to_payload()
        # The span times the whole attempt (dispatcher-side, so it
        # covers pool scheduling + the worker's run) and lands in the
        # ``span.service.execute`` histogram of /metrics.
        with span("service.execute", kind=job.spec.kind, job=job.id):
            if self._pool is None:
                return self._executor(payload)
            future = self._pool.submit(self._executor, payload)
            return future.result(timeout=job.timeout)

    def _backoff_delay(self, attempts: int) -> float:
        """Exponential backoff before attempt ``attempts + 1``."""
        return min(
            self.backoff_base * self.backoff_factor ** (attempts - 1),
            self.backoff_max,
        )

    def _backoff_or_finish(self, job: Job, state: str, error: str) -> bool:
        """Retry with backoff if budget remains; else finish. True = retry."""
        with self._lock:
            if job.attempts > job.retries:
                if state == FAILED:
                    self._count("failed")
                self._finish(job, state, error)
                return False
            self._count("retries")
            job.error = error  # visible while the retry is pending
        self._sleep(self._backoff_delay(job.attempts))
        return True

    def _requeue_after_crash(self, job: Job) -> bool:
        """Recover from a dead worker pool; False = job finished failed."""
        self._pool.restart()
        with self._lock:
            self._count("pool_restarts")
            if not self._requeue_infrastructure_locked(
                job, "worker pool crashed repeatedly while running this job"
            ):
                return False
        self.queue.push(job, front=True)
        return True

    def _requeue_infrastructure_locked(self, job: Job, fail_error: str) -> bool:
        """Shared crash/lease-expiry bookkeeping; caller holds the lock
        and, on ``True``, pushes the job back to the queue front."""
        job.requeues += 1
        job.attempts -= 1  # the lost attempt never really ran
        if job.requeues > self.max_requeues:
            self._count("failed")
            self._finish(job, FAILED, fail_error)
            return False
        self._count("requeues")
        job.state = QUEUED
        return True

    def _finish(self, job: Job, state: str, error: Optional[str] = None) -> None:
        """Terminal transition; caller holds the lock."""
        job.finish(state, error)
        if self._live_by_key.get(job.result_key) is job:
            del self._live_by_key[job.result_key]

    # -- remote workers: lease / heartbeat / complete / fail ----------

    def lease_next(self, worker: str) -> Optional[Lease]:
        """Hand the next queued job to a remote worker under a lease.

        Returns ``None`` when the queue is empty.  Jobs whose result
        appeared while they sat queued are finished as cache hits and
        skipped, same as the local dispatch path.
        """
        while True:
            job = self.queue.pop(timeout=0)
            if job is None:
                return None
            found, _payload = self.results.peek(job.result_key)
            if found:
                with self._lock:
                    job.cached = True
                    self._finish(job, DONE)
                continue
            with self._lock:
                job.state = RUNNING
                job.mark_started()
                job.attempts += 1
                self._count("leases")
                self._workers_seen[worker] = time.monotonic()
            lease = self.leases.grant(job, worker)
            self.registry.counter("service.leases").labels(worker=worker).inc()
            self.registry.gauge("service.leases_active").set(len(self.leases))
            return lease

    def heartbeat_lease(self, lease_id: str) -> Lease:
        """Renew a worker's claim; stale leases raise ``StaleLeaseError``."""
        lease = self.leases.heartbeat(lease_id)
        with self._lock:
            self._count("heartbeats")
            self._workers_seen[lease.worker] = time.monotonic()
        self.registry.counter("service.heartbeats").labels(worker=lease.worker).inc()
        return lease

    def complete_lease(self, lease_id: str, payload: Dict) -> Job:
        """A worker delivered its result: store it and finish the job.

        The result is stored even if the lease went stale in flight —
        it is content-addressed, so a duplicate execution elsewhere
        will coalesce on it — but a stale lease still raises so the
        worker knows its claim was lost.
        """
        try:
            lease = self.leases.release(lease_id)
        except StaleLeaseError:
            key = payload.get("key") if isinstance(payload, dict) else None
            if key:
                self.results.put(key, payload)
            raise
        self.results.put(lease.job.result_key, payload)
        with self._lock:
            self._count("completed")
            self._finish(lease.job, DONE)
        self.registry.gauge("service.leases_active").set(len(self.leases))
        return lease.job

    def fail_lease(self, lease_id: str, error: str) -> Job:
        """A worker's attempt raised: consume retry budget with backoff.

        Unlike the local path the coordinator cannot sleep a dispatcher,
        so the retry is **delayed**: the job re-enters the queue once
        its backoff elapses (the reaper flushes it).
        """
        lease = self.leases.release(lease_id)
        job = lease.job
        with self._lock:
            if job.attempts > job.retries:
                self._count("failed")
                self._finish(job, FAILED, error)
            else:
                self._count("retries")
                job.error = error  # visible while the retry is pending
                job.state = QUEUED
                ready = time.monotonic() + self._backoff_delay(job.attempts)
                heapq.heappush(self._delayed, (ready, next(self._delay_ids), job))
        self.registry.gauge("service.leases_active").set(len(self.leases))
        return job

    def _reaper_loop(self) -> None:
        """Requeue jobs of expired leases and flush elapsed backoffs."""
        while not self._stop.is_set():
            self._reap_once()
            self._stop.wait(self.reaper_interval)

    def _reap_once(self) -> None:
        for lease in self.leases.harvest_expired():
            requeue = False
            with self._lock:
                self._count("lease_expiries")
                requeue = self._requeue_infrastructure_locked(
                    lease.job,
                    f"lease expired repeatedly (last worker: {lease.worker})",
                )
            if requeue:
                self.queue.push(lease.job, front=True)
        self.registry.gauge("service.leases_active").set(len(self.leases))
        now = time.monotonic()
        ready: List[Job] = []
        with self._lock:
            while self._delayed and self._delayed[0][0] <= now:
                _ready_at, _tiebreak, job = heapq.heappop(self._delayed)
                ready.append(job)
        for job in ready:
            self.queue.push(job)  # a retry, not an infra failure: back lane

    # -- auto-search (the POST /searches convenience) -----------------

    def start_search(self, payload: Dict) -> Dict:
        """Validate and launch a budgeted auto-search in the background.

        Trials are dispatched back through :meth:`submit`, so they ride
        the normal queue — deduped on result keys, executed by the
        local pool or the remote worker fleet, counted in ``/metrics``
        — while the driver archives every trial and the final report
        into the shared :class:`~repro.expfw.archive.RunArchive`.
        Returns the search's JSON state record (state ``running``).
        """
        from repro.expfw.search import SchedulerDispatcher, SearchDriver, parse_search_payload

        config = parse_search_payload(payload)
        driver = SearchDriver(config, dispatcher=SchedulerDispatcher(self))
        with self._lock:
            search_id = f"search-{next(self._search_ids)}"
            record = {
                "id": search_id,
                "state": "running",
                "experiment": config.experiment,
                "config": config.to_json(),
                "created_at": time.time(),  # display timestamp only
                "report_key": None,
                "trials": 0,
                "winner": None,
                "error": None,
            }
            self._searches[search_id] = record
            self._count("searches")
        thread = threading.Thread(
            target=self._run_search,
            args=(search_id, driver),
            name=f"repro-{search_id}",
            daemon=True,
        )
        thread.start()
        return dict(record)

    def _run_search(self, search_id: str, driver) -> None:
        try:
            report = driver.run()
        except Exception as exc:  # surfaced through GET /searches/<id>
            with self._lock:
                self._count("searches_failed")
                record = self._searches[search_id]
                record["state"] = "failed"
                record["error"] = str(exc) or repr(exc)
                record["trials"] = len(driver.trials)
            return
        with self._lock:
            self._count("searches_completed")
            record = self._searches[search_id]
            record["state"] = "done"
            record["report_key"] = report["key"]
            record["trials"] = len(report["trials"])
            record["winner"] = report["winner"]

    def search(self, search_id: str) -> Dict:
        """One search's JSON state; unknown ids raise (HTTP 404)."""
        with self._lock:
            if search_id not in self._searches:
                raise UnknownJobError(f"unknown search {search_id!r}")
            return dict(self._searches[search_id])

    def searches(self) -> List[Dict]:
        with self._lock:
            return [dict(record) for record in self._searches.values()]

    # -- introspection -----------------------------------------------

    def lease_snapshot(self) -> List[Dict]:
        """Active leases as JSON records (the ``GET /leases`` document)."""
        now = time.monotonic()
        return [lease.to_json(now) for lease in self.leases.active()]

    def metrics(self) -> Dict:
        """The `/metrics` document: queue, states, counters, stores,
        leases, plus the obs registry (service.* mirrors, simulator-
        level cache/bus counters and span histograms)."""
        with self._lock:
            by_state = {state: 0 for state in STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            counters = dict(self._counters)
            delayed = len(self._delayed)
            workers_seen = len(self._workers_seen)
            searches_by_state: Dict[str, int] = {}
            for record in self._searches.values():
                state = record["state"]
                searches_by_state[state] = searches_by_state.get(state, 0) + 1
        self.registry.gauge("service.queue_depth").set(len(self.queue))
        tenants = self.queue.tenant_depths()
        for tenant, depth in tenants.items():
            self.registry.gauge("service.queue_depth").labels(tenant=tenant).set(depth)
        for state, count in by_state.items():
            self.registry.gauge("service.jobs").labels(state=state).set(count)
        self.registry.gauge("service.workers_known").set(workers_seen)
        return {
            "uptime_seconds": time.monotonic() - self._started_monotonic,
            "started_at": self._started_at,
            "workers": self.workers,
            "local_execution": self.local,
            "queue_depth": len(self.queue),
            "max_queue_depth": self.max_queue_depth,
            "tenants": tenants,
            "delayed_retries": delayed,
            "jobs": by_state,
            "counters": counters,
            "leases": {
                "active": len(self.leases),
                "timeout": self.leases.timeout,
                "workers_known": workers_seen,
            },
            "searches": searches_by_state,
            "result_store": self.results.snapshot(),
            "pipeline": pipeline.stats(),
            "obs": self.registry.snapshot(),
        }

    def healthz(self) -> Dict:
        return {
            "status": "ok",
            "workers": self.workers,
            "local_execution": self.local,
            "dispatchers": sum(thread.is_alive() for thread in self._threads),
            "uptime_seconds": time.monotonic() - self._started_monotonic,
        }

"""Remote worker node: pulls jobs from a coordinator over HTTP.

One :class:`WorkerNode` is one member of the fleet.  Its loop is the
lease protocol from the worker's side::

    lease = POST /leases {"worker": name}      # or 204: sleep, retry
    ... execute the payload locally ...
    POST /leases/<id>/heartbeat                # background, every timeout/3
    POST /leases/<id>/complete  <result>       # or /fail {"error": ...}

Execution happens in this process with the same module-level
:func:`~repro.service.jobs.execute_payload` the in-process pool uses,
so a worker sharing ``REPRO_ARTIFACT_DIR`` with the coordinator (and
the rest of the fleet) hydrates precomputed pipeline stages from the
shared disk tier and publishes results any node can serve.

If the worker dies mid-job (SIGKILL, OOM, container eviction) its
heartbeats stop, the coordinator's lease expires, and the job is
requeued at the front of its priority class — no worker-side cleanup
is needed, which is exactly what makes the node disposable.

A stale-lease answer (HTTP 410) on heartbeat or completion means the
coordinator already gave the job away; the worker abandons the attempt
and pulls fresh work.  Completion results are content-addressed, so
even an abandoned attempt's delivered result is kept and coalesced.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Callable, Dict, Optional

from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.jobs import execute_payload


def default_worker_id() -> str:
    """A fleet-unique default name: ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


class WorkerNode:
    """One pull-based worker in the cluster."""

    def __init__(
        self,
        url: str,
        worker_id: Optional[str] = None,
        poll: float = 0.5,
        executor: Callable[[Dict], Dict] = execute_payload,
        client: Optional[ServiceClient] = None,
        announce: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.client = client if client is not None else ServiceClient(url)
        self.worker_id = worker_id if worker_id else default_worker_id()
        self.poll = poll
        self.executor = executor
        self._announce = announce
        self.completed = 0
        self.failed = 0
        self.abandoned = 0

    def _say(self, message: str) -> None:
        if self._announce is not None:
            self._announce(f"[{self.worker_id}] {message}")

    # -- the pull loop ----------------------------------------------

    def run(
        self,
        max_jobs: Optional[int] = None,
        stop: Optional[threading.Event] = None,
    ) -> int:
        """Pull-execute-report until ``stop`` is set (or ``max_jobs``
        attempts finished); returns the number of completed jobs."""
        stop = stop if stop is not None else threading.Event()
        attempts = 0
        self._say(f"pulling from {self.client.base_url}")
        while not stop.is_set():
            if max_jobs is not None and attempts >= max_jobs:
                break
            try:
                lease = self.client.lease(self.worker_id)
            except ServiceError as exc:
                self._say(f"lease request failed ({exc}); backing off")
                stop.wait(self.poll)
                continue
            if lease is None:
                stop.wait(self.poll)
                continue
            attempts += 1
            self._run_lease(lease)
        self._say(
            f"exiting: {self.completed} completed, {self.failed} failed, "
            f"{self.abandoned} abandoned"
        )
        return self.completed

    def _run_lease(self, lease: Dict) -> None:
        lease_id = lease["lease_id"]
        job = lease["job"]
        payload = lease["payload"]
        interval = max(lease.get("timeout", 30.0) / 3.0, 0.05)
        self._say(f"leased {job['id']} ({lease_id})")
        heartbeat_stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(lease_id, interval, heartbeat_stop),
            name=f"repro-heartbeat-{lease_id}",
            daemon=True,
        )
        heartbeat.start()
        try:
            result = self.executor(payload)
        except Exception as exc:  # the job's failure, not the worker's
            heartbeat_stop.set()
            heartbeat.join()
            self._report_failure(lease_id, job, str(exc) or repr(exc))
            return
        heartbeat_stop.set()
        heartbeat.join()
        self._deliver(lease_id, job, result)

    def _heartbeat_loop(
        self, lease_id: str, interval: float, stop: threading.Event
    ) -> None:
        while not stop.wait(interval):
            try:
                self.client.heartbeat(lease_id)
            except ServiceError as exc:
                if getattr(exc, "status", None) == 410:
                    # The coordinator took the job back; no point
                    # renewing.  Delivery below will be told the same.
                    return
                # Transient transport trouble: keep trying until the
                # lease genuinely expires server-side.
                self._say(f"heartbeat for {lease_id} failed ({exc})")

    def _deliver(self, lease_id: str, job: Dict, result: Dict) -> None:
        try:
            self.client.complete(lease_id, result)
        except ServiceError as exc:
            if getattr(exc, "status", None) == 410:
                self.abandoned += 1
                self._say(f"{job['id']} was re-assigned before delivery")
                return
            self._say(f"could not deliver {job['id']} ({exc})")
            self.failed += 1
            return
        self.completed += 1
        self._say(f"completed {job['id']}")

    def _report_failure(self, lease_id: str, job: Dict, error: str) -> None:
        self.failed += 1
        try:
            self.client.fail(lease_id, error)
            self._say(f"{job['id']} failed: {error}")
        except ServiceError as exc:
            self.abandoned += 1
            self._say(f"could not report failure of {job['id']} ({exc})")

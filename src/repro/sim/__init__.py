"""Discrete-event simulation kernel.

This package is the project's substitute for ASF, the C++ event-driven
simulation framework the paper's simulator was built on.  It provides a
cycle-resolution simulation clock, generator-based processes, one-shot
events and blocking bounded FIFOs — everything the parallel machine model
in :mod:`repro.core` needs.
"""

from repro.sim.kernel import Event, Process, Simulator, Timeout
from repro.sim.fifo import BoundedFifo

__all__ = ["Event", "Process", "Simulator", "Timeout", "BoundedFifo"]

"""Blocking bounded FIFO for the event kernel.

This models the triangle FIFO that sits in front of the texture-mapping
engine (Figure 3 of the paper).  ``put`` blocks the producer when the
buffer is full — which is exactly how a small triangle buffer lets one
busy node stall the whole in-order distribution stream (Section 8).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.kernel import Event, Simulator

if TYPE_CHECKING:
    from repro.obs.recorder import RecorderLike


class BoundedFifo:
    """A FIFO with ``capacity`` slots and blocking put/get events.

    ``put(item)`` and ``get()`` each return an :class:`Event` to yield on;
    the ``get`` event fires with the item.  Waiters are served in arrival
    order, preserving the strict OpenGL command order the paper's
    sort-middle machine must retain.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int,
        name: str = "fifo",
        recorder: Optional["RecorderLike"] = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"fifo capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        #: Optional event recorder; when set, every occupancy change is
        #: sampled onto the ``("sim", name)`` counter track (the FIFO
        #: occupancy histograms in trace summaries come from this).
        self.recorder: Optional["RecorderLike"] = recorder
        self._items: Deque[Any] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        self._getters: Deque[Event] = deque()
        #: Peak occupancy observed, for instrumentation.
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        """Whether a put would block right now."""
        return len(self._items) >= self.capacity

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; the returned event fires once it is stored."""
        done = Event(self.sim)
        if self._getters and not self._items:
            # Hand the item straight to the oldest blocked consumer.
            self._getters.popleft().succeed(item)
            done.succeed()
        elif not self.full:
            self._store(item)
            done.succeed()
        else:
            self._putters.append((done, item))
        return done

    def get(self) -> Event:
        """Dequeue one item; the returned event fires with the item."""
        if self._items:
            item = self._items.popleft()
            self._admit_blocked_putter()
            if self.recorder is not None:
                self._sample()
            return Event(self.sim).succeed(item)
        done = Event(self.sim)
        self._getters.append(done)
        return done

    def _sample(self) -> None:
        recorder = self.recorder
        if recorder is None:
            return
        recorder.value(
            ("sim", self.name), "occupancy", self.sim.now, len(self._items)
        )

    def _store(self, item: Any) -> None:
        self._items.append(item)
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        if self.recorder is not None:
            self._sample()

    def _admit_blocked_putter(self) -> None:
        if self._putters and not self.full:
            done, item = self._putters.popleft()
            self._store(item)
            done.succeed()

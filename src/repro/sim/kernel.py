"""Core of the discrete-event kernel: clock, events and processes.

The model is deliberately small.  A :class:`Simulator` owns a priority
queue of ``(time, sequence, event)`` entries.  An :class:`Event` is a
one-shot signal that processes can wait on; triggering it resumes every
waiter at the current simulation time.  A :class:`Process` wraps a Python
generator: each ``yield`` hands the kernel an :class:`Event` (often a
:class:`Timeout`) to wait for, and the generator is resumed with the
event's value once it fires.

Cycle accuracy comes from using integer timestamps (one unit == one
engine clock cycle), although the kernel itself accepts any comparable
numeric time.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError

if TYPE_CHECKING:
    from repro.obs.recorder import RecorderLike

#: Type of the generators that drive processes.
ProcessGenerator = Generator["Event", Any, Any]


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, is *triggered* at most once with an
    optional value, and then stays triggered forever.  Callbacks attached
    before the trigger run when the event fires; callbacks attached after
    run immediately.
    """

    __slots__ = ("sim", "_value", "_triggered", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = None
        self._triggered = False
        self._callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event already fired."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event fired with (``None`` while pending)."""
        return self._value

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires (or now if it did)."""
        if self._triggered:
            callback(self)
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event immediately with ``value``."""
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        super().__init__(sim)
        self.delay = delay
        sim._schedule(delay, self, value)


class Process(Event):
    """A running activity driven by a generator.

    The process is itself an :class:`Event` that fires with the
    generator's return value when the generator finishes, so processes
    can wait on one another by yielding the :class:`Process` object.
    """

    __slots__ = ("name", "_generator", "_born")

    def __init__(
        self,
        sim: "Simulator",
        generator: ProcessGenerator,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim)
        self.name: str = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._born = sim.now
        # Start the process at the current time via an immediate event.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        sim._schedule(0, bootstrap, None)

    def _resume(self, event: Event) -> None:
        # Iterative trampoline: a yielded event that is already
        # triggered (e.g. a put into a non-full FIFO) continues the
        # generator in this same frame instead of recursing — long
        # bursts of immediate operations must not grow the stack.
        value = event.value
        while True:
            try:
                target = self._generator.send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                recorder = self.sim.recorder
                if recorder is not None:
                    recorder.span(
                        ("sim", self.name), "process", self._born, self.sim.now
                    )
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Event instances"
                )
            if target.sim is not self.sim:
                raise SimulationError(
                    f"process {self.name!r} yielded an event from another simulator"
                )
            if target.triggered:
                value = target.value
                continue
            target.add_callback(self._resume)
            return


class Simulator:
    """Owns the simulation clock and the pending-event queue.

    ``recorder`` (optional, a :class:`repro.obs.recorder.EventRecorder`)
    makes the kernel emit a lifetime span per completed process; pieces
    built on the kernel (FIFOs, node processes) record richer events
    through the same object.  ``None`` — the default — records nothing
    and keeps the kernel's behaviour and cost unchanged.
    """

    def __init__(self, recorder: Optional["RecorderLike"] = None) -> None:
        self.now: float = 0
        self.recorder: Optional["RecorderLike"] = recorder
        self._queue: List[Tuple[float, int, Event, Any]] = []
        self._sequence = 0

    # -- construction helpers ------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: Optional[str] = None) -> Process:
        """Start a new process driven by ``generator``."""
        return Process(self, generator, name)

    # -- kernel internals ----------------------------------------------------

    def _schedule(self, delay: float, event: Event, value: Any) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self.now + delay, self._sequence, event, value))

    # -- execution -----------------------------------------------------------

    def step(self) -> None:
        """Fire the single earliest pending event."""
        time, _seq, event, value = heapq.heappop(self._queue)
        if time < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = time
        event.succeed(value)

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Returns the final simulation time.
        """
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            self.step()
        return self.now

    def run_all(self, processes: List[Process]) -> float:
        """Run to completion and check every listed process finished.

        Raises :class:`DeadlockError` if the event queue drained while a
        process was still blocked — the classic symptom of a FIFO cycle.
        """
        self.run()
        stuck = [p.name for p in processes if not p.triggered]
        if stuck:
            raise DeadlockError(f"processes never completed: {', '.join(stuck)}")
        return self.now

"""Texture memory substrate.

Models mipmapped textures stored block-linear in the node's private
texture SDRAM, following the organisation of Hakura & Gupta that the
paper adopts: 4x4-texel blocks, 4 bytes per texel, so one block is
exactly one 64-byte cache line.
"""

from repro.texture.texture import MipmapLevel, MipmappedTexture
from repro.texture.layout import TextureMemoryLayout
from repro.texture.filtering import TrilinearFilter, TEXELS_PER_FRAGMENT
from repro.texture.pages import PageTable, VirtualTextureConfig

__all__ = [
    "MipmapLevel",
    "MipmappedTexture",
    "TextureMemoryLayout",
    "TrilinearFilter",
    "TEXELS_PER_FRAGMENT",
    "PageTable",
    "VirtualTextureConfig",
]

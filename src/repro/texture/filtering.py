"""Trilinear filter footprint generation.

Drawing one pixel with trilinear mipmapped filtering reads a 2x2 bilinear
footprint from each of two adjacent mipmap levels — the eight texels per
fragment the paper's bandwidth arithmetic is built on.  This module
turns fragment batches into the exact sequence of cache-line addresses
the texture cache sees, in scan order.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from repro.texture.layout import TextureMemoryLayout

#: Trilinear filtering reads 8 texels per drawn fragment.
TEXELS_PER_FRAGMENT = 8


class TrilinearFilter:
    """Generates trilinear texel footprints against a memory layout."""

    def __init__(self, layout: TextureMemoryLayout) -> None:
        self.layout = layout

    def _bilinear_corners(
        self,
        u: np.ndarray,
        v: np.ndarray,
        levels: np.ndarray,
        texture_ids: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Wrapped integer corner coordinates ``(i0, i1, j0, j1)``.

        ``u``/``v`` are level-0 texel coordinates; they are scaled into
        the requested level, offset by the half-texel bilinear rule and
        wrapped (GL_REPEAT).
        """
        slots = self.layout.slot(texture_ids, levels)
        width = self.layout.level_width[slots]
        height = self.layout.level_height[slots]
        scale = np.ldexp(1.0, -levels.astype(np.int32))
        ul = u * scale - 0.5
        vl = v * scale - 0.5
        i0 = np.floor(ul).astype(np.int64) % width
        j0 = np.floor(vl).astype(np.int64) % height
        i1 = (i0 + 1) % width
        j1 = (j0 + 1) % height
        return i0, i1, j0, j1

    def _footprint(
        self,
        u: np.ndarray,
        v: np.ndarray,
        levels: np.ndarray,
        texture_ids: np.ndarray,
        address_fn: Callable[
            [np.ndarray, np.ndarray, np.ndarray, np.ndarray], np.ndarray
        ],
    ) -> np.ndarray:
        """Stack the eight per-fragment addresses, shape ``(n, 8)``.

        Within a fragment the order is the hardware's natural one: the
        four corners of the lower (finer) level, then the four corners of
        the next level.
        """
        n = len(u)
        upper = np.minimum(levels + 1, self.layout.num_levels[texture_ids] - 1)
        out = np.empty((n, TEXELS_PER_FRAGMENT), dtype=np.int64)
        for half, lvl in enumerate((levels, upper)):
            i0, i1, j0, j1 = self._bilinear_corners(u, v, lvl, texture_ids)
            base = half * 4
            out[:, base + 0] = address_fn(texture_ids, lvl, i0, j0)
            out[:, base + 1] = address_fn(texture_ids, lvl, i1, j0)
            out[:, base + 2] = address_fn(texture_ids, lvl, i0, j1)
            out[:, base + 3] = address_fn(texture_ids, lvl, i1, j1)
        return out

    def line_addresses(
        self,
        u: np.ndarray,
        v: np.ndarray,
        levels: np.ndarray,
        texture_ids: np.ndarray,
    ) -> np.ndarray:
        """Cache-line address of each of the 8 texels, shape ``(n, 8)``.

        Fused fast path: the generic :meth:`_footprint` re-gathers the
        layout tables through :meth:`TextureMemoryLayout.slot` for every
        corner; here each level half gathers its slot row once and the
        four corner addresses share the row term.  Every elementwise
        operation matches the generic path expression for expression
        (the footprint property test pins the equivalence bit for bit).
        """
        layout = self.layout
        n = len(u)
        narrow = layout.narrow
        # Own the index dtypes so callers can hand over raw fragment
        # columns (int16 levels, int32 texture ids) without widening.
        if narrow:
            texture_ids = np.asarray(texture_ids).astype(np.int32, copy=False)
            levels = np.asarray(levels).astype(np.int32, copy=False)
            num_levels = layout.num_levels32
            level_width = layout.level_width32
            level_height = layout.level_height32
            line_base = layout.line_base32
            blocks_wide = layout.blocks_wide32
            itype = np.int32
        else:
            texture_ids = np.asarray(texture_ids).astype(np.int64, copy=False)
            levels = np.asarray(levels).astype(np.int64, copy=False)
            num_levels = layout.num_levels
            level_width = layout.level_width
            level_height = layout.level_height
            line_base = layout.line_base
            blocks_wide = layout.blocks_wide
            itype = np.int64
        upper = np.minimum(levels + 1, num_levels[texture_ids] - 1)
        out = np.empty((n, TEXELS_PER_FRAGMENT), dtype=itype)
        max_levels = layout.max_levels
        for half, lvl in enumerate((levels, upper)):
            # One clamp + gather per half; `scale` uses the *unclamped*
            # level, exactly as _bilinear_corners does.
            slots = texture_ids * max_levels + np.minimum(
                lvl, num_levels[texture_ids] - 1
            )
            width = level_width[slots]
            height = level_height[slots]
            scale = np.ldexp(1.0, -lvl.astype(np.int32))
            i0 = np.floor(u * scale - 0.5).astype(itype) % width
            j0 = np.floor(v * scale - 0.5).astype(itype) % height
            i1 = (i0 + 1) % width
            j1 = (j0 + 1) % height
            bi0 = i0 >> layout._shift_w
            bi1 = i1 >> layout._shift_w
            row0 = line_base[slots] + (j0 >> layout._shift_h) * blocks_wide[slots]
            row1 = line_base[slots] + (j1 >> layout._shift_h) * blocks_wide[slots]
            base = half * 4
            out[:, base + 0] = row0 + bi0
            out[:, base + 1] = row0 + bi1
            out[:, base + 2] = row1 + bi0
            out[:, base + 3] = row1 + bi1
        return out

    def texel_addresses(
        self,
        u: np.ndarray,
        v: np.ndarray,
        levels: np.ndarray,
        texture_ids: np.ndarray,
    ) -> np.ndarray:
        """Globally unique id of each of the 8 texels, shape ``(n, 8)``."""
        return self._footprint(u, v, levels, texture_ids, self.layout.texel_address)

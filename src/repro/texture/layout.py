"""Block-linear placement of textures in the node's texture memory.

Every mipmap level of every texture is stored as a row-major grid of
4x4-texel blocks; with 4-byte texels one block is exactly one 64-byte
cache line, the organisation Hakura & Gupta showed to maximise the
spatial locality a texture cache can exploit.  The layout assigns each
(texture, level) a base *line number* so that the filter can turn texel
coordinates into global cache-line addresses, and a base *texel number*
for unique-texel accounting.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.texture.texture import BYTES_PER_TEXEL, MipmappedTexture

#: Texel block edge, in texels (blocks are BLOCK_EDGE x BLOCK_EDGE).
BLOCK_EDGE = 4
#: Texels per block == texels per cache line.
TEXELS_PER_LINE = BLOCK_EDGE * BLOCK_EDGE
#: Bytes per cache line.
LINE_BYTES = 64


class TextureMemoryLayout:
    """Assigns cache-line and texel addresses for a set of textures.

    The layout is immutable once built.  All lookup tables are flat
    numpy arrays indexed by ``texture_index * max_levels + level`` so the
    trilinear filter can translate whole fragment batches with pure
    array arithmetic.
    """

    def __init__(
        self,
        textures: Sequence[MipmappedTexture],
        block_shape: tuple = None,
        bytes_per_texel: int = BYTES_PER_TEXEL,
    ) -> None:
        """``bytes_per_texel`` sets the texel format (4 = the paper's
        32-bit RGBA; 2 = a 16-bit format, doubling the texels one
        64-byte line holds).  ``block_shape`` is the (width, height) of
        the texel tile one cache line holds; it must contain exactly
        ``64 / bytes_per_texel`` texels.  The default is the squarest
        power-of-two tile (Hakura & Gupta's 2D blocking: 4x4 at 32-bit,
        8x4 at 16-bit); (16, 1) reproduces a plain raster-linear layout,
        kept for the blocking ablation."""
        if not textures:
            raise ConfigurationError("a texture layout needs at least one texture")
        if bytes_per_texel < 1 or LINE_BYTES % bytes_per_texel:
            raise ConfigurationError(
                f"bytes per texel must divide {LINE_BYTES}, got {bytes_per_texel}"
            )
        self.bytes_per_texel = bytes_per_texel
        self.texels_per_line = LINE_BYTES // bytes_per_texel
        if block_shape is None:
            block_h = 1
            while (block_h * 2) * (block_h * 2) <= self.texels_per_line:
                block_h *= 2
            block_shape = (self.texels_per_line // block_h, block_h)
        block_w, block_h = block_shape
        if block_w * block_h != self.texels_per_line or block_w < 1 or block_h < 1:
            raise ConfigurationError(
                f"a line block must hold exactly {self.texels_per_line} texels, "
                f"got {block_w}x{block_h}"
            )
        if block_w & (block_w - 1) or block_h & (block_h - 1):
            raise ConfigurationError("block dimensions must be powers of two")
        self.block_shape = (block_w, block_h)
        self._shift_w = block_w.bit_length() - 1
        self._shift_h = block_h.bit_length() - 1
        self.textures: List[MipmappedTexture] = list(textures)
        self.max_levels = max(t.num_levels for t in self.textures)

        n = len(self.textures)
        stride = self.max_levels
        self.level_width = np.ones(n * stride, dtype=np.int64)
        self.level_height = np.ones(n * stride, dtype=np.int64)
        self.blocks_wide = np.ones(n * stride, dtype=np.int64)
        self.line_base = np.zeros(n * stride, dtype=np.int64)
        self.texel_base = np.zeros(n * stride, dtype=np.int64)
        self.num_levels = np.ones(n, dtype=np.int64)

        next_line = 0
        next_texel = 0
        for t_index, texture in enumerate(self.textures):
            self.num_levels[t_index] = texture.num_levels
            for l_index in range(stride):
                level = texture.level(l_index)
                slot = t_index * stride + l_index
                self.level_width[slot] = level.width
                self.level_height[slot] = level.height
                blocks_w = -(-level.width // block_w)
                blocks_h = -(-level.height // block_h)
                self.blocks_wide[slot] = blocks_w
                if l_index < texture.num_levels:
                    self.line_base[slot] = next_line
                    self.texel_base[slot] = next_texel
                    next_line += blocks_w * blocks_h
                    next_texel += level.texels
                else:
                    # Clamped duplicate of the 1x1 tail level.
                    self.line_base[slot] = self.line_base[slot - 1]
                    self.texel_base[slot] = self.texel_base[slot - 1]
        self.total_lines = next_line
        self.total_texels = next_texel
        # int32 shadows of the lookup tables: line addresses fit 32 bits
        # for any realistic layout, and the narrow gathers halve the
        # memory traffic of batch address generation.
        self.narrow = self.total_lines < 2**31 and self.max_levels < 2**15
        if self.narrow:
            self.level_width32 = self.level_width.astype(np.int32)
            self.level_height32 = self.level_height.astype(np.int32)
            self.blocks_wide32 = self.blocks_wide.astype(np.int32)
            self.line_base32 = self.line_base.astype(np.int32)
            self.num_levels32 = self.num_levels.astype(np.int32)

    def total_bytes(self) -> int:
        """Bytes of texture memory the layout occupies."""
        return self.total_lines * LINE_BYTES

    def slot(self, texture_ids: np.ndarray, levels: np.ndarray) -> np.ndarray:
        """Flat lookup index for arrays of texture ids and mip levels."""
        clamped = np.minimum(levels, self.num_levels[texture_ids] - 1)
        return texture_ids * self.max_levels + clamped

    def line_address(
        self, texture_ids: np.ndarray, levels: np.ndarray, i: np.ndarray, j: np.ndarray
    ) -> np.ndarray:
        """Global cache-line address of texel ``(i, j)`` at a mip level.

        ``i``/``j`` are texel coordinates *already wrapped* into the
        level.  Arrays broadcast together elementwise.
        """
        slots = self.slot(texture_ids, levels)
        return (
            self.line_base[slots]
            + (j >> self._shift_h) * self.blocks_wide[slots]
            + (i >> self._shift_w)
        )

    def texel_address(
        self, texture_ids: np.ndarray, levels: np.ndarray, i: np.ndarray, j: np.ndarray
    ) -> np.ndarray:
        """Globally unique texel id, for unique-texel/fragment accounting."""
        slots = self.slot(texture_ids, levels)
        return self.texel_base[slots] + j * self.level_width[slots] + i

"""Virtual texturing: a page table between the filter and the cache.

The direct path hands :class:`~repro.texture.filtering.TrilinearFilter`
line addresses straight to the cache model — every texture line has a
fixed physical address.  Virtual texturing (Neu's thesis in PAPERS.md)
decouples the two: the *virtual* line space of the mipmap layout is
split into pages of ``page_lines`` cache lines, and only a resident
subset of pages is mapped to physical page frames at any time.  An
access to a non-resident page is a **fault**: it is serviced from a
single shared fallback frame this frame (the classic "render with what
you have" fallback of feedback-driven virtual texturing) and recorded
so the paging loop can adjust residency for the next frame of a
:func:`~repro.workloads.sequence.pan_sequence`.

Design constraints, in order:

* **Exactness identity.**  At ``residency_fraction=1.0`` every page is
  resident under the identity mapping, nothing can ever fault or be
  evicted, and :meth:`PageTable.translate` is a bit-exact no-op: the
  VT path collapses onto the direct path (property tests and golden
  points enforce this).
* **Pure translation.**  ``translate`` never mutates the table, so it
  is chunk-stable and call-split invariant by construction and the
  artifact pipeline can key a replay on :meth:`PageTable.cache_key`.
  Feedback is collected by the separate :meth:`observe` pass over the
  frame's submission-order access stream — which also keeps the
  residency trajectory independent of the machine's distribution (all
  distributions draw the same fragments, only split differently).
* **Deterministic paging.**  Feedback accumulates through array ops
  only — per-page bincounts plus a first-touch rank derived from
  ``np.unique`` — so the trajectory is a pure function of the access
  stream, with no set/dict iteration order anywhere.  The per-frame
  residency update is the LRU self-synchronisation identity of
  DESIGN.md §10: the new resident set is the ``num_frames``
  most-recently-touched pages among (touched ∪ resident), which is
  exactly what demand-paged LRU converges to after the frame.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError

#: Default page size, in 64-byte cache lines (16 lines = 1 KB pages).
DEFAULT_PAGE_LINES = 16


@dataclass(frozen=True)
class VirtualTextureConfig:
    """The two knobs of the virtual-texturing model.

    ``page_lines`` is the page size in cache lines (power of two, so
    line→page is a shift); ``residency_fraction`` is the fraction of
    virtual pages backed by physical frames (1.0 = fully resident, the
    exactness-identity configuration).
    """

    page_lines: int = DEFAULT_PAGE_LINES
    residency_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.page_lines < 1 or (self.page_lines & (self.page_lines - 1)):
            raise ConfigurationError(
                f"page_lines must be a power of two >= 1, got {self.page_lines}"
            )
        if not 0.0 < self.residency_fraction <= 1.0:
            raise ConfigurationError(
                f"residency_fraction must be in (0, 1], got {self.residency_fraction}"
            )

    def describe(self) -> str:
        return f"pages{self.page_lines}l/res{self.residency_fraction:g}"


class PageTable:
    """LRU-paged mapping from virtual texture lines to physical frames.

    The table is frozen within a frame: :meth:`translate` rewrites a
    line-address stream through the current mapping without side
    effects, :meth:`observe` accumulates the frame's touch/fault
    feedback, and :meth:`advance_frame` applies that feedback — paging
    faulted pages in, evicting least-recently-touched residents — and
    clears it for the next frame.
    """

    def __init__(
        self, total_lines: int, config: Optional[VirtualTextureConfig] = None
    ) -> None:
        if total_lines < 1:
            raise ConfigurationError(f"need at least one line, got {total_lines}")
        self.config = config or VirtualTextureConfig()
        self.total_lines = int(total_lines)
        page_lines = self.config.page_lines
        self._shift = page_lines.bit_length() - 1
        self._offset_mask = page_lines - 1
        self.num_pages = -(-self.total_lines // page_lines)
        if self.config.residency_fraction >= 1.0:
            self.num_frames = self.num_pages
        else:
            self.num_frames = max(
                1, int(self.num_pages * self.config.residency_fraction)
            )
        #: Fully resident tables keep the identity mapping forever (no
        #: page can ever fault or be evicted), so translation is a
        #: guaranteed bit-exact no-op — returned as the *same* array.
        self.identity = self.num_frames == self.num_pages

        # Cold state: the lowest-numbered pages are resident, identity
        # mapped, with page p's recency stamp p (page 0 is the LRU).
        frame_of_page = np.full(self.num_pages, -1, dtype=np.int64)
        frame_of_page[: self.num_frames] = np.arange(self.num_frames, dtype=np.int64)
        self._frame_of_page = frame_of_page
        self._recency = np.arange(self.num_pages, dtype=np.int64)
        self._recency[self.num_frames :] = -1
        self._clock = self.num_frames

        # Per-frame feedback accumulators (cleared by advance_frame).
        self._touch_rank = np.full(self.num_pages, -1, dtype=np.int64)
        self._touch_count = np.zeros(self.num_pages, dtype=np.int64)
        self._fault_count = np.zeros(self.num_pages, dtype=np.int64)
        self._next_rank = 0

        self.frame_index = 0
        #: Per-frame paging statistics, appended by :meth:`advance_frame`.
        self.history: List[Dict[str, int]] = []

    # -- translation (pure) -------------------------------------------

    @property
    def address_space_lines(self) -> int:
        """Size of the translated (physical) line address space.

        One extra frame past the resident set is the shared fallback
        frame faulted accesses land in.
        """
        return (self.num_frames + 1) * self.config.page_lines

    @property
    def fallback_frame(self) -> int:
        return self.num_frames

    def translate(self, lines: np.ndarray) -> np.ndarray:
        """Rewrite virtual line addresses through the page table.

        Pure and elementwise: resident pages map to their frame's
        lines, faulted pages collapse onto the shared fallback frame
        (offset preserved).  Never mutates the table, so the result is
        independent of chunking and call splits.
        """
        if self.identity:
            return lines
        pages = lines >> self._shift
        offsets = lines & self._offset_mask
        frames = self._frame_of_page[pages]
        frames = np.where(frames >= 0, frames, self.fallback_frame)
        return frames * self.config.page_lines + offsets

    # -- feedback (accumulating) --------------------------------------

    def observe(self, lines: np.ndarray) -> None:
        """Accumulate one chunk of the frame's access stream as feedback.

        Chunk splits do not matter: counts are bincount sums and the
        first-touch rank is assigned in global first-occurrence order
        (a page first seen in an earlier chunk keeps its earlier rank).
        """
        pages = np.asarray(lines) >> self._shift
        counts = np.bincount(pages, minlength=self.num_pages)
        self._touch_count += counts
        self._fault_count += np.where(self._frame_of_page < 0, counts, 0)

        # np.unique returns sorted pages with each one's first index in
        # this chunk; ordering fresh pages by that index is the stream's
        # first-touch order — deterministic, no hash order anywhere.
        uniq, first_index = np.unique(pages, return_index=True)
        fresh_mask = self._touch_rank[uniq] < 0
        fresh = uniq[fresh_mask]
        if fresh.size:
            order = np.argsort(first_index[fresh_mask], kind="stable")
            ranked = fresh[order]
            self._touch_rank[ranked] = self._next_rank + np.arange(
                fresh.size, dtype=np.int64
            )
            self._next_rank += int(fresh.size)

    def advance_frame(self) -> Dict[str, int]:
        """Apply the frame's feedback to residency; returns its stats.

        This frame's touches outrank every older recency stamp, so the
        new resident set is the ``num_frames`` most recent pages among
        (touched ∪ resident) — the state demand-paged LRU ends the
        frame in.  Freed frames are granted to incoming pages in
        first-touch order (fault-service order), frames sorted
        ascending, keeping the reassignment deterministic.
        """
        touched = np.flatnonzero(self._touch_rank >= 0)
        stats = {
            "frame": self.frame_index,
            "access_count": int(self._touch_count.sum()),
            "touched_pages": int(touched.size),
            "fault_accesses": int(self._fault_count.sum()),
            "faulted_pages": int(np.count_nonzero(self._fault_count)),
        }

        self._recency[touched] = self._clock + self._touch_rank[touched]
        self._clock += self._next_rank

        resident = self._frame_of_page >= 0
        candidates = np.flatnonzero(resident | (self._touch_rank >= 0))
        if candidates.size > self.num_frames:
            keep_order = np.argsort(self._recency[candidates], kind="stable")
            keep = candidates[keep_order[-self.num_frames :]]
        else:
            keep = candidates
        new_resident = np.zeros(self.num_pages, dtype=bool)
        new_resident[keep] = True

        evicted = np.flatnonzero(resident & ~new_resident)
        incoming = np.flatnonzero(new_resident & ~resident)
        incoming = incoming[np.argsort(self._touch_rank[incoming], kind="stable")]
        freed = np.sort(self._frame_of_page[evicted])
        self._frame_of_page[evicted] = -1
        self._frame_of_page[incoming] = freed[: incoming.size]

        stats["paged_in"] = int(incoming.size)
        stats["evicted"] = int(evicted.size)
        stats["resident_pages"] = int(np.count_nonzero(new_resident))

        self._touch_rank.fill(-1)
        self._touch_count.fill(0)
        self._fault_count.fill(0)
        self._next_rank = 0
        self.frame_index += 1
        self.history.append(stats)
        return stats

    # -- identity -----------------------------------------------------

    def resident_mask(self) -> np.ndarray:
        """Boolean per-page residency (a copy; for tests/analysis)."""
        return self._frame_of_page >= 0

    def mapping(self) -> np.ndarray:
        """The page→frame map (a copy; -1 marks non-resident pages)."""
        return self._frame_of_page.copy()

    def cache_key(self) -> str:
        """Content identity of the *current* mapping (pipeline keying).

        Changes whenever :meth:`advance_frame` changes the mapping, so
        a memoized replay can never serve a stale frame's translation.
        """
        digest = hashlib.sha1(self._frame_of_page.tobytes()).hexdigest()[:16]
        return (
            f"vt{self.config.page_lines}l"
            f"f{self.num_frames}of{self.num_pages}"
            f"#{digest}"
        )

    def describe(self) -> str:
        return (
            f"{self.config.describe()}: {self.num_frames}/{self.num_pages} pages "
            f"resident, frame {self.frame_index}"
        )

"""Mipmapped texture descriptors.

Only the *shape* of a texture matters to a cache study — texel contents
are never stored.  A texture is its level-dimension pyramid plus the
derived byte footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError

#: Bytes per texel (32-bit RGBA, as in the paper).
BYTES_PER_TEXEL = 4


@dataclass(frozen=True)
class MipmapLevel:
    """Dimensions of one mipmap level, in texels."""

    width: int
    height: int

    @property
    def texels(self) -> int:
        return self.width * self.height


class MipmappedTexture:
    """A 2D texture with a full mipmap pyramid down to 1x1.

    Parameters
    ----------
    width, height:
        Level-0 dimensions in texels.  Must be powers of two (the usual
        constraint of the era's hardware, and what keeps block-linear
        addressing exact).
    """

    def __init__(self, width: int, height: int) -> None:
        for name, value in (("width", width), ("height", height)):
            if value < 1 or value & (value - 1):
                raise ConfigurationError(
                    f"texture {name} must be a positive power of two, got {value}"
                )
        self.width = width
        self.height = height
        self.levels: List[MipmapLevel] = []
        w, h = width, height
        while True:
            self.levels.append(MipmapLevel(w, h))
            if w == 1 and h == 1:
                break
            w = max(1, w // 2)
            h = max(1, h // 2)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def level(self, index: int) -> MipmapLevel:
        """Dimensions of level ``index`` (clamped to the last level)."""
        return self.levels[min(index, self.num_levels - 1)]

    def total_texels(self) -> int:
        """Texels over the whole pyramid."""
        return sum(level.texels for level in self.levels)

    def total_bytes(self) -> int:
        """Memory footprint of the whole pyramid."""
        return self.total_texels() * BYTES_PER_TEXEL

    def magnified(self, factor: int) -> "MipmappedTexture":
        """Return a copy with both dimensions multiplied by ``factor``.

        This is the magnification-removal scheme of Igehy et al. the
        paper applies to the Quake-derived scenes: enlarging a texture
        that the scene magnifies restores a realistic texel:pixel scale.
        ``factor`` must itself be a power of two.
        """
        if factor < 1 or factor & (factor - 1):
            raise ConfigurationError(f"magnification factor must be a power of two, got {factor}")
        return MipmappedTexture(self.width * factor, self.height * factor)

    def __repr__(self) -> str:
        return f"MipmappedTexture({self.width}x{self.height}, {self.num_levels} levels)"

"""Benchmark workloads.

The paper drives its simulator with triangle traces captured from
Quake1/Quake2/Half-Life demos and two micro-benchmarks.  Those traces
are not redistributable, so this package synthesises scenes whose
*measured* characteristics (Table 1 of the paper: screen size, pixels
rendered, depth complexity, triangle/texture counts, working-set size,
unique texel-to-fragment ratio, and spatially clustered depth
complexity) match each original benchmark.  Every phenomenon the paper
studies is a function of exactly those statistics.
"""

from repro.workloads.generator import ClusterSpec, SceneSpec, generate_scene
from repro.workloads.scenes import (
    SCENE_NAMES,
    SCENE_SPECS,
    build_scene,
    build_all_scenes,
)
from repro.workloads.magnify import remove_magnification
from repro.workloads.sequence import pan_sequence, translate_scene
from repro.workloads.vt import (
    VT_SCENE_NAMES,
    VT_SCENE_SPECS,
    VtSceneSpec,
    VtSequenceResult,
    run_vt_sequence,
)

__all__ = [
    "ClusterSpec",
    "SceneSpec",
    "generate_scene",
    "SCENE_NAMES",
    "SCENE_SPECS",
    "build_scene",
    "build_all_scenes",
    "remove_magnification",
    "pan_sequence",
    "translate_scene",
    "VT_SCENE_NAMES",
    "VT_SCENE_SPECS",
    "VtSceneSpec",
    "VtSequenceResult",
    "run_vt_sequence",
]

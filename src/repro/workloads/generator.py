"""Parametric synthetic-scene generator.

A scene is a population of textured *objects* — small grids of quads,
like the wall segments, props and characters of a game frame — placed
over the screen by a cluster mixture (depth complexity is spatially
clustered in real frames: "if a pixel has an important complexity, its
neighbors have too").  Objects are emitted cluster by cluster, which
also recreates the bursty submission order responsible for the local
load imbalance the triangle buffer must absorb (Section 8).

Every generator knob maps to a Table-1 column or a phenomenon knob:

=====================  =====================================================
``depth_complexity``   pixels rendered / screen area (overdraw)
``pixels_per_triangle``triangle size, hence the 25-pixel setup threshold
``num_textures``       texture table size
``texture_edges``      level-0 texture sizes (weighted mix)
``texel_scale``        texels per pixel: <1 magnified, ~1 matched, >1 minified;
                       with the texture sizes this sets the unique
                       texel-to-fragment ratio (small textures wrap and repeat)
``clusters``           hotspot count/size/weight: global load imbalance
=====================  =====================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geometry.scene import Scene
from repro.geometry.triangle import Triangle
from repro.geometry.vertex import Vertex
from repro.texture.texture import MipmappedTexture


@dataclass(frozen=True)
class ClusterSpec:
    """Spatial clustering of objects over the screen.

    ``count`` hotspots; an object joins a hotspot with probability
    ``weight`` (else it lands uniformly), scattered around the hotspot
    centre with standard deviation ``sigma_fraction`` of the screen's
    short edge.
    """

    count: int = 4
    weight: float = 0.6
    sigma_fraction: float = 0.08

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigurationError(f"cluster count must be >= 0, got {self.count}")
        if not 0.0 <= self.weight <= 1.0:
            raise ConfigurationError(f"cluster weight must be in [0, 1], got {self.weight}")
        if self.sigma_fraction <= 0:
            raise ConfigurationError(
                f"cluster sigma must be positive, got {self.sigma_fraction}"
            )


@dataclass(frozen=True)
class SceneSpec:
    """Full-scale description of one synthetic benchmark scene."""

    name: str
    screen_width: int
    screen_height: int
    depth_complexity: float
    pixels_per_triangle: float
    num_textures: int
    #: Weighted mix of level-0 texture edges: ((edge, weight), ...).
    texture_edges: Tuple[Tuple[int, float], ...]
    #: Median texels-per-pixel scale of the texture mappings.
    texel_scale: float
    #: Log-normal spread of the per-object texel scale.
    texel_scale_spread: float = 0.35
    #: Fraction of each texture's extent object origins are drawn from;
    #: below 1.0 objects sharing a texture overlap in texel space,
    #: raising reuse (lowering the unique texel/fragment ratio).
    texture_window: float = 1.0
    clusters: ClusterSpec = ClusterSpec()
    #: Quads per object edge (an object is a grid of quads).
    object_grid: int = 3
    #: Log-normal spread of object sizes.
    object_size_spread: float = 0.3
    #: Fraction of objects rotated by a random angle.
    rotated_fraction: float = 0.3
    #: Triangle submission order: "clustered" (objects of one hotspot
    #: arrive together, like a BSP walk — the default and the source of
    #: bursty local load), "raster" (sorted by screen position, like a
    #: tiled renderer's replay) or "random" (fully shuffled).
    emit_order: str = "clustered"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.depth_complexity <= 0:
            raise ConfigurationError("depth complexity must be positive")
        if self.pixels_per_triangle <= 0:
            raise ConfigurationError("pixels per triangle must be positive")
        if self.num_textures < 1:
            raise ConfigurationError("a scene needs at least one texture")
        if not self.texture_edges:
            raise ConfigurationError("texture_edges must list at least one (edge, weight)")
        if self.texel_scale <= 0:
            raise ConfigurationError("texel scale must be positive")
        if self.object_grid < 1:
            raise ConfigurationError("object grid must be >= 1")
        if not 0 < self.texture_window <= 1:
            raise ConfigurationError("texture window must be in (0, 1]")
        if self.emit_order not in ("clustered", "raster", "random"):
            raise ConfigurationError(
                f"emit_order must be clustered/raster/random, got {self.emit_order!r}"
            )

    def scaled(self, scale: float) -> "SceneSpec":
        """Shrink the scene to a linear ``scale`` in (0, 1].

        The screen and object *count* shrink (pixel count goes as
        ``scale**2``) while per-pixel quantities — triangle size, texel
        scale, texture dimensions — stay fixed, because the cache-line
        footprint and the 25-pixel setup threshold live in absolute
        pixels.  The texture count shrinks only linearly: shrinking it
        quadratically would collapse texture diversity (and with it the
        per-texture reuse statistics) at small scales.
        """
        if not 0 < scale <= 1:
            raise ConfigurationError(f"scene scale must be in (0, 1], got {scale}")
        if scale == 1:
            return self
        return replace(
            self,
            name=self.name,
            screen_width=max(64, round(self.screen_width * scale)),
            screen_height=max(64, round(self.screen_height * scale)),
            num_textures=max(1, round(self.num_textures * scale)),
        )


def _make_textures(spec: SceneSpec, rng: np.random.Generator) -> List[MipmappedTexture]:
    edges = np.array([edge for edge, _ in spec.texture_edges])
    weights = np.array([weight for _, weight in spec.texture_edges], dtype=float)
    weights /= weights.sum()
    chosen = rng.choice(edges, size=spec.num_textures, p=weights)
    return [MipmappedTexture(int(edge), int(edge)) for edge in chosen]


def _cluster_centres(spec: SceneSpec, rng: np.random.Generator) -> np.ndarray:
    if spec.clusters.count == 0:
        return np.zeros((0, 2))
    centres = rng.uniform(
        [0.1 * spec.screen_width, 0.1 * spec.screen_height],
        [0.9 * spec.screen_width, 0.9 * spec.screen_height],
        size=(spec.clusters.count, 2),
    )
    return centres


def _object_centres(
    spec: SceneSpec, count: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample object centres; returns (centres, cluster_of_object)."""
    centres = np.empty((count, 2))
    cluster_of = np.full(count, -1, dtype=np.int64)
    hotspots = _cluster_centres(spec, rng)
    sigma = spec.clusters.sigma_fraction * min(spec.screen_width, spec.screen_height)
    clustered = (
        np.zeros(count, dtype=bool)
        if len(hotspots) == 0
        else rng.random(count) < spec.clusters.weight
    )
    n_clustered = int(clustered.sum())
    if n_clustered:
        which = rng.integers(0, len(hotspots), size=n_clustered)
        cluster_of[clustered] = which
        centres[clustered] = hotspots[which] + rng.normal(0, sigma, size=(n_clustered, 2))
    uniform = ~clustered
    centres[uniform] = rng.uniform(
        [0, 0], [spec.screen_width, spec.screen_height], size=(int(uniform.sum()), 2)
    )
    np.clip(centres[:, 0], 1, spec.screen_width - 1, out=centres[:, 0])
    np.clip(centres[:, 1], 1, spec.screen_height - 1, out=centres[:, 1])
    return centres, cluster_of


def _visible_area(corners: List[Tuple[float, float]], width: int, height: int) -> float:
    """Area of a convex polygon clipped to the screen (Sutherland-Hodgman)."""
    polygon = corners
    for axis, bound, keep_below in (
        (0, 0.0, False),
        (0, float(width), True),
        (1, 0.0, False),
        (1, float(height), True),
    ):
        if not polygon:
            return 0.0
        clipped: List[Tuple[float, float]] = []
        for index, current in enumerate(polygon):
            previous = polygon[index - 1]
            cur_in = current[axis] <= bound if keep_below else current[axis] >= bound
            prev_in = previous[axis] <= bound if keep_below else previous[axis] >= bound
            if cur_in != prev_in:
                t = (bound - previous[axis]) / (current[axis] - previous[axis])
                clipped.append(
                    (
                        previous[0] + t * (current[0] - previous[0]),
                        previous[1] + t * (current[1] - previous[1]),
                    )
                )
            if cur_in:
                clipped.append(current)
        polygon = clipped
    area = 0.0
    for index, (x1, y1) in enumerate(polygon):
        x2, y2 = polygon[(index + 1) % len(polygon)]
        area += x1 * y2 - x2 * y1
    return abs(area) * 0.5


@dataclass(frozen=True)
class _ObjectParams:
    """One sampled object, before emission."""

    centre_x: float
    centre_y: float
    cluster: int
    texture_id: int
    quad_edge: float
    texel_scale: float
    angle: float
    u_origin: float
    v_origin: float
    depth: float


def _sample_object(
    spec: SceneSpec,
    rng: np.random.Generator,
    centre: np.ndarray,
    cluster: int,
    texture_id: int,
    texture: MipmappedTexture,
) -> _ObjectParams:
    quad_edge = math.sqrt(2.0 * spec.pixels_per_triangle)
    quad_edge *= rng.lognormal(0.0, spec.object_size_spread)
    angle = rng.uniform(0, 2 * math.pi) if rng.random() < spec.rotated_fraction else 0.0
    return _ObjectParams(
        centre_x=float(centre[0]),
        centre_y=float(centre[1]),
        cluster=cluster,
        texture_id=texture_id,
        quad_edge=quad_edge,
        texel_scale=spec.texel_scale * rng.lognormal(0.0, spec.texel_scale_spread),
        angle=angle,
        u_origin=rng.uniform(0, texture.width * spec.texture_window),
        v_origin=rng.uniform(0, texture.height * spec.texture_window),
        depth=rng.uniform(1.0, 100.0),
    )


def _object_corners(params: _ObjectParams, grid: int) -> List[Tuple[float, float]]:
    """Screen-space outline of the object (its four rotated corners)."""
    half = 0.5 * grid * params.quad_edge
    cos_a, sin_a = math.cos(params.angle), math.sin(params.angle)
    outline = []
    for lx, ly in ((-half, -half), (half, -half), (half, half), (-half, half)):
        outline.append(
            (
                params.centre_x + cos_a * lx - sin_a * ly,
                params.centre_y + sin_a * lx + cos_a * ly,
            )
        )
    return outline


def _emit_object(scene: Scene, spec: SceneSpec, params: _ObjectParams) -> None:
    """Append one object (a grid of textured quads) to the scene."""
    grid = spec.object_grid
    half = 0.5 * grid * params.quad_edge
    # Texels the object's full extent walks; the mapping is affine, so
    # per-quad deltas follow directly.  When the walk exceeds the
    # texture edge the coordinates wrap (GL_REPEAT) — small, heavily
    # repeated textures are how the Quake-derived scenes reach unique
    # texel/fragment ratios far below 1.
    du = params.texel_scale * params.quad_edge
    cos_a, sin_a = math.cos(params.angle), math.sin(params.angle)

    def corner(ix: int, iy: int) -> Vertex:
        local_x = ix * params.quad_edge - half
        local_y = iy * params.quad_edge - half
        x = params.centre_x + cos_a * local_x - sin_a * local_y
        y = params.centre_y + sin_a * local_x + cos_a * local_y
        return Vertex(
            x, y, params.u_origin + ix * du, params.v_origin + iy * du,
            z=params.depth,
        )

    corners = [[corner(ix, iy) for ix in range(grid + 1)] for iy in range(grid + 1)]
    for iy in range(grid):
        for ix in range(grid):
            v00 = corners[iy][ix]
            v10 = corners[iy][ix + 1]
            v01 = corners[iy + 1][ix]
            v11 = corners[iy + 1][ix + 1]
            scene.add(Triangle(v00, v10, v01, texture=params.texture_id))
            scene.add(Triangle(v10, v11, v01, texture=params.texture_id))


def generate_scene(spec: SceneSpec, scale: float = 1.0) -> Scene:
    """Generate the scene described by ``spec`` at a linear ``scale``.

    Deterministic for a given (spec, scale).  Objects are sampled until
    the estimated *visible* (screen-clipped) area reaches the depth-
    complexity target, so edge clipping does not deflate overdraw.
    """
    spec = spec.scaled(scale)
    rng = np.random.default_rng(spec.seed)
    textures = _make_textures(spec, rng)
    scene = Scene(spec.name, spec.screen_width, spec.screen_height, textures)

    target_pixels = spec.depth_complexity * spec.screen_width * spec.screen_height
    hotspots = _cluster_centres(spec, rng)
    sigma = spec.clusters.sigma_fraction * min(spec.screen_width, spec.screen_height)

    objects: List[_ObjectParams] = []
    visible = 0.0
    # Hard cap: generous headroom over the analytic object count, in
    # case a pathological spec never accumulates enough visible area.
    expected = target_pixels / (2.0 * spec.object_grid**2 * spec.pixels_per_triangle)
    cap = max(8, int(20 * expected * (2 * spec.object_grid**2)))
    while visible < target_pixels and len(objects) < cap:
        if len(hotspots) and rng.random() < spec.clusters.weight:
            cluster = int(rng.integers(0, len(hotspots)))
            centre = hotspots[cluster] + rng.normal(0, sigma, size=2)
        else:
            cluster = -1
            centre = rng.uniform(
                [0, 0], [spec.screen_width, spec.screen_height], size=2
            )
        centre[0] = min(max(centre[0], 1.0), spec.screen_width - 1.0)
        centre[1] = min(max(centre[1], 1.0), spec.screen_height - 1.0)
        texture_id = int(rng.integers(0, len(textures)))
        params = _sample_object(
            spec, rng, centre, cluster, texture_id, textures[texture_id]
        )
        objects.append(params)
        visible += _visible_area(
            _object_corners(params, spec.object_grid),
            spec.screen_width,
            spec.screen_height,
        )

    # Submission order shapes the burstiness of per-node load (Sec. 8).
    if spec.emit_order == "clustered":
        # Spatially close objects arrive together, like a game engine
        # walking its BSP/portal structure.
        objects.sort(key=lambda params: params.cluster)
    elif spec.emit_order == "raster":
        objects.sort(key=lambda params: (params.centre_y, params.centre_x))
    else:  # random
        rng.shuffle(objects)
    for params in objects:
        _emit_object(scene, spec, params)
    # Content identity for the artifact pipeline: the scaled spec fixes
    # every generator input (including the scale, via the screen size),
    # so equal keys mean bit-identical scenes across processes.
    from repro.pipeline.keys import spec_fingerprint

    scene.artifact_key = f"{spec.name}#{spec_fingerprint(spec)}"
    return scene


def texture_table_bytes(textures: Sequence[MipmappedTexture]) -> int:
    """Total texture memory of a texture table, pyramids included."""
    return sum(texture.total_bytes() for texture in textures)

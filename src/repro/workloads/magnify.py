"""Texture magnification removal (the Igehy et al. scheme).

Quake-era games allocate small textures, so many appear magnified on
screen; magnified textures have an artificially high cache locality
that the paper deems unrepresentative of future workloads.  The fix
(Section 4.2): multiply the texture's width and height by a power of
two and scale the texture coordinates to match, restoring a realistic
texel-to-pixel scale.  Mipmapped minified textures are unaffected.

In this parametric reproduction the scheme acts on a
:class:`~repro.workloads.generator.SceneSpec`: texture edges and the
texel scale are both multiplied by the factor, which is exactly what
enlarging every magnified texture does to the generator's statistics.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigurationError
from repro.workloads.generator import SceneSpec


def remove_magnification(spec: SceneSpec, factor: int) -> SceneSpec:
    """Return ``spec`` with magnification reduced by ``factor``.

    ``factor`` must be a power of two (texture edges must stay powers
    of two).  Texel scales already at or above 1 texel/pixel would be
    pushed into deeper minification, mirroring how the paper's scheme
    "only affects textures that are magnified" — mipmapping keeps the
    cache behaviour of minified textures unchanged, so we leave any
    mapping already minified (scale >= 1) alone.
    """
    if factor < 1 or factor & (factor - 1):
        raise ConfigurationError(f"magnification factor must be a power of two, got {factor}")
    if factor == 1 or spec.texel_scale >= 1.0:
        return spec
    applied = min(factor, _next_power_of_two(1.0 / spec.texel_scale))
    edges = tuple((edge * applied, weight) for edge, weight in spec.texture_edges)
    return replace(
        spec,
        name=f"{spec.name}_x{factor}",
        texture_edges=edges,
        texel_scale=spec.texel_scale * applied,
    )


def _next_power_of_two(value: float) -> int:
    power = 1
    while power < value:
        power *= 2
    return power

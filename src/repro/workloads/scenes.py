"""The seven benchmark scenes of Table 1.

Parameters are calibrated against the paper's Table 1: screen size,
depth complexity and pixels-per-triangle are taken directly from the
table; texture counts/sizes and texel scales are set so the measured
working set, unique texel-to-fragment ratio and cache behaviour land in
the right regime per scene (see EXPERIMENTS.md for measured vs. paper).

Regimes that matter downstream:

* ``room3`` — huge triangle count, small triangles, deep overdraw.
* ``teapot_full`` — one large minified texture: compulsory-miss heavy,
  the high-ratio curve family of Figure 6.
* ``quake`` — minified after x4 magnification removal, many textures.
* ``massive1_1255`` / ``massive32_1255`` — the SPEC Quake2 frame at x2
  and x32 magnification removal; small repeated textures.
* ``blowout775`` — tiny working set, heavily repeated textures: the
  scene whose ratio *improves* with more processors.
* ``truc640`` — the Figure-8 buffering scene.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.errors import ConfigurationError
from repro.geometry.scene import Scene
from repro.workloads.generator import ClusterSpec, SceneSpec, generate_scene

SCENE_SPECS: Dict[str, SceneSpec] = {
    "room3": SceneSpec(
        name="room3",
        screen_width=1280,
        screen_height=1024,
        depth_complexity=9.9,
        pixels_per_triangle=80.0,
        num_textures=24,
        texture_edges=((128, 0.7), (256, 0.3)),
        texel_scale=0.42,
        texel_scale_spread=0.4,
        clusters=ClusterSpec(count=5, weight=0.7, sigma_fraction=0.06),
        object_grid=4,
        seed=101,
    ),
    "teapot_full": SceneSpec(
        name="teapot_full",
        screen_width=1280,
        screen_height=1024,
        depth_complexity=2.1,
        pixels_per_triangle=280.0,
        num_textures=1,
        texture_edges=((1024, 1.0),),
        texel_scale=2.1,
        texel_scale_spread=0.15,
        texture_window=0.02,
        clusters=ClusterSpec(count=1, weight=0.85, sigma_fraction=0.10),
        object_grid=4,
        seed=102,
    ),
    "quake": SceneSpec(
        name="quake",
        screen_width=1152,
        screen_height=870,
        depth_complexity=1.9,
        pixels_per_triangle=270.0,
        num_textures=954,
        texture_edges=((64, 0.6), (128, 0.4)),
        texel_scale=1.1,
        texel_scale_spread=0.3,
        clusters=ClusterSpec(count=3, weight=0.5, sigma_fraction=0.12),
        object_grid=2,
        seed=103,
    ),
    "massive1_1255": SceneSpec(
        name="massive1_1255",
        screen_width=1600,
        screen_height=1200,
        depth_complexity=4.1,
        pixels_per_triangle=615.0,
        num_textures=1055,
        texture_edges=((16, 0.7), (32, 0.25), (64, 0.05)),
        texel_scale=0.9,
        texel_scale_spread=0.35,
        clusters=ClusterSpec(count=4, weight=0.65, sigma_fraction=0.08),
        object_grid=3,
        seed=104,
    ),
    "massive32_1255": SceneSpec(
        name="massive32_1255",
        screen_width=1600,
        screen_height=1200,
        depth_complexity=4.1,
        pixels_per_triangle=615.0,
        num_textures=1055,
        texture_edges=((32, 0.45), (64, 0.4), (128, 0.15)),
        texel_scale=1.05,
        texel_scale_spread=0.35,
        clusters=ClusterSpec(count=4, weight=0.65, sigma_fraction=0.08),
        object_grid=3,
        seed=104,
    ),
    "blowout775": SceneSpec(
        name="blowout775",
        screen_width=1600,
        screen_height=1200,
        depth_complexity=3.0,
        pixels_per_triangle=992.0,
        num_textures=1778,
        texture_edges=((16, 0.6), (32, 0.4)),
        texel_scale=0.75,
        texel_scale_spread=0.3,
        clusters=ClusterSpec(count=4, weight=0.6, sigma_fraction=0.09),
        object_grid=3,
        seed=105,
    ),
    "truc640": SceneSpec(
        name="truc640",
        screen_width=1600,
        screen_height=1200,
        depth_complexity=4.3,
        pixels_per_triangle=680.0,
        num_textures=1530,
        texture_edges=((16, 0.5), (32, 0.35), (64, 0.15)),
        texel_scale=0.9,
        texel_scale_spread=0.35,
        clusters=ClusterSpec(count=5, weight=0.65, sigma_fraction=0.07),
        object_grid=3,
        seed=106,
    ),
}

#: A Viewperf-like CAD frame — NOT one of the paper's benchmarks.  The
#: paper rejects the SPEC Viewperf suite as unrepresentative of virtual
#: reality texture mapping (Section 4.2): CAD frames have huge flat
#: triangles, almost no overdraw and trivial texture working sets.
#: This spec exists so the contrast experiment can show *why* those
#: scenes cannot exercise a texture-cache study.
CAD_CONTRAST_SPEC = SceneSpec(
    name="viewperf_cad",
    screen_width=1280,
    screen_height=1024,
    depth_complexity=1.3,
    pixels_per_triangle=2400.0,
    num_textures=2,
    texture_edges=((64, 1.0),),
    texel_scale=0.15,
    texel_scale_spread=0.2,
    clusters=ClusterSpec(count=1, weight=0.3, sigma_fraction=0.2),
    object_grid=2,
    rotated_fraction=0.6,
    seed=107,
)

#: Paper order, as the tables print them.
SCENE_NAMES = (
    "room3",
    "teapot_full",
    "quake",
    "massive1_1255",
    "massive32_1255",
    "blowout775",
    "truc640",
)

#: Environment variable overriding the default experiment scale.
SCALE_ENV_VAR = "REPRO_SCALE"
#: Default linear scale experiments run at (1.0 == the paper's frames).
DEFAULT_SCALE = 0.25

def experiment_scale() -> float:
    """Linear scene scale for experiments (REPRO_SCALE overrides)."""
    raw = os.environ.get(SCALE_ENV_VAR)
    if raw is None:
        return DEFAULT_SCALE
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ConfigurationError(f"{SCALE_ENV_VAR} must be a float, got {raw!r}") from exc
    if not 0 < scale <= 1:
        raise ConfigurationError(f"{SCALE_ENV_VAR} must be in (0, 1], got {scale}")
    return scale


def build_scene(name: str, scale: float = 1.0, cache: bool = True) -> Scene:
    """Build a named benchmark scene.

    Memoised per (name, scale) through the artifact pipeline's scene
    stage — repeated builds in one process return the same object, and
    with a ``REPRO_ARTIFACT_DIR`` configured, worker processes hydrate
    the generated scene from disk instead of regenerating it.
    ``cache=False`` bypasses the store and always regenerates.
    """
    if name not in SCENE_SPECS:
        raise ConfigurationError(
            f"unknown scene {name!r}; choose from {', '.join(SCENE_NAMES)}"
        )
    if not cache:
        return generate_scene(SCENE_SPECS[name], scale=scale)
    from repro.pipeline import scene_artifact

    return scene_artifact(name, scale)


def build_all_scenes(scale: float = 1.0) -> List[Scene]:
    """All seven benchmark scenes, in paper order."""
    return [build_scene(name, scale) for name in SCENE_NAMES]

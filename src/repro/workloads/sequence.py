"""Frame sequences: animating a scene for inter-frame studies.

The paper's future work reasons about a user translating the viewpoint
between frames: "If this translation was greater than the tile size,
the L2 would reload different textures in the next frame and the
efficiency would be reduced."  A :func:`pan_sequence` builds exactly
that stimulus: the same world, re-rendered each frame with the camera
panned by a fixed pixel offset, so an object's pixels (and its texels)
migrate across tile — and therefore processor — boundaries.

The world is generated on a canvas enlarged by the total pan, so new
content genuinely enters the screen while old content leaves — a pure
translate of a screen-sized scene would just drain it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.errors import ConfigurationError
from repro.geometry.scene import Scene
from repro.geometry.triangle import Triangle
from repro.workloads.generator import SceneSpec, generate_scene


def translate_scene(scene: Scene, dx: float, dy: float, name: str = "",
                    width: int = 0, height: int = 0) -> Scene:
    """A copy of ``scene`` with every triangle moved by ``(dx, dy)``.

    ``width``/``height`` optionally re-window the screen (0 keeps the
    source dimensions).  Texture coordinates are untouched: the same
    world surface keeps the same texels, which is what makes
    inter-frame texture locality exist at all.
    """
    moved = Scene(
        name or scene.name,
        width or scene.width,
        height or scene.height,
        scene.textures,
    )
    for triangle in scene.triangles:
        moved.add(
            Triangle(
                triangle.v0.translated(dx, dy),
                triangle.v1.translated(dx, dy),
                triangle.v2.translated(dx, dy),
                texture=triangle.texture,
            )
        )
    return moved


def pan_sequence(
    spec: SceneSpec,
    scale: float,
    frames: int,
    dx_per_frame: int,
    dy_per_frame: int = 0,
) -> List[Scene]:
    """Render ``frames`` frames of a camera panning over a wider world.

    Frame ``k`` shows the world window starting at pixel offset
    ``(k * dx_per_frame, k * dy_per_frame)``.  All frames share the
    same texture table and triangle identities shifted in screen space,
    exactly what a viewpoint translation produces.
    """
    if frames < 1:
        raise ConfigurationError(f"need at least one frame, got {frames}")
    if dx_per_frame < 0 or dy_per_frame < 0:
        raise ConfigurationError("pan offsets must be non-negative")

    scaled = spec.scaled(scale)
    margin_x = dx_per_frame * (frames - 1)
    margin_y = dy_per_frame * (frames - 1)
    # Generate the world on the enlarged canvas, holding density
    # constant (depth complexity is per-pixel, so it carries over).
    world_spec = replace(
        scaled,
        screen_width=scaled.screen_width + margin_x,
        screen_height=scaled.screen_height + margin_y,
    )
    world = generate_scene(world_spec, scale=1.0)

    sequence: List[Scene] = []
    for frame in range(frames):
        offset_x = frame * dx_per_frame
        offset_y = frame * dy_per_frame
        sequence.append(
            translate_scene(
                world,
                -float(offset_x),
                -float(offset_y),
                name=f"{spec.name}@f{frame}",
                width=scaled.screen_width,
                height=scaled.screen_height,
            )
        )
    return sequence

"""The virtual-texturing workload family.

Extends the Table-1 scene vocabulary with the knobs virtual texturing
adds — page size, residency fraction, and a feedback-driven paging
loop over a :func:`~repro.workloads.sequence.pan_sequence` — and runs
whole pan sequences through the machine simulator with the page table
(:mod:`repro.texture.pages`) spliced between the trilinear filter and
the texture caches.

Per frame of a sequence:

1. the frame is simulated with the page table **frozen** — every
   node's cache replay sees translated (physical) line addresses, and
   faulted accesses collapse onto the shared fallback frame;
2. the same frame's single-processor baseline runs through the same
   frozen table, so the speedup isolates the distribution;
3. the frame's fragment stream is observed **in submission order**
   (distribution-independent) to collect touch/fault feedback;
4. ``advance_frame`` applies the feedback: faulted pages page in,
   least-recently-touched residents evict — residency for frame k+1.

Because feedback is drawn from the global submission-order stream, the
residency trajectory is identical across distributions: the VT family
re-asks the paper's question (which distribution wins?) with the
texture system changed, not with a different paging history per
machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Union

from repro.cache.stream import DEFAULT_CHUNK
from repro.errors import ConfigurationError
from repro.geometry.scene import Scene
from repro.raster.fragments import FragmentBuffer
from repro.texture.filtering import TrilinearFilter
from repro.texture.pages import PageTable, VirtualTextureConfig
from repro.workloads.generator import SceneSpec
from repro.workloads.sequence import pan_sequence


@dataclass(frozen=True)
class VtSceneSpec:
    """A Table-1 scene extended with virtual-texturing knobs.

    ``base`` names the Table-1 :class:`SceneSpec` the frames derive
    from; ``texture_magnify`` scales its level-0 texture edges up so
    the virtual working set genuinely exceeds the resident fraction
    (Quake-era textures fit a half-resident table too comfortably to
    fault).  ``frames``/``pan_dx``/``pan_dy`` shape the pan sequence
    the paging feedback loop runs over.
    """

    name: str
    base: str
    page_lines: int = 16
    residency: float = 0.5
    frames: int = 3
    pan_dx: int = 32
    pan_dy: int = 0
    texture_magnify: int = 1

    def __post_init__(self) -> None:
        if self.frames < 1:
            raise ConfigurationError(f"need at least one frame, got {self.frames}")
        if self.pan_dx < 0 or self.pan_dy < 0:
            raise ConfigurationError("pan offsets must be non-negative")
        if self.texture_magnify < 1:
            raise ConfigurationError(
                f"texture_magnify must be >= 1, got {self.texture_magnify}"
            )
        # Validates page_lines/residency with the model's own rules.
        VirtualTextureConfig(self.page_lines, self.residency)

    def vt_config(
        self,
        page_lines: Optional[int] = None,
        residency: Optional[float] = None,
    ) -> VirtualTextureConfig:
        """The page-table configuration, with optional overrides."""
        return VirtualTextureConfig(
            page_lines if page_lines is not None else self.page_lines,
            residency if residency is not None else self.residency,
        )

    def scene_spec(self) -> SceneSpec:
        """The underlying generator spec (textures magnified, renamed)."""
        from repro.workloads.scenes import SCENE_SPECS

        if self.base not in SCENE_SPECS:
            raise ConfigurationError(
                f"unknown base scene {self.base!r} for VT spec {self.name!r}"
            )
        spec = SCENE_SPECS[self.base]
        if self.texture_magnify > 1:
            edges = tuple(
                (edge * self.texture_magnify, weight)
                for edge, weight in spec.texture_edges
            )
            spec = replace(spec, texture_edges=edges)
        return replace(spec, name=self.name)


#: The VT scene family: Table-1 statistics plus VT knobs.
VT_SCENE_SPECS: Dict[str, VtSceneSpec] = {
    "vt-quake": VtSceneSpec(
        name="vt-quake", base="quake", texture_magnify=2, residency=0.5, pan_dx=32
    ),
    "vt-teapot": VtSceneSpec(
        name="vt-teapot", base="teapot_full", residency=0.25, pan_dx=48
    ),
    "vt-truc640": VtSceneSpec(
        name="vt-truc640", base="truc640", texture_magnify=2, residency=0.5, pan_dx=32
    ),
}

VT_SCENE_NAMES = tuple(VT_SCENE_SPECS)


def require_vt_spec(name: str) -> VtSceneSpec:
    if name not in VT_SCENE_SPECS:
        raise ConfigurationError(
            f"unknown VT scene {name!r}; choose from {', '.join(VT_SCENE_NAMES)}"
        )
    return VT_SCENE_SPECS[name]


def vt_frames(spec: VtSceneSpec, scale: float) -> List[Scene]:
    """The spec's pan-sequence frames (shared world, shared textures)."""
    return pan_sequence(spec.scene_spec(), scale, spec.frames, spec.pan_dx, spec.pan_dy)


def observe_frame(
    table: PageTable,
    tex_filter: TrilinearFilter,
    fragments: FragmentBuffer,
    chunk_size: int = DEFAULT_CHUNK,
) -> None:
    """Feed one frame's submission-order access stream into the table.

    Chunked like the cache replay so peak memory stays bounded; the
    table's feedback accumulation is split-invariant, so the chunk
    size cannot change the residency trajectory.
    """
    n = len(fragments)
    for start in range(0, n, chunk_size):
        stop = min(n, start + chunk_size)
        lines = tex_filter.line_addresses(
            fragments.u[start:stop],
            fragments.v[start:stop],
            fragments.level[start:stop],
            fragments.texture[start:stop],
        )
        table.observe(lines.reshape(-1))


@dataclass
class VtFrameResult:
    """One frame of a VT sequence: machine metrics plus paging stats."""

    frame: int
    scene_name: str
    cycles: float
    baseline_cycles: float
    miss_rate: float
    texel_to_fragment: float
    #: The frame's paging stats from :meth:`PageTable.advance_frame`.
    vt: Dict[str, int]
    result: object = field(repr=False, default=None)

    @property
    def speedup(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.baseline_cycles / self.cycles

    @property
    def fault_rate(self) -> float:
        accesses = self.vt.get("access_count", 0)
        if not accesses:
            return 0.0
        return self.vt.get("fault_accesses", 0) / accesses


@dataclass
class VtSequenceResult:
    """A whole pan sequence through one machine configuration."""

    spec: VtSceneSpec
    vt: VirtualTextureConfig
    distribution: str
    num_pages: int
    num_resident: int
    frames: List[VtFrameResult]

    @property
    def total_cycles(self) -> float:
        return sum(frame.cycles for frame in self.frames)

    @property
    def total_baseline_cycles(self) -> float:
        return sum(frame.baseline_cycles for frame in self.frames)

    @property
    def final(self) -> VtFrameResult:
        return self.frames[-1]

    @property
    def mean_fault_rate(self) -> float:
        if not self.frames:
            return 0.0
        return sum(frame.fault_rate for frame in self.frames) / len(self.frames)

    @property
    def total_paged_in(self) -> int:
        return sum(frame.vt.get("paged_in", 0) for frame in self.frames)

    def summary(self) -> str:
        lines = [
            f"{self.spec.name} [{self.distribution}] "
            f"{self.vt.describe()} ({self.num_resident}/{self.num_pages} pages)"
        ]
        for frame in self.frames:
            lines.append(
                f"  f{frame.frame}: cycles={frame.cycles:.0f} "
                f"speedup={frame.speedup:.2f} miss={frame.miss_rate:.4f} "
                f"faults={frame.vt.get('fault_accesses', 0)} "
                f"({frame.fault_rate:.4f}) paged_in={frame.vt.get('paged_in', 0)}"
            )
        lines.append(
            f"  total cycles={self.total_cycles:.0f} "
            f"mean fault rate={self.mean_fault_rate:.4f} "
            f"paged in={self.total_paged_in}"
        )
        return "\n".join(lines)


def run_vt_sequence(
    spec: Union[VtSceneSpec, str],
    machine: Optional[Mapping[str, object]] = None,
    scale: float = 0.25,
    page_lines: Optional[int] = None,
    residency: Optional[float] = None,
    frames: Optional[int] = None,
    chunk_size: Optional[int] = None,
    scenes: Optional[List[Scene]] = None,
) -> VtSequenceResult:
    """Run one VT pan sequence through one machine configuration.

    ``machine`` is the same vocabulary as :mod:`repro.analysis.batch`
    entries (``family``/``processors``/``size``/``cache``/...);
    ``page_lines``/``residency``/``frames`` override the spec's VT
    knobs; ``scenes`` lets sweep drivers share prebuilt pan frames
    across the (page, residency, family) grid — frames depend only on
    (spec, scale), never on the VT or machine point.
    """
    from repro.analysis.batch import distribution_from_spec, machine_config_from_spec
    from repro.core.machine import simulate_machine
    from repro.core.routing import build_routed_work
    from repro.distribution.single import SingleProcessor

    if isinstance(spec, str):
        spec = require_vt_spec(spec)
    if frames is not None:
        spec = replace(spec, frames=frames)
    machine_spec = dict(machine or {})
    machine_spec.setdefault("family", "block")
    machine_spec.setdefault("processors", 16)

    sequence = scenes if scenes is not None else vt_frames(spec, scale)
    if len(sequence) < spec.frames:
        raise ConfigurationError(
            f"prebuilt sequence has {len(sequence)} frames, spec wants {spec.frames}"
        )
    sequence = sequence[: spec.frames]
    layout = sequence[0].memory_layout()
    tex_filter = TrilinearFilter(layout)
    table = PageTable(layout.total_lines, spec.vt_config(page_lines, residency))

    distribution = distribution_from_spec(machine_spec, sequence[0].height)
    config = machine_config_from_spec(machine_spec, distribution)
    solo = config.with_distribution(SingleProcessor())

    frame_results: List[VtFrameResult] = []
    for index, scene in enumerate(sequence):
        routed = build_routed_work(
            scene,
            distribution,
            cache_spec=config.cache,
            cache_config=config.cache_config,
            setup_cycles=config.setup_cycles,
            chunk_size=chunk_size,
            layout=layout,
            translator=table,
        )
        solo_routed = build_routed_work(
            scene,
            solo.distribution,
            cache_spec=solo.cache,
            cache_config=solo.cache_config,
            setup_cycles=solo.setup_cycles,
            chunk_size=chunk_size,
            layout=layout,
            translator=table,
        )
        baseline = simulate_machine(scene, solo, routed=solo_routed).cycles
        result = simulate_machine(
            scene, config, baseline_cycles=baseline, routed=routed
        )
        observe_frame(table, tex_filter, scene.fragments(), chunk_size or DEFAULT_CHUNK)
        stats = table.advance_frame()
        frame_results.append(
            VtFrameResult(
                frame=index,
                scene_name=scene.name,
                cycles=result.cycles,
                baseline_cycles=baseline,
                miss_rate=result.cache.miss_rate,
                texel_to_fragment=result.texel_to_fragment,
                vt=stats,
                result=result,
            )
        )

    return VtSequenceResult(
        spec=spec,
        vt=table.config,
        distribution=distribution.describe(),
        num_pages=table.num_pages,
        num_resident=int(table.resident_mask().sum()),
        frames=frame_results,
    )

"""Shared fixtures: small deterministic scenes and machines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.scene import Scene
from repro.geometry.triangle import Triangle
from repro.geometry.vertex import Vertex
from repro.texture.texture import MipmappedTexture


@pytest.fixture(autouse=True)
def _reset_observability():
    """Isolate tests from each other's metrics and tracing state."""
    yield
    from repro import obs

    obs.reset()


def quad(x0: float, y0: float, size: float, texture: int = 0, u0: float = 0.0,
         v0: float = 0.0, texel_scale: float = 1.0) -> list:
    """Two triangles forming an axis-aligned square, shared diagonal."""
    u1 = u0 + size * texel_scale
    v1 = v0 + size * texel_scale
    a = Vertex(x0, y0, u0, v0)
    b = Vertex(x0 + size, y0, u1, v0)
    c = Vertex(x0, y0 + size, u0, v1)
    d = Vertex(x0 + size, y0 + size, u1, v1)
    return [Triangle(a, b, c, texture=texture), Triangle(b, d, c, texture=texture)]


@pytest.fixture
def flat_scene() -> Scene:
    """A 64x64 screen fully tiled by 8x8 quads over one 64x64 texture.

    Every pixel is drawn exactly once and the texture mapping is the
    identity, which makes all the locality arithmetic predictable.
    """
    scene = Scene("flat", 64, 64, [MipmappedTexture(64, 64)])
    for y in range(0, 64, 8):
        for x in range(0, 64, 8):
            for tri in quad(x, y, 8, u0=float(x), v0=float(y)):
                scene.add(tri)
    return scene


@pytest.fixture
def overdraw_scene() -> Scene:
    """A small screen with a hotspot: one corner overdrawn 8 times."""
    scene = Scene("hotspot", 64, 64, [MipmappedTexture(32, 32)])
    for tri in quad(0, 0, 64):
        scene.add(tri)
    for layer in range(8):
        for tri in quad(2, 2, 16, u0=3.0 * layer, v0=5.0 * layer):
            scene.add(tri)
    return scene


@pytest.fixture
def tiny_bench_scene() -> Scene:
    """A miniature generated benchmark scene (deterministic)."""
    from repro.workloads.scenes import build_scene

    return build_scene("truc640", scale=0.0625)


def make_rng(seed: int = 7) -> np.random.Generator:
    return np.random.default_rng(seed)

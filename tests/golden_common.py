"""Shared helpers for the golden-value regression suite.

Both ``tests/test_golden.py`` and ``scripts/golden_check.py`` (the CI
job) import from here so the definition of a "golden point" — which
scenes, which machines, which metrics, and how they are computed —
lives in exactly one place.

A golden point is one (scene, distribution family, size, processors)
tuple simulated at a tiny deterministic scale.  Its metrics are stored
as JSON in ``tests/golden/<name>.json`` and compared with *exact*
equality: every quantity in the simulator is deterministic, and JSON
round-trips Python floats bit-exactly (``repr`` based), so any drift
is a real behaviour change, not noise.

Regenerate after an intentional change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from repro.analysis.batch import distribution_from_spec, machine_config_from_spec
from repro.core.machine import simulate_machine, single_processor_baseline
from repro.workloads.scenes import build_scene
from repro.workloads.vt import run_vt_sequence

#: Directory of committed golden JSON files.
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Environment variable that switches the suite into regeneration mode.
UPDATE_ENV_VAR = "REPRO_UPDATE_GOLDEN"

#: Linear scene scale the golden points run at (tiny but non-trivial).
GOLDEN_SCALE = 0.0625

#: (scene, family, size, processors) for every committed point.
GOLDEN_POINTS: Tuple[Tuple[str, str, int, int], ...] = tuple(
    (scene, family, size, processors)
    for scene in ("truc640", "blowout775", "quake")
    for family, size in (("block", 16), ("sli", 2))
    for processors in (1, 4)
)

#: Linear scale of the large points — half the paper's Table-1 frame,
#: affordable now that the hot path is array-native.
LARGE_SCALE = 0.5

#: Two points near Table-1 resolution; their files carry an ``_s<pct>``
#: suffix so the original small-scale names stay untouched.
LARGE_POINTS: Tuple[Tuple[str, str, int, int, float], ...] = (
    ("truc640", "block", 16, 4, LARGE_SCALE),
    ("blowout775", "sli", 2, 4, LARGE_SCALE),
)

#: Every committed point, normalised to (scene, family, size, processors, scale).
ALL_POINTS: Tuple[Tuple[str, str, int, int, float], ...] = (
    tuple((*point, GOLDEN_SCALE) for point in GOLDEN_POINTS) + LARGE_POINTS
)

#: Virtual-texturing points: (vt scene, family, size, processors, phase).
#: ``cold`` pins the first frame of the pan (cold residency, peak
#: faults); ``warm`` pins the last frame after the feedback loop has
#: chased the pan — together they freeze the whole residency
#: trajectory, since each frame's mapping feeds the next.
VT_POINTS: Tuple[Tuple[str, str, int, int, str], ...] = (
    ("vt-quake", "block", 16, 4, "cold"),
    ("vt-quake", "block", 16, 4, "warm"),
)


def point_name(
    scene: str, family: str, size: int, processors: int, scale: float = GOLDEN_SCALE
) -> str:
    name = f"{scene}_{family}{size}_p{processors}"
    if scale != GOLDEN_SCALE:
        name += f"_s{round(scale * 100)}"
    return name


def golden_path(
    scene: str, family: str, size: int, processors: int, scale: float = GOLDEN_SCALE
) -> Path:
    return GOLDEN_DIR / f"{point_name(scene, family, size, processors, scale)}.json"


def compute_point(
    scene: str, family: str, size: int, processors: int, scale: float = GOLDEN_SCALE
) -> Dict:
    """Simulate one golden point and distill its comparison metrics.

    Uses the same spec plumbing as the batch runner so the goldens pin
    the full path from spec dict to result, not just the timing model.
    """
    spec = {"family": family, "size": size, "processors": processors}
    built = build_scene(scene, scale=scale)
    distribution = distribution_from_spec(spec, built.height)
    config = machine_config_from_spec(spec, distribution)
    baseline = single_processor_baseline(built, config)
    result = simulate_machine(built, config, baseline_cycles=baseline)
    return {
        "scene": scene,
        "family": family,
        "size": size,
        "processors": processors,
        "scale": scale,
        "metrics": {
            "cycles": result.cycles,
            "baseline_cycles": baseline,
            "speedup": result.speedup,
            "texel_to_fragment": result.texel_to_fragment,
            "miss_rate": result.cache.miss_rate,
        },
    }


def vt_point_name(
    scene: str, family: str, size: int, processors: int, phase: str
) -> str:
    return f"{scene.replace('-', '_')}_{family}{size}_p{processors}_{phase}"


def vt_golden_path(
    scene: str, family: str, size: int, processors: int, phase: str
) -> Path:
    return GOLDEN_DIR / f"{vt_point_name(scene, family, size, processors, phase)}.json"


@lru_cache(maxsize=None)
def _vt_sequence(scene: str, family: str, size: int, processors: int):
    return run_vt_sequence(
        scene,
        {"family": family, "size": size, "processors": processors},
        scale=GOLDEN_SCALE,
    )


def compute_vt_point(
    scene: str, family: str, size: int, processors: int, phase: str
) -> Dict:
    """One frame of a VT pan sequence, distilled for exact comparison.

    ``cold`` is the sequence's first frame, ``warm`` its last; the
    sequence is computed once and shared between the two phases.
    """
    result = _vt_sequence(scene, family, size, processors)
    frame = result.frames[0] if phase == "cold" else result.frames[-1]
    return {
        "scene": scene,
        "family": family,
        "size": size,
        "processors": processors,
        "scale": GOLDEN_SCALE,
        "phase": phase,
        "vt_config": result.vt.describe(),
        "metrics": {
            "cycles": frame.cycles,
            "baseline_cycles": frame.baseline_cycles,
            "speedup": frame.speedup,
            "texel_to_fragment": frame.texel_to_fragment,
            "miss_rate": frame.miss_rate,
            "fault_accesses": frame.vt["fault_accesses"],
            "faulted_pages": frame.vt["faulted_pages"],
            "paged_in": frame.vt["paged_in"],
        },
    }


def write_golden(path: Path, document: Dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_golden(path: Path) -> Dict:
    return json.loads(path.read_text())


def update_requested() -> bool:
    return os.environ.get(UPDATE_ENV_VAR, "") not in ("", "0")


def iter_golden_files() -> Iterator[Path]:
    yield from sorted(GOLDEN_DIR.glob("*.json"))


def check_all() -> List[str]:
    """Recompute every golden point; return human-readable mismatches.

    Used by ``scripts/golden_check.py`` so CI fails with a list of
    drifted quantities rather than a bare assertion.
    """
    problems: List[str] = []
    checks = [
        (golden_path(*point), compute_point, point) for point in ALL_POINTS
    ] + [
        (vt_golden_path(*point), compute_vt_point, point) for point in VT_POINTS
    ]
    for path, compute, point in checks:
        if not path.exists():
            problems.append(f"missing golden file {path.name}")
            continue
        expected = load_golden(path)
        got = compute(*point)
        for key, want in expected["metrics"].items():
            have = got["metrics"].get(key)
            if have != want:
                problems.append(
                    f"{path.name}: {key} = {have!r}, golden says {want!r}"
                )
    return problems

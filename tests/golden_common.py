"""Shared helpers for the golden-value regression suite.

Both ``tests/test_golden.py`` and ``scripts/golden_check.py`` (the CI
job) import from here so the definition of a "golden point" — which
scenes, which machines, which metrics, and how they are computed —
lives in exactly one place.

A golden point is one (scene, distribution family, size, processors)
tuple simulated at a tiny deterministic scale.  Its metrics are stored
as JSON in ``tests/golden/<name>.json`` and compared with *exact*
equality: every quantity in the simulator is deterministic, and JSON
round-trips Python floats bit-exactly (``repr`` based), so any drift
is a real behaviour change, not noise.

Regenerate after an intentional change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from repro.analysis.batch import distribution_from_spec, machine_config_from_spec
from repro.core.machine import simulate_machine, single_processor_baseline
from repro.workloads.scenes import build_scene

#: Directory of committed golden JSON files.
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Environment variable that switches the suite into regeneration mode.
UPDATE_ENV_VAR = "REPRO_UPDATE_GOLDEN"

#: Linear scene scale the golden points run at (tiny but non-trivial).
GOLDEN_SCALE = 0.0625

#: (scene, family, size, processors) for every committed point.
GOLDEN_POINTS: Tuple[Tuple[str, str, int, int], ...] = tuple(
    (scene, family, size, processors)
    for scene in ("truc640", "blowout775", "quake")
    for family, size in (("block", 16), ("sli", 2))
    for processors in (1, 4)
)

#: Linear scale of the large points — half the paper's Table-1 frame,
#: affordable now that the hot path is array-native.
LARGE_SCALE = 0.5

#: Two points near Table-1 resolution; their files carry an ``_s<pct>``
#: suffix so the original small-scale names stay untouched.
LARGE_POINTS: Tuple[Tuple[str, str, int, int, float], ...] = (
    ("truc640", "block", 16, 4, LARGE_SCALE),
    ("blowout775", "sli", 2, 4, LARGE_SCALE),
)

#: Every committed point, normalised to (scene, family, size, processors, scale).
ALL_POINTS: Tuple[Tuple[str, str, int, int, float], ...] = (
    tuple((*point, GOLDEN_SCALE) for point in GOLDEN_POINTS) + LARGE_POINTS
)


def point_name(
    scene: str, family: str, size: int, processors: int, scale: float = GOLDEN_SCALE
) -> str:
    name = f"{scene}_{family}{size}_p{processors}"
    if scale != GOLDEN_SCALE:
        name += f"_s{round(scale * 100)}"
    return name


def golden_path(
    scene: str, family: str, size: int, processors: int, scale: float = GOLDEN_SCALE
) -> Path:
    return GOLDEN_DIR / f"{point_name(scene, family, size, processors, scale)}.json"


def compute_point(
    scene: str, family: str, size: int, processors: int, scale: float = GOLDEN_SCALE
) -> Dict:
    """Simulate one golden point and distill its comparison metrics.

    Uses the same spec plumbing as the batch runner so the goldens pin
    the full path from spec dict to result, not just the timing model.
    """
    spec = {"family": family, "size": size, "processors": processors}
    built = build_scene(scene, scale=scale)
    distribution = distribution_from_spec(spec, built.height)
    config = machine_config_from_spec(spec, distribution)
    baseline = single_processor_baseline(built, config)
    result = simulate_machine(built, config, baseline_cycles=baseline)
    return {
        "scene": scene,
        "family": family,
        "size": size,
        "processors": processors,
        "scale": scale,
        "metrics": {
            "cycles": result.cycles,
            "baseline_cycles": baseline,
            "speedup": result.speedup,
            "texel_to_fragment": result.texel_to_fragment,
            "miss_rate": result.cache.miss_rate,
        },
    }


def write_golden(path: Path, document: Dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def load_golden(path: Path) -> Dict:
    return json.loads(path.read_text())


def update_requested() -> bool:
    return os.environ.get(UPDATE_ENV_VAR, "") not in ("", "0")


def iter_golden_files() -> Iterator[Path]:
    yield from sorted(GOLDEN_DIR.glob("*.json"))


def check_all() -> List[str]:
    """Recompute every golden point; return human-readable mismatches.

    Used by ``scripts/golden_check.py`` so CI fails with a list of
    drifted quantities rather than a bare assertion.
    """
    problems: List[str] = []
    for scene, family, size, processors, scale in ALL_POINTS:
        path = golden_path(scene, family, size, processors, scale)
        if not path.exists():
            problems.append(f"missing golden file {path.name}")
            continue
        expected = load_golden(path)
        got = compute_point(scene, family, size, processors, scale)
        for key, want in expected["metrics"].items():
            have = got["metrics"].get(key)
            if have != want:
                problems.append(
                    f"{path.name}: {key} = {have!r}, golden says {want!r}"
                )
    return problems

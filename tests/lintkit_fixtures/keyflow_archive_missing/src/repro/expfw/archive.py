"""REPRO603 positive fixture: ``strategy`` is dropped from the trial
key, so grid and halving trials over the same payload collide."""

import hashlib
import json


def _fingerprint(text):
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def run_record(spec, params, result, seed=None):
    # Conforming: spec, params and seed all reach the key, so only the
    # trial_record defect below should fire.
    identity = json.dumps(params, sort_keys=True)
    return {
        "kind": "run",
        "key": f"run/{spec}/{_fingerprint(identity)}#{seed}",
        "metrics": result,
    }


def trial_record(
    experiment,
    strategy,
    rung,
    point,
    payload,
    seed,
    result,
    spec=None,
):
    identity = json.dumps(payload, sort_keys=True)
    return {
        "kind": "trial",
        "key": f"trial/{experiment}/r{rung}/{_fingerprint(identity)}",
        "experiment": experiment,
        "strategy": strategy,
        "rung": rung,
        "point": point,
        "payload": payload,
        "seed": seed,
        "result": result,
        "spec": repr(spec),
    }

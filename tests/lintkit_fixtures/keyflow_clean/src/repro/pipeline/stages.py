"""REPRO601 negative fixture: every non-exempt knob reaches a key."""


def _cache_part(cache_spec, cache_config):
    if cache_config:
        return f"{cache_spec}+{sorted(cache_config.items())}"
    return cache_spec


def routed_work(
    scene,
    distribution,
    cache_spec="lru",
    cache_config=None,
    setup_cycles=25,
    chunk_size=None,
    layout=None,
    route_by="bbox",
    fragments=None,
    translator=None,
):
    plan_key = f"{scene}/{distribution}/{route_by}"
    replay_key = (
        f"{scene}/{distribution}/{_cache_part(cache_spec, cache_config)}"
        f"/{layout}/chunk{chunk_size or 0}/{translator}"
    )
    work_key = f"{plan_key}|{replay_key}|setup{setup_cycles}"
    cacheable = fragments is None
    return {"work_key": work_key, "cacheable": cacheable}

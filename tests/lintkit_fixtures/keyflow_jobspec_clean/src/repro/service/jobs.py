"""REPRO602 negative fixture: every field reaches ``result_key``."""

from dataclasses import dataclass


@dataclass(frozen=True)
class JobSpec:
    kind: str
    scene: str
    processors: int
    cache: str

    def result_key(self) -> str:
        if self.kind == "experiment":
            return f"experiment/{self.scene}"
        return f"simulate/{self.scene}x{self.processors}/cache={self.cache}"

"""REPRO602 positive fixture: ``processors`` changes the simulated
result but never reaches ``result_key`` — two different runs collide
on one result-store entry."""

from dataclasses import dataclass


@dataclass(frozen=True)
class JobSpec:
    kind: str
    scene: str
    processors: int
    cache: str

    def result_key(self) -> str:
        if self.kind == "experiment":
            return f"experiment/{self.scene}"
        return f"simulate/{self.scene}/cache={self.cache}"

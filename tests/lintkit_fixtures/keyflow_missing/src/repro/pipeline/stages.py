"""REPRO601 positive fixture: ``translator`` affects the work but is
never folded into any key — the PR 4 bug shape."""


def routed_work(
    scene,
    distribution,
    cache_spec="lru",
    cache_config=None,
    setup_cycles=25,
    chunk_size=None,
    layout=None,
    route_by="bbox",
    fragments=None,
    translator=None,
):
    plan_key = f"{scene}/{distribution}/{route_by}"
    replay_key = (
        f"{scene}/{distribution}/{cache_spec}+{cache_config}"
        f"/{layout}/chunk{chunk_size or 0}"
    )
    work_key = f"{plan_key}|{replay_key}|setup{setup_cycles}"
    translated = translator(scene) if translator else scene
    cacheable = fragments is None
    return {"work_key": work_key, "cacheable": cacheable, "scene": translated}

"""REPRO411/412 negative fixture: the reaper scans and expires leases
entirely under the lock (the corrected PR 7 shape)."""

import threading


class LeaseReaper:
    def __init__(self, interval=1.0):
        self._lock = threading.Lock()
        self._pending = {}
        self._expired_total = 0
        self.interval = interval

    def grant(self, lease_id, deadline):
        with self._lock:
            self._pending[lease_id] = deadline

    def ack(self, lease_id):
        with self._lock:
            self._pending.pop(lease_id, None)

    def tick(self, now):
        with self._lock:
            expired = [i for i, d in self._pending.items() if d <= now]
            for lease_id in expired:
                self._pending.pop(lease_id, None)
            self._expired_total += len(expired)
        return expired

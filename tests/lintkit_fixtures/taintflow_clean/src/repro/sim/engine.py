"""REPRO111 negative fixture: the timestamp is threaded in as a
parameter, so the deterministic step never touches the clock."""


def step(state, started_at):
    return state + started_at

"""REPRO111 negative fixture helper: entropy stays at the boundary."""

import time


def now_seconds():
    return time.time()

"""REPRO111 positive fixture: deterministic code calls a helper whose
return value derives from the wall clock two calls away — invisible to
the per-file REPRO101, caught interprocedurally."""

from repro.util.clockutil import elapsed_tag


def step(state):
    tag = elapsed_tag()
    return f"{state}/{tag}"

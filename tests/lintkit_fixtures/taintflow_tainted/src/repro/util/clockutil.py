"""REPRO111 positive fixture helpers: a two-hop clock laundering chain
outside the deterministic perimeter."""

import time


def _raw_stamp():
    return time.time()


def elapsed_tag():
    return f"t{_raw_stamp():.0f}"

"""Tests for the experiment drivers."""

import pytest

from repro.analysis import (
    buffer_sweep,
    characterize_scene,
    format_series,
    format_table,
    imbalance_percent,
    imbalance_sweep,
    locality_sweep,
    SpeedupStudy,
    speedup_sweep,
    texel_to_fragment_ratio,
    work_distribution,
)
from repro.analysis.load_balance import make_distribution
from repro.distribution import BlockInterleaved, ScanLineInterleaved
from repro.errors import ConfigurationError


class TestCharacterize:
    def test_flat_scene_row(self, flat_scene):
        stats = characterize_scene(flat_scene)
        assert stats.pixels_rendered == 64 * 64
        assert stats.unique_texel_to_fragment > 0
        assert stats.texture_megabytes == pytest.approx(
            flat_scene.texture_bytes() / 2**20
        )

    def test_identity_mapping_unique_ratio_near_one(self, flat_scene):
        # Every pixel maps 1:1 onto a 64x64 texture: level 0 touches all
        # 4096 texels, level 1 another 1024 -> ratio ~1.25.
        stats = characterize_scene(flat_scene)
        assert stats.unique_texel_to_fragment == pytest.approx(1.25, abs=0.15)


class TestLoadBalance:
    def test_uniform_scene_is_balanced_with_fine_blocks(self, flat_scene):
        assert imbalance_percent(flat_scene, BlockInterleaved(4, 8)) < 2.0

    def test_hotspot_hurts_coarse_tiles_more(self, overdraw_scene):
        fine = imbalance_percent(overdraw_scene, BlockInterleaved(4, 4))
        coarse = imbalance_percent(overdraw_scene, BlockInterleaved(4, 32))
        assert coarse > fine

    def test_work_distribution_shape(self, flat_scene):
        work = work_distribution(flat_scene, ScanLineInterleaved(4, 2))
        assert work.shape == (4,)
        assert (work > 0).all()

    def test_sweep_returns_all_sizes(self, tiny_bench_scene):
        sweep = imbalance_sweep(tiny_bench_scene, "block", [8, 32], 4)
        assert set(sweep) == {8, 32}
        assert all(value >= 0 for value in sweep.values())

    def test_make_distribution_vocabulary(self):
        assert isinstance(make_distribution("block", 4, 16), BlockInterleaved)
        assert isinstance(make_distribution("sli", 4, 2), ScanLineInterleaved)
        with pytest.raises(ConfigurationError):
            make_distribution("hex", 4, 2)


class TestLocality:
    def test_ratio_grows_when_splitting_image(self, flat_scene):
        solo = texel_to_fragment_ratio(flat_scene, BlockInterleaved(1, 64))
        split = texel_to_fragment_ratio(flat_scene, ScanLineInterleaved(8, 1))
        assert split >= solo

    def test_sweep_grid_complete(self, flat_scene):
        sweep = locality_sweep(flat_scene, "sli", [1, 4], [1, 4])
        assert set(sweep) == {(1, 1), (1, 4), (4, 1), (4, 4)}

    def test_single_line_sli_worse_than_big_blocks(self, tiny_bench_scene):
        """Figure 2's intuition: fine interleaving splits cache lines."""
        sli1 = texel_to_fragment_ratio(tiny_bench_scene, ScanLineInterleaved(8, 1))
        block32 = texel_to_fragment_ratio(tiny_bench_scene, BlockInterleaved(8, 32))
        assert sli1 > block32


class TestSpeedupStudy:
    def test_baseline_memoised(self, flat_scene):
        study = SpeedupStudy(flat_scene, cache="perfect")
        first = study.baseline_cycles
        assert study.baseline_cycles == first
        assert study._baseline is not None

    def test_speedup_in_valid_range(self, tiny_bench_scene):
        study = SpeedupStudy(tiny_bench_scene, cache="perfect")
        value = study.speedup(BlockInterleaved(4, 16))
        assert 1.0 <= value <= 4.0 + 1e-9

    def test_sweep_and_best_size(self, tiny_bench_scene):
        study = SpeedupStudy(tiny_bench_scene, cache="perfect")
        sweep = study.sweep("block", [8, 16], [2, 4])
        assert set(sweep) == {(8, 2), (8, 4), (16, 2), (16, 4)}
        size, value = study.best_size("block", [8, 16], 4)
        assert size in (8, 16)
        assert value == max(sweep[(8, 4)], sweep[(16, 4)])

    def test_convenience_wrapper(self, tiny_bench_scene):
        sweep = speedup_sweep(tiny_bench_scene, "block", [16], [4], cache="perfect")
        assert (16, 4) in sweep


class TestBufferSweep:
    def test_bigger_buffer_never_slower(self, tiny_bench_scene):
        sweep = buffer_sweep(
            tiny_bench_scene,
            "block",
            sizes=[16],
            buffer_sizes=[1, 8, 10000],
            num_processors=8,
            cache="perfect",
        )
        assert sweep[(16, 1)] <= sweep[(16, 8)] + 1e-9
        assert sweep[(16, 8)] <= sweep[(16, 10000)] + 1e-9


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["longer", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer" in lines[3]

    def test_format_series_matrix(self):
        series = {(1, 4): 1.5, (1, 16): 2.0, (2, 4): 1.25}
        text = format_series("demo", series)
        assert text.splitlines()[0] == "demo"
        assert "-" in text  # missing (2, 16) cell
        assert "1.5" in text

    def test_format_table_float_trimming(self):
        text = format_table(["v"], [[1.0], [0.125]])
        assert "1 " in text or text.endswith("1") or "\n1" in text
        assert "0.125" in text

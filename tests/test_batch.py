"""Tests for the JSON batch campaign runner."""

import json

import pytest

from repro.analysis.batch import (
    distribution_from_spec,
    machine_config_from_spec,
    run_batch,
    run_batch_file,
)
from repro.cli import main
from repro.distribution import (
    BlockInterleaved,
    ContiguousBands,
    ScanLineInterleaved,
    SingleProcessor,
)
from repro.errors import ConfigurationError

CAMPAIGN = {
    "scale": 0.0625,
    "scenes": ["blowout775"],
    "machines": [
        {"family": "block", "processors": 4, "size": 16},
        {"family": "sli", "processors": 4, "size": 2, "cache": "perfect"},
    ],
}


class TestSpecFactories:
    def test_distribution_families(self):
        assert isinstance(
            distribution_from_spec({"family": "block", "processors": 4}, 100),
            BlockInterleaved,
        )
        assert isinstance(
            distribution_from_spec({"family": "sli", "processors": 4, "size": 2}, 100),
            ScanLineInterleaved,
        )
        assert isinstance(
            distribution_from_spec({"family": "bands", "processors": 4}, 100),
            ContiguousBands,
        )
        assert isinstance(
            distribution_from_spec({"family": "single"}, 100), SingleProcessor
        )
        with pytest.raises(ConfigurationError):
            distribution_from_spec({"family": "hex"}, 100)

    def test_machine_config_knobs(self):
        dist = BlockInterleaved(4, 16)
        config = machine_config_from_spec(
            {"cache_kb": 8, "ways": 2, "bus_ratio": 2.0, "fifo": 64,
             "geometry_engines": 3},
            dist,
        )
        assert config.cache_config.total_bytes == 8192
        assert config.cache_config.ways == 2
        assert config.bus_ratio == 2.0
        assert config.fifo_capacity == 64
        assert config.geometry_engines == 3

    def test_defaults(self):
        config = machine_config_from_spec({}, BlockInterleaved(2, 16))
        assert config.cache == "lru"
        assert config.cache_config is None
        assert config.fifo_capacity == 10000


class TestRunBatch:
    def test_one_result_per_scene_machine_pair(self):
        results = run_batch(CAMPAIGN)
        assert len(results) == 2
        assert {r.distribution for r in results} == {"block16x4", "sli2x4"}
        for result in results:
            assert result.speedup is not None
            assert 1.0 <= result.speedup <= 4.0 + 1e-9

    def test_empty_machines_rejected(self):
        with pytest.raises(ConfigurationError):
            run_batch({"machines": []})

    def test_file_round_trip_with_csv(self, tmp_path):
        config_path = tmp_path / "campaign.json"
        config_path.write_text(json.dumps(CAMPAIGN))
        csv_path = tmp_path / "out.csv"
        results = run_batch_file(config_path, csv_out=csv_path)
        assert len(results) == 2
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 rows

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            run_batch_file(path)


class TestBatchCli:
    def test_cli_runs_campaign(self, tmp_path, capsys):
        config_path = tmp_path / "campaign.json"
        config_path.write_text(json.dumps(CAMPAIGN))
        assert main(["batch", "--path", str(config_path), "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "block16x4" in out
        assert (tmp_path / "batch.csv").exists()

    def test_cli_requires_path(self, capsys):
        assert main(["batch"]) == 2
        assert "needs --path" in capsys.readouterr().err

"""Chunking property tests for the array-native batch passes.

Every batch module processes its stream in bounded chunks so the flat
working arrays stay cache-resident.  Chunk boundaries are pure
implementation detail: wherever the split lands, the output must be
bit-identical to the scalar reference and to any other split.  These
tests randomize the split points (seeded) and assert exactly that for
the raster scan converter, the fused texture address pass, and the
chunked LRU replay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import batchlru
from repro.cache.config import CacheConfig
from repro.cache.lru import LruCache
from repro.raster import batch as raster_batch
from repro.raster.fragments import FragmentBuffer
from repro.raster.raster import (
    mip_level_for_scale,
    rasterize_scene_scalar,
)
from repro.texture.filtering import TrilinearFilter
from repro.workloads.scenes import build_scene


@pytest.fixture(scope="module")
def scene():
    return build_scene("quake", scale=0.0625)


@pytest.fixture(scope="module")
def fragments(scene):
    buffer = rasterize_scene_scalar(scene)
    assert len(buffer.x) > 0
    return buffer


def assert_buffers_identical(left: FragmentBuffer, right: FragmentBuffer) -> None:
    for name in FragmentBuffer.COLUMNS:
        a, b = getattr(left, name), getattr(right, name)
        assert a.dtype == b.dtype, name
        assert np.array_equal(a, b), name


@pytest.mark.parametrize("chunk", [1, 7, 401, 1 << 18])
def test_raster_batch_matches_scalar_under_any_chunking(
    scene, fragments, monkeypatch, chunk
):
    monkeypatch.setattr(raster_batch, "CHUNK_CANDIDATES", chunk)
    batched = raster_batch.rasterize_scene_batch(scene, mip_level_for_scale)
    assert_buffers_identical(batched, fragments)


def test_raster_batch_random_chunk_sizes(scene, fragments, monkeypatch):
    rng = np.random.default_rng(601)
    for chunk in rng.integers(2, 5000, size=4):
        monkeypatch.setattr(raster_batch, "CHUNK_CANDIDATES", int(chunk))
        batched = raster_batch.rasterize_scene_batch(scene, mip_level_for_scale)
        assert_buffers_identical(batched, fragments)


def test_fused_texture_addresses_match_footprint_reference(scene, fragments):
    layout = scene.memory_layout()
    filt = TrilinearFilter(layout)
    u, v = fragments.u, fragments.v
    levels = fragments.level.astype(np.int64)
    texture_ids = fragments.texture.astype(np.int64)
    fused = filt.line_addresses(u, v, levels, texture_ids)
    reference = filt._footprint(u, v, levels, texture_ids, layout.line_address)
    assert np.array_equal(np.asarray(fused, dtype=np.int64), reference)


def test_fused_texture_addresses_chunk_invariant(scene, fragments):
    layout = scene.memory_layout()
    filt = TrilinearFilter(layout)
    u, v = fragments.u, fragments.v
    levels = fragments.level.astype(np.int64)
    texture_ids = fragments.texture.astype(np.int64)
    whole = filt.line_addresses(u, v, levels, texture_ids)

    rng = np.random.default_rng(602)
    n = len(u)
    for _ in range(4):
        cuts = np.sort(rng.integers(0, n + 1, size=rng.integers(1, 8)))
        pieces = [
            filt.line_addresses(u[a:b], v[a:b], levels[a:b], texture_ids[a:b])
            for a, b in zip(np.concatenate(([0], cuts)), np.concatenate((cuts, [n])))
            if b > a
        ]
        assert np.array_equal(np.concatenate(pieces), whole)


def _random_stream(rng, length):
    span = int(rng.choice([16, 1 << 10, 1 << 20]))
    return rng.integers(0, span, size=length).astype(np.int64)


def _config(num_sets: int, ways: int) -> CacheConfig:
    return CacheConfig(total_bytes=num_sets * ways * 64, ways=ways)


@pytest.mark.parametrize("num_sets,ways", [(1, 2), (3, 1), (4, 4), (64, 2)])
def test_lru_replay_matches_scalar_under_random_chunking(
    monkeypatch, num_sets, ways
):
    rng = np.random.default_rng(603 + num_sets * 8 + ways)
    for chunk in (3, 17, int(rng.integers(32, 4096)), batchlru.CHUNK_TARGET_LEN):
        monkeypatch.setattr(batchlru, "CHUNK_TARGET_LEN", chunk)
        lines = _random_stream(rng, int(rng.integers(1, 6000)))
        config = _config(num_sets, ways)
        batched, scalar = LruCache(config), LruCache(config)
        assert np.array_equal(
            batched.simulate(lines),
            scalar.simulate(lines, force_scalar=True),
        )
        assert batched.contents() == scalar.contents()


def test_lru_replay_is_call_split_invariant(monkeypatch):
    """Feeding one stream in random slices equals one whole-stream call."""
    rng = np.random.default_rng(604)
    monkeypatch.setattr(batchlru, "CHUNK_TARGET_LEN", 64)
    lines = _random_stream(rng, 5000)
    config = _config(8, 4)
    whole_cache, split_cache = LruCache(config), LruCache(config)
    whole = whole_cache.simulate(lines)

    cuts = np.sort(rng.integers(0, len(lines) + 1, size=6))
    edges = np.concatenate(([0], cuts, [len(lines)]))
    pieces = [
        split_cache.simulate(lines[a:b]) for a, b in zip(edges, edges[1:]) if b > a
    ]
    assert np.array_equal(np.concatenate(pieces), whole)
    assert split_cache.contents() == whole_cache.contents()

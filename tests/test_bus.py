"""Tests for the bandwidth-limited bus model."""

import math

import pytest

from repro.bus import BusModel, INFINITE_BANDWIDTH
from repro.errors import ConfigurationError


def test_rejects_non_positive_bandwidth():
    with pytest.raises(ConfigurationError):
        BusModel(0)
    with pytest.raises(ConfigurationError):
        BusModel(-1)


def test_transfer_cycles_scale_with_bandwidth():
    assert BusModel(1.0).transfer_cycles(16) == 16
    assert BusModel(2.0).transfer_cycles(16) == 8
    assert BusModel(2.0).transfer_cycles(0) == 0


def test_infinite_bandwidth_is_free():
    bus = BusModel(INFINITE_BANDWIDTH)
    assert bus.transfer_cycles(10**9) == 0
    assert bus.request(5, 10**9) == 5


def test_requests_serialise():
    bus = BusModel(1.0)
    assert bus.request(0, 16) == 16
    # Issued at t=4 but the bus is busy until 16.
    assert bus.request(4, 16) == 32


def test_idle_gap_is_not_reclaimed():
    bus = BusModel(1.0)
    bus.request(0, 8)  # busy until 8
    # Next request at t=100: starts at 100, not at 8.
    assert bus.request(100, 8) == 108


def test_reset_clears_backlog():
    bus = BusModel(1.0)
    bus.request(0, 100)
    bus.reset()
    assert bus.request(0, 8) == 8


def test_burst_backlog_accumulates():
    """Many small transfers back the bus up past their issue times.

    This is the paper's burst-saturation remark: average demand below
    the bus rate can still stall when misses cluster.
    """
    bus = BusModel(2.0)
    finish = 0.0
    for start in range(10):
        finish = bus.request(start, 16)
    assert finish == pytest.approx(80.0)
    assert math.isinf(INFINITE_BANDWIDTH)

"""Tests for the cache simulator: LRU correctness and cache models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, LruCache, NoCache, PerfectCache, make_cache_model
from repro.cache.models import RealCache
from repro.errors import ConfigurationError


def tiny_config(sets=2, ways=2):
    return CacheConfig(total_bytes=64 * sets * ways, line_bytes=64, ways=ways)


class TestCacheConfig:
    def test_default_matches_paper(self):
        config = CacheConfig()
        assert config.total_bytes == 16384
        assert config.line_bytes == 64
        assert config.ways == 4
        assert config.num_lines == 256
        assert config.num_sets == 64

    def test_rejects_partial_sets(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(total_bytes=1000, line_bytes=64, ways=4)

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(total_bytes=32, line_bytes=64)
        with pytest.raises(ConfigurationError):
            CacheConfig(ways=0)


class TestLruReference:
    def test_first_access_misses_then_hits(self):
        cache = LruCache(tiny_config())
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_lru_eviction_order(self):
        # 1 set, 2 ways: lines 0 and 2 map to set 0 with 2 sets? use
        # direct construction: sets=1 -> every line maps to set 0.
        cache = LruCache(tiny_config(sets=1, ways=2))
        cache.access(10)
        cache.access(20)
        cache.access(10)  # 10 is now MRU, 20 LRU
        cache.access(30)  # evicts 20
        assert cache.access(10) is True
        assert cache.access(20) is False

    def test_sets_are_independent(self):
        cache = LruCache(tiny_config(sets=2, ways=1))
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        assert cache.access(0) is True
        assert cache.access(1) is True
        cache.access(2)  # set 0, evicts 0
        assert cache.access(1) is True
        assert cache.access(0) is False

    def test_contents_snapshot_mru_first(self):
        cache = LruCache(tiny_config(sets=1, ways=3))
        for line in (1, 2, 3, 1):
            cache.access(line)
        assert cache.contents()[0] == [1, 3, 2]

    def test_reset_empties_cache(self):
        cache = LruCache(tiny_config())
        cache.access(5)
        cache.reset()
        assert cache.contents() == {}
        assert cache.access(5) is False


class TestLruBatched:
    def test_matches_reference_on_simple_stream(self):
        stream = np.array([0, 1, 0, 2, 64, 0, 1, 1, 1, 2])
        batched = LruCache(CacheConfig())
        reference = LruCache(CacheConfig())
        got = batched.simulate(stream)
        want = np.array([not reference.access(line) for line in stream])
        assert (got == want).all()

    def test_empty_stream(self):
        cache = LruCache(CacheConfig())
        assert cache.simulate(np.array([], dtype=np.int64)).size == 0

    def test_statefulness_across_chunks(self):
        stream = np.arange(100) % 7
        whole = LruCache(tiny_config(sets=2, ways=2)).simulate(stream)
        chunked_cache = LruCache(tiny_config(sets=2, ways=2))
        parts = [chunked_cache.simulate(chunk) for chunk in np.array_split(stream, 7)]
        assert (np.concatenate(parts) == whole).all()

    def test_consecutive_duplicates_always_hit(self):
        cache = LruCache(tiny_config())
        misses = cache.simulate(np.array([9, 9, 9, 9]))
        assert misses.tolist() == [True, False, False, False]

    def test_duplicate_hit_survives_chunk_boundary(self):
        cache = LruCache(tiny_config(sets=1, ways=1))
        first = cache.simulate(np.array([3]))
        second = cache.simulate(np.array([3, 3]))
        assert first.tolist() == [True]
        assert second.tolist() == [False, False]

    @settings(max_examples=60, deadline=None)
    @given(
        stream=st.lists(st.integers(min_value=0, max_value=40), min_size=0, max_size=300),
        sets=st.sampled_from([1, 2, 4, 8]),
        ways=st.integers(min_value=1, max_value=4),
    )
    def test_property_batched_equals_reference(self, stream, sets, ways):
        """The vectorised replay is bit-identical to the stepwise LRU."""
        config = tiny_config(sets=sets, ways=ways)
        stream = np.asarray(stream, dtype=np.int64)
        batched = LruCache(config).simulate(stream)
        reference = LruCache(config)
        expected = np.array(
            [not reference.access(line) for line in stream], dtype=bool
        )
        assert (batched == expected).all()

    @settings(max_examples=30, deadline=None)
    @given(
        stream=st.lists(st.integers(min_value=0, max_value=60), min_size=1, max_size=200),
        cut=st.integers(min_value=0, max_value=200),
    )
    def test_property_chunking_is_transparent(self, stream, cut):
        stream = np.asarray(stream, dtype=np.int64)
        cut = min(cut, len(stream))
        config = tiny_config(sets=4, ways=2)
        whole = LruCache(config).simulate(stream)
        cache = LruCache(config)
        split = np.concatenate([cache.simulate(stream[:cut]), cache.simulate(stream[cut:])])
        assert (split == whole).all()

    def test_miss_count_bounded_by_unique_lines_with_huge_cache(self):
        config = CacheConfig(total_bytes=1 << 20, line_bytes=64, ways=4)
        stream = np.random.default_rng(0).integers(0, 500, size=5000)
        misses = LruCache(config).simulate(stream)
        assert misses.sum() == len(np.unique(stream))


class TestModels:
    def test_factory(self):
        assert isinstance(make_cache_model("perfect"), PerfectCache)
        assert isinstance(make_cache_model("none"), NoCache)
        assert isinstance(make_cache_model("lru"), RealCache)
        assert isinstance(make_cache_model(None), RealCache)
        model = PerfectCache()
        assert make_cache_model(model) is model
        with pytest.raises(ConfigurationError):
            make_cache_model("bogus")

    def test_perfect_never_misses(self):
        model = PerfectCache()
        assert model.misses(np.arange(100)).sum() == 0

    def test_nocache_always_fetches_single_texels(self):
        model = NoCache()
        assert model.misses(np.zeros(10)).all()
        assert model.texels_per_fetch == 1

    def test_real_cache_fetches_whole_lines(self):
        model = RealCache()
        assert model.texels_per_fetch == 16
        stream = np.array([0, 0, 1, 0])
        assert model.misses(stream).tolist() == [True, False, True, False]
        model.reset()
        assert model.misses(np.array([0]))[0]

"""Property tests: ``LruCache.access`` and ``LruCache.simulate`` agree.

The vectorised replay (``simulate``) must produce miss masks that are
bit-identical to the stepwise reference (``access``) no matter how the
stream is chunked, how the two entry points are interleaved on one
stateful cache instance, or how skewed the address distribution is.
The timing model depends on this equivalence: the machine simulator
replays caches in per-node chunks whose boundaries depend on the
distribution, and the golden-value suite pins the resulting numbers.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, LruCache


def geometry(sets: int, ways: int) -> CacheConfig:
    return CacheConfig(total_bytes=64 * sets * ways, line_bytes=64, ways=ways)


def reference_mask(cache: LruCache, lines) -> np.ndarray:
    """Stepwise miss mask via ``access`` (mutates ``cache``)."""
    return np.array([not cache.access(line) for line in lines], dtype=bool)


# Streams mix uniform lines with a hot cluster so both capacity misses
# and long hit runs (the consecutive-duplicate fast path) occur.
line_values = st.one_of(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=0, max_value=6),
)
streams = st.lists(line_values, min_size=0, max_size=400)
geometries = st.tuples(
    st.sampled_from([1, 2, 4, 8]), st.integers(min_value=1, max_value=4)
)


class TestAccessSimulateEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(stream=streams, geo=geometries, data=st.data())
    def test_randomly_chunked_simulate_matches_access(self, stream, geo, data):
        """Any chunking of ``simulate`` equals one ``access`` walk."""
        stream = np.asarray(stream, dtype=np.int64)
        config = geometry(*geo)
        expected = reference_mask(LruCache(config), stream)

        chunked = LruCache(config)
        masks = []
        start = 0
        while start < len(stream):
            width = data.draw(
                st.integers(min_value=1, max_value=len(stream) - start),
                label="chunk_width",
            )
            masks.append(chunked.simulate(stream[start:start + width]))
            start += width
        got = (
            np.concatenate(masks) if masks else np.zeros(0, dtype=bool)
        )
        assert got.dtype == np.bool_
        assert (got == expected).all()

    @settings(max_examples=60, deadline=None)
    @given(stream=streams, geo=geometries, data=st.data())
    def test_interleaved_access_and_simulate_share_state(self, stream, geo, data):
        """Mixing the two entry points on ONE cache stays bit-identical.

        This is the stateful-across-calls guarantee: ``simulate`` must
        leave the recency stacks exactly where ``access`` would have,
        and vice versa, even across empty chunks.
        """
        stream = np.asarray(stream, dtype=np.int64)
        config = geometry(*geo)
        expected = reference_mask(LruCache(config), stream)

        mixed = LruCache(config)
        got = np.zeros(len(stream), dtype=bool)
        start = 0
        while start < len(stream):
            width = data.draw(
                st.integers(min_value=0, max_value=len(stream) - start),
                label="chunk_width",
            )
            use_access = data.draw(st.booleans(), label="use_access")
            piece = stream[start:start + width]
            if use_access:
                got[start:start + width] = reference_mask(mixed, piece)
            else:
                got[start:start + width] = mixed.simulate(piece)
            if width == 0:
                # An empty simulate call must not disturb state.
                mixed.simulate(np.zeros(0, dtype=np.int64))
                width = data.draw(st.integers(min_value=1, max_value=4))
                width = min(width, len(stream) - start)
                got[start:start + width] = mixed.simulate(
                    stream[start:start + width]
                )
            start += width
        assert (got == expected).all()

    @settings(max_examples=40, deadline=None)
    @given(
        geo=geometries,
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        length=st.integers(min_value=1, max_value=600),
    )
    def test_zipf_like_streams_agree(self, geo, seed, length):
        """Skewed (texture-locality-shaped) streams, chunked in thirds."""
        rng = np.random.default_rng(seed)
        # Square a uniform draw to bias toward low line ids — a crude
        # stand-in for texture working sets with a hot mip level.
        stream = (rng.random(length) ** 2 * 64).astype(np.int64)
        config = geometry(*geo)
        expected = reference_mask(LruCache(config), stream)

        chunked = LruCache(config)
        cuts = sorted(rng.integers(0, length + 1, size=2))
        parts = np.split(stream, cuts)
        got = np.concatenate([chunked.simulate(part) for part in parts])
        assert (got == expected).all()
        # Both walks must also leave identical *future* behaviour.
        probe = np.arange(16, dtype=np.int64)
        fresh_reference = LruCache(config)
        reference_mask(fresh_reference, stream)
        assert (
            chunked.simulate(probe) == reference_mask(fresh_reference, probe)
        ).all()

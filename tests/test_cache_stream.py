"""Tests for fragment-stream cache replay and its statistics."""

import numpy as np
import pytest

from repro.cache import CacheConfig, make_cache_model, replay_fragments
from repro.cache.stats import CacheRunResult
from repro.texture.filtering import TrilinearFilter


def filt_for(scene):
    return TrilinearFilter(scene.memory_layout())


def test_replay_counts_accesses(flat_scene):
    fragments = flat_scene.fragments()
    model = make_cache_model("lru")
    result = replay_fragments(fragments, filt_for(flat_scene), model)
    assert result.fragments == len(fragments)
    assert result.texel_accesses == 8 * len(fragments)
    assert result.misses <= result.line_accesses
    assert result.texels_fetched == result.misses * 16


def test_perfect_cache_fetches_nothing(flat_scene):
    fragments = flat_scene.fragments()
    result = replay_fragments(fragments, filt_for(flat_scene), make_cache_model("perfect"))
    assert result.misses == 0
    assert result.texel_to_fragment == 0.0


def test_nocache_is_eight_texels_per_fragment(flat_scene):
    fragments = flat_scene.fragments()
    result = replay_fragments(fragments, filt_for(flat_scene), make_cache_model("none"))
    assert result.texels_fetched == 8 * len(fragments)
    assert result.texel_to_fragment == pytest.approx(8.0)


def test_flat_scene_single_engine_ratio_is_low(flat_scene):
    """Identity-mapped full-screen pass: near-ideal spatial locality.

    Each 64-byte line (4x4 texels) serves ~16 pixels, so with trilinear
    overhead the ratio must stay near the unique-texel floor and far
    below the cacheless 8.0.
    """
    fragments = flat_scene.fragments()
    result = replay_fragments(fragments, filt_for(flat_scene), make_cache_model("lru"))
    assert 0.0 < result.texel_to_fragment < 3.0


def test_compulsory_classification(flat_scene):
    fragments = flat_scene.fragments()
    layout = flat_scene.memory_layout()
    seen = np.zeros(layout.total_lines, dtype=bool)
    result = replay_fragments(
        fragments, filt_for(flat_scene), make_cache_model("lru"), seen_lines=seen
    )
    assert 0 < result.compulsory_misses <= result.misses
    # The 16 KB cache holds the flat scene's whole working set: every
    # miss is compulsory.
    working_set_bytes = int(seen.sum()) * 64
    if working_set_bytes <= 16384:
        assert result.compulsory_misses == result.misses


def test_triangle_attribution_sums_to_total(flat_scene):
    fragments = flat_scene.fragments()
    result = replay_fragments(fragments, filt_for(flat_scene), make_cache_model("lru"))
    assert result.texels_by_triangle.sum() == result.texels_fetched
    assert len(result.texels_by_triangle) == flat_scene.num_triangles


def test_chunked_replay_equals_whole(flat_scene):
    fragments = flat_scene.fragments()
    small = replay_fragments(
        fragments, filt_for(flat_scene), make_cache_model("lru"), chunk_size=37
    )
    big = replay_fragments(fragments, filt_for(flat_scene), make_cache_model("lru"))
    assert small.misses == big.misses
    assert (small.texels_by_triangle == big.texels_by_triangle).all()


def test_small_cache_misses_more(flat_scene):
    fragments = flat_scene.fragments()
    tiny = make_cache_model("lru", CacheConfig(total_bytes=512, line_bytes=64, ways=2))
    full = make_cache_model("lru")
    misses_tiny = replay_fragments(fragments, filt_for(flat_scene), tiny).misses
    misses_full = replay_fragments(fragments, filt_for(flat_scene), full).misses
    assert misses_tiny >= misses_full


def test_merged_with_aggregates():
    a = CacheRunResult(
        fragments=10,
        texel_accesses=80,
        line_accesses=80,
        misses=5,
        compulsory_misses=3,
        texels_fetched=80,
        texels_by_triangle=np.array([80, 0]),
    )
    b = CacheRunResult(
        fragments=20,
        texel_accesses=160,
        line_accesses=160,
        misses=2,
        compulsory_misses=2,
        texels_fetched=32,
        texels_by_triangle=np.array([0, 32]),
    )
    merged = a.merged_with(b)
    assert merged.fragments == 30
    assert merged.misses == 7
    assert merged.texel_to_fragment == pytest.approx(112 / 30)
    assert merged.texels_by_triangle.tolist() == [80, 32]


def test_empty_run_result_ratios():
    empty = CacheRunResult()
    assert empty.miss_rate == 0.0
    assert empty.texel_to_fragment == 0.0

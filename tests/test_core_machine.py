"""Tests for the machine simulator, including event/fast-path agreement."""

import math

import numpy as np
import pytest

from repro.core import MachineConfig, simulate_machine, single_processor_baseline, speedup
from repro.core.distributor import interleave_stream, run_event_machine
from repro.core.routing import build_routed_work
from repro.distribution import BlockInterleaved, ScanLineInterleaved, SingleProcessor
from repro.errors import ConfigurationError


class TestConfig:
    def test_rejects_bad_bus_ratio(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(distribution=SingleProcessor(), bus_ratio=0)

    def test_rejects_bad_fifo(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(distribution=SingleProcessor(), fifo_capacity=0)

    def test_infinite_bus_allowed(self):
        config = MachineConfig(distribution=SingleProcessor(), bus_ratio=math.inf)
        assert math.isinf(config.bus_ratio)

    def test_with_distribution_keeps_rest(self):
        config = MachineConfig(
            distribution=SingleProcessor(), cache="perfect", bus_ratio=2.0
        )
        other = config.with_distribution(BlockInterleaved(4, 16))
        assert other.cache == "perfect"
        assert other.num_processors == 4


class TestSingleProcessor:
    def test_perfect_cache_cycles_equal_work(self, flat_scene):
        config = MachineConfig(distribution=SingleProcessor(), cache="perfect")
        result = simulate_machine(flat_scene, config)
        fragments = flat_scene.fragments()
        counts = fragments.triangle_pixel_counts()
        expected = np.maximum(counts, 25).sum()
        assert result.cycles == expected

    def test_cacheless_is_bus_bound(self, flat_scene):
        perfect = MachineConfig(distribution=SingleProcessor(), cache="perfect")
        nocache = MachineConfig(
            distribution=SingleProcessor(), cache="none", bus_ratio=1.0
        )
        t_perfect = simulate_machine(flat_scene, perfect).cycles
        t_nocache = simulate_machine(flat_scene, nocache).cycles
        # 8 texels/pixel over a 1 texel/cycle bus: ~8x slower.
        assert t_nocache >= 6 * t_perfect

    def test_cache_ordering_between_models(self, flat_scene):
        def cycles(cache):
            config = MachineConfig(
                distribution=SingleProcessor(), cache=cache, bus_ratio=1.0
            )
            return simulate_machine(flat_scene, config).cycles

        assert cycles("perfect") <= cycles("lru") <= cycles("none")


class TestParallelMachine:
    def test_speedup_bounded_by_processor_count(self, tiny_bench_scene):
        config = MachineConfig(distribution=BlockInterleaved(4, 16), cache="perfect")
        value = speedup(tiny_bench_scene, config)
        assert 1.0 <= value <= 4.0 + 1e-9

    def test_parallel_no_slower_than_serial_perfect_cache(self, flat_scene):
        config = MachineConfig(distribution=BlockInterleaved(4, 8), cache="perfect")
        parallel = simulate_machine(flat_scene, config).cycles
        serial = single_processor_baseline(flat_scene, config)
        assert parallel <= serial

    def test_result_records_configuration(self, flat_scene):
        config = MachineConfig(
            distribution=ScanLineInterleaved(4, 2), cache="perfect", bus_ratio=2.0
        )
        result = simulate_machine(flat_scene, config)
        assert result.distribution == "sli2x4"
        assert result.cache_name == "perfect"
        assert result.bus_ratio == 2.0
        assert result.num_processors == 4
        assert "sli2x4" in result.summary()

    def test_speedup_property_of_result(self, flat_scene):
        config = MachineConfig(distribution=BlockInterleaved(4, 8), cache="perfect")
        baseline = single_processor_baseline(flat_scene, config)
        result = simulate_machine(flat_scene, config, baseline_cycles=baseline)
        assert result.speedup == pytest.approx(baseline / result.cycles)
        assert result.efficiency == pytest.approx(result.speedup / 4)

    def test_finish_times_bounded_by_total(self, tiny_bench_scene):
        config = MachineConfig(distribution=BlockInterleaved(8, 16))
        result = simulate_machine(tiny_bench_scene, config)
        assert result.cycles == pytest.approx(result.timings.finish.max())
        assert result.timings.finish[result.timings.critical_node] == result.timings.finish.max()


class TestEventPathEquivalence:
    """The event-driven machine must equal the fast path when FIFOs
    never fill — the cornerstone consistency check between the two
    timing implementations."""

    @pytest.mark.parametrize("cache", ["perfect", "lru"])
    @pytest.mark.parametrize(
        "dist",
        [BlockInterleaved(4, 8), ScanLineInterleaved(4, 2), BlockInterleaved(7, 8)],
        ids=lambda d: d.describe(),
    )
    def test_big_fifo_matches_fast_path(self, flat_scene, cache, dist):
        work = build_routed_work(flat_scene, dist, cache_spec=cache)
        config = MachineConfig(distribution=dist, cache=cache, bus_ratio=1.0)
        fast = simulate_machine(flat_scene, config, routed=work)

        stream = interleave_stream(work.triangles, work.pixels, work.texels)
        cycles, finish = run_event_machine(
            stream, dist.num_processors, 10**9, 25, 1.0
        )
        assert cycles == pytest.approx(fast.cycles)
        assert np.allclose(np.asarray(finish), fast.timings.finish)

    def test_small_fifo_never_faster(self, tiny_bench_scene):
        dist = BlockInterleaved(8, 8)
        work = build_routed_work(tiny_bench_scene, dist, cache_spec="perfect")
        big = MachineConfig(distribution=dist, cache="perfect", fifo_capacity=10000)
        t_big = simulate_machine(tiny_bench_scene, big, routed=work).cycles
        for capacity in (1, 4, 16):
            small = MachineConfig(
                distribution=dist, cache="perfect", fifo_capacity=capacity
            )
            t_small = simulate_machine(tiny_bench_scene, small, routed=work).cycles
            assert t_small >= t_big - 1e-9

    def test_fifo_of_one_serialises_on_the_stream(self, flat_scene):
        """With 1-entry FIFOs head-of-line blocking dominates."""
        dist = BlockInterleaved(4, 8)
        work = build_routed_work(flat_scene, dist, cache_spec="perfect")
        tiny = MachineConfig(distribution=dist, cache="perfect", fifo_capacity=1)
        big = MachineConfig(distribution=dist, cache="perfect", fifo_capacity=10000)
        t_tiny = simulate_machine(flat_scene, tiny, routed=work).cycles
        t_big = simulate_machine(flat_scene, big, routed=work).cycles
        assert t_tiny > t_big


class TestTimingModes:
    def test_rejects_unknown_mode(self, flat_scene):
        config = MachineConfig(distribution=SingleProcessor())
        with pytest.raises(ConfigurationError):
            simulate_machine(flat_scene, config, timing_mode="exact")

    @pytest.mark.parametrize(
        "dist",
        [BlockInterleaved(4, 8), ScanLineInterleaved(8, 2), SingleProcessor()],
        ids=["block", "sli", "single"],
    )
    def test_fast_and_event_paths_agree_when_fifo_never_fills(
        self, tiny_bench_scene, dist
    ):
        """The claim the fast path rests on, enforced cycle for cycle."""
        work = build_routed_work(tiny_bench_scene, dist, cache_spec="lru")
        config = MachineConfig(distribution=dist, cache="lru", bus_ratio=1.0)
        fast = simulate_machine(
            tiny_bench_scene, config, routed=work, timing_mode="fast"
        )
        event = simulate_machine(
            tiny_bench_scene, config, routed=work, timing_mode="event"
        )
        assert event.cycles == pytest.approx(fast.cycles)
        assert np.allclose(event.timings.finish, fast.timings.finish)
        assert np.allclose(event.timings.busy, fast.timings.busy)

    def test_auto_matches_forced_fast_on_big_fifo(self, tiny_bench_scene):
        dist = BlockInterleaved(4, 16)
        work = build_routed_work(tiny_bench_scene, dist, cache_spec="perfect")
        config = MachineConfig(distribution=dist, cache="perfect")
        auto = simulate_machine(tiny_bench_scene, config, routed=work)
        fast = simulate_machine(
            tiny_bench_scene, config, routed=work, timing_mode="fast"
        )
        assert auto.cycles == fast.cycles
        assert auto.extras == {}  # fast path carries no event extras


class TestMonotonicities:
    def test_wider_bus_never_slower(self, tiny_bench_scene):
        dist = BlockInterleaved(4, 16)
        work = build_routed_work(tiny_bench_scene, dist, cache_spec="lru")
        times = []
        for ratio in (0.5, 1.0, 2.0, math.inf):
            config = MachineConfig(distribution=dist, cache="lru", bus_ratio=ratio)
            times.append(simulate_machine(tiny_bench_scene, config, routed=work).cycles)
        assert times == sorted(times, reverse=True)


class TestEventInstrumentation:
    def test_stream_interleave_order(self):
        triangles = [np.array([0, 2]), np.array([0, 1])]
        pixels = [np.array([10, 30]), np.array([20, 40])]
        texels = [np.array([0, 0]), np.array([16, 0])]
        stream = interleave_stream(triangles, pixels, texels)
        assert stream == [
            (0, 0, 10, 0),
            (0, 1, 20, 16),
            (1, 1, 40, 0),
            (2, 0, 30, 0),
        ]

    def test_small_fifo_reports_head_of_line_blocking(self, flat_scene):
        dist = BlockInterleaved(4, 8)
        work = build_routed_work(flat_scene, dist, cache_spec="perfect")
        config = MachineConfig(distribution=dist, cache="perfect", fifo_capacity=1)
        result = simulate_machine(flat_scene, config, routed=work)
        assert result.extras["distributor_blocked_cycles"] > 0
        assert max(result.extras["fifo_high_water"]) <= 1
        assert len(result.extras["distributor_blocked_per_node"]) == 4

    def test_big_fifo_takes_fast_path_without_extras(self, flat_scene):
        config = MachineConfig(distribution=BlockInterleaved(4, 8), cache="perfect")
        result = simulate_machine(flat_scene, config)
        assert "distributor_blocked_cycles" not in result.extras

"""Tests for the node timing model."""

import math

import numpy as np

from repro.bus import BusModel
from repro.core.node import drain_node, triangle_service_time


def run(pixels, texels, setup=25, ratio=1.0):
    return drain_node(
        np.asarray(pixels, dtype=np.int64),
        np.asarray(texels, dtype=np.int64),
        setup,
        ratio,
    )


class TestDrainNode:
    def test_empty_stream(self):
        timing = run([], [])
        assert timing.finish == 0
        assert timing.busy_cycles == 0

    def test_pixel_bound_triangles(self):
        timing = run([100, 200], [0, 0])
        assert timing.finish == 300
        assert timing.stall_cycles == 0

    def test_setup_bound_triangles(self):
        """Tiny clipped intersections cost the full 25-cycle setup."""
        timing = run([1, 0, 24], [0, 0, 0])
        assert timing.finish == 75

    def test_exactly_at_threshold(self):
        timing = run([25], [0])
        assert timing.finish == 25

    def test_bus_bound_triangle_stalls(self):
        # 100 pixels of compute but 400 texels over a 1 texel/cycle bus.
        timing = run([100], [400], ratio=1.0)
        assert timing.finish == 400
        assert timing.stall_cycles == 300
        assert timing.busy_cycles == 100

    def test_bus_ratio_halves_stall(self):
        assert run([100], [400], ratio=2.0).finish == 200
        assert run([100], [400], ratio=4.0).finish == 100

    def test_infinite_bus_never_stalls(self):
        timing = run([100, 100], [10**6, 10**6], ratio=math.inf)
        assert timing.finish == 200
        assert timing.stall_cycles == 0

    def test_bus_backlog_carries_across_triangles(self):
        """A burst of misses delays later triangles (burst saturation)."""
        timing = run([100, 100], [400, 0], ratio=1.0)
        # Triangle 1 ends at 400 (bus); triangle 2 computes 100 more.
        assert timing.finish == 500

    def test_bus_can_overlap_compute_of_following_triangle(self):
        # Triangle 1: compute 100, bus 50 -> ends at 100, bus free at 50.
        # Triangle 2's transfer starts immediately at 100.
        timing = run([100, 100], [50, 50], ratio=1.0)
        assert timing.finish == 200
        assert timing.stall_cycles == 0


class TestServiceTime:
    def test_matches_drain_node_rule(self):
        bus = BusModel(1.0)
        end = triangle_service_time(0.0, 100, 400, 25, bus)
        assert end == 400
        # Next triangle issued immediately: bus already backed up.
        end = triangle_service_time(end, 100, 0, 25, bus)
        assert end == 500

    def test_setup_floor_applies(self):
        bus = BusModel(1.0)
        assert triangle_service_time(10.0, 3, 0, 25, bus) == 35.0

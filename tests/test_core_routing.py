"""Tests for triangle routing and per-node work extraction."""

import numpy as np
import pytest

from repro.core.routing import build_routed_work, route_triangles
from repro.distribution import BlockInterleaved, ScanLineInterleaved, SingleProcessor


def test_single_processor_gets_all_work(flat_scene):
    work = build_routed_work(flat_scene, SingleProcessor(), cache_spec="perfect")
    assert work.num_processors == 1
    assert work.node_pixels[0] == len(flat_scene.fragments())
    assert len(work.triangles[0]) == flat_scene.num_triangles
    # Triangle ids arrive in submission order.
    assert (np.diff(work.triangles[0]) > 0).all()


def test_node_pixels_partition_fragments(flat_scene):
    dist = BlockInterleaved(4, 8)
    work = build_routed_work(flat_scene, dist, cache_spec="perfect")
    assert work.node_pixels.sum() == len(flat_scene.fragments())


def test_pixel_counts_match_owner_map(flat_scene):
    dist = ScanLineInterleaved(4, 8)
    work = build_routed_work(flat_scene, dist, cache_spec="perfect")
    fragments = flat_scene.fragments()
    owners = dist.owners(fragments.x, fragments.y)
    for node in range(4):
        assert work.pixels[node].sum() == (owners == node).sum()


def test_routing_superset_of_coverage(tiny_bench_scene):
    """Every node that draws a pixel of a triangle must receive it."""
    scene = tiny_bench_scene
    dist = BlockInterleaved(16, 8)
    routed = route_triangles(scene, dist)
    fragments = scene.fragments()
    owners = dist.owners(fragments.x, fragments.y)
    for tri_id in range(scene.num_triangles):
        mask = fragments.triangle == tri_id
        covering = set(np.unique(owners[mask]).tolist())
        assert covering <= set(routed[tri_id].tolist())


def test_routed_zero_pixel_triangles_cost_setup(flat_scene):
    """Bounding-box routing bills setup on grazed tiles.

    node_work must equal sum(max(25, pixels)) including zero-pixel
    entries, which is what makes tiny tiles setup-bound.
    """
    dist = BlockInterleaved(4, 2)
    work = build_routed_work(flat_scene, dist, cache_spec="perfect", setup_cycles=25)
    for node in range(4):
        expected = np.maximum(work.pixels[node], 25).sum()
        assert work.node_work[node] == expected


def test_imbalance_zero_for_uniform_scene_fine_blocks(flat_scene):
    dist = BlockInterleaved(4, 8)
    work = build_routed_work(flat_scene, dist, cache_spec="perfect")
    assert work.imbalance_percent() == pytest.approx(0.0, abs=1.0)


def test_cache_replay_aggregates_across_nodes(flat_scene):
    solo = build_routed_work(flat_scene, SingleProcessor(), cache_spec="lru")
    split = build_routed_work(flat_scene, BlockInterleaved(4, 8), cache_spec="lru")
    assert split.cache.fragments == solo.cache.fragments
    # Splitting the image can only lose line reuse, never gain it.
    assert split.cache.misses >= solo.cache.misses


def test_perfect_cache_skips_fetches(flat_scene):
    work = build_routed_work(flat_scene, BlockInterleaved(4, 8), cache_spec="perfect")
    assert work.cache.texels_fetched == 0
    for node in range(4):
        assert (work.texels[node] == 0).all()


def test_texels_align_with_routed_triangles(flat_scene):
    dist = BlockInterleaved(4, 8)
    work = build_routed_work(flat_scene, dist, cache_spec="lru")
    total = sum(work.texels[node].sum() for node in range(4))
    assert total == work.cache.texels_fetched
    for node in range(4):
        assert len(work.texels[node]) == len(work.triangles[node])
        assert len(work.pixels[node]) == len(work.triangles[node])

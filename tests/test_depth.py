"""Tests for depth interpolation and the early-Z resolve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Scene, Triangle, Vertex
from repro.raster.depth import depth_visible_mask, resolve_depth
from repro.raster.fragments import FragmentBuffer
from repro.texture.texture import MipmappedTexture


def layered_quads(depths, size=16):
    """Stacked full-size quads at the given depths, submission order."""
    scene = Scene("layers", size, size, [MipmappedTexture(16, 16)])
    for depth in depths:
        a = Vertex(0, 0, 0, 0, z=depth)
        b = Vertex(size, 0, size, 0, z=depth)
        c = Vertex(0, size, 0, size, z=depth)
        d = Vertex(size, size, size, size, z=depth)
        scene.add(Triangle(a, b, c))
        scene.add(Triangle(b, d, c))
    return scene


def reference_zbuffer(fragments: FragmentBuffer, width: int, height: int):
    """Straightforward sequential Z-buffer, for cross-checking."""
    buffer = np.full(width * height, np.inf)
    visible = np.zeros(len(fragments), dtype=bool)
    for index in range(len(fragments)):
        pixel = int(fragments.y[index]) * width + int(fragments.x[index])
        if fragments.z[index] < buffer[pixel]:
            buffer[pixel] = fragments.z[index]
            visible[index] = True
    return visible


class TestDepthInterpolation:
    def test_constant_depth_triangle(self):
        scene = layered_quads([3.5], size=8)
        fragments = scene.fragments()
        assert fragments.z == pytest.approx(np.full(len(fragments), 3.5))

    def test_sloped_depth(self):
        scene = Scene("slope", 16, 16, [MipmappedTexture(16, 16)])
        scene.add(
            Triangle(
                Vertex(0, 0, z=0.0), Vertex(16, 0, z=16.0), Vertex(0, 16, z=0.0)
            )
        )
        fragments = scene.fragments()
        # z = x at pixel centres.
        assert fragments.z == pytest.approx(fragments.x + 0.5)


class TestDepthVisibleMask:
    def test_front_to_back_keeps_only_first(self):
        scene = layered_quads([1.0, 2.0, 3.0])
        fragments = scene.fragments()
        visible = depth_visible_mask(fragments, scene.width, scene.height)
        # Only the closest (first submitted) layer survives.
        assert visible[fragments.triangle < 2].all()
        assert not visible[fragments.triangle >= 2].any()

    def test_back_to_front_keeps_every_layer(self):
        scene = layered_quads([3.0, 2.0, 1.0])
        fragments = scene.fragments()
        visible = depth_visible_mask(fragments, scene.width, scene.height)
        # Painter's order: every fragment beats the one before it.
        assert visible.all()

    def test_equal_depth_keeps_first_only(self):
        scene = layered_quads([2.0, 2.0])
        fragments = scene.fragments()
        visible = depth_visible_mask(fragments, scene.width, scene.height)
        assert visible[fragments.triangle < 2].all()
        assert not visible[fragments.triangle >= 2].any()

    def test_empty_buffer(self):
        assert depth_visible_mask(FragmentBuffer.empty(), 8, 8).size == 0

    def test_resolve_covers_each_pixel_once_for_opaque_stack(self):
        scene = layered_quads([5.0, 1.0, 3.0])
        survivors = resolve_depth(scene.fragments(), scene.width, scene.height)
        keys = survivors.y.astype(np.int64) * scene.width + survivors.x
        # Survivors at a pixel are its strictly-decreasing-depth prefix.
        assert len(np.unique(keys)) == scene.width * scene.height

    @settings(max_examples=40, deadline=None)
    @given(
        depths=st.lists(
            st.floats(min_value=0, max_value=100, width=32), min_size=1, max_size=8
        )
    )
    def test_property_matches_sequential_zbuffer(self, depths):
        scene = layered_quads(depths, size=8)
        fragments = scene.fragments()
        fast = depth_visible_mask(fragments, scene.width, scene.height)
        slow = reference_zbuffer(fragments, scene.width, scene.height)
        assert (fast == slow).all()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_property_random_geometry_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        scene = Scene("rand", 24, 24, [MipmappedTexture(16, 16)])
        for _ in range(rng.integers(1, 8)):
            verts = [
                Vertex(
                    rng.uniform(-4, 28),
                    rng.uniform(-4, 28),
                    z=float(rng.uniform(0, 10)),
                )
                for _ in range(3)
            ]
            scene.add(Triangle(*verts))
        fragments = scene.fragments()
        fast = depth_visible_mask(fragments, scene.width, scene.height)
        slow = reference_zbuffer(fragments, scene.width, scene.height)
        assert (fast == slow).all()

"""Tests for the image distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    BlockInterleaved,
    ContiguousBands,
    ScanLineInterleaved,
    SingleProcessor,
)
from repro.distribution.base import processor_grid
from repro.errors import ConfigurationError

DISTRIBUTIONS = [
    BlockInterleaved(4, 8),
    BlockInterleaved(16, 16),
    BlockInterleaved(64, 32),
    BlockInterleaved(3, 5),
    ScanLineInterleaved(4, 2),
    ScanLineInterleaved(64, 1),
    ScanLineInterleaved(7, 4),
    ContiguousBands(4, 128),
    SingleProcessor(),
]


class TestProcessorGrid:
    def test_square_counts(self):
        assert processor_grid(64) == (8, 8)
        assert processor_grid(16) == (4, 4)
        assert processor_grid(4) == (2, 2)

    def test_rectangular_counts(self):
        assert processor_grid(8) == (4, 2)
        assert processor_grid(2) == (2, 1)

    def test_primes_degrade_to_1d(self):
        assert processor_grid(7) == (7, 1)


class TestValidation:
    def test_processor_count_positive(self):
        with pytest.raises(ConfigurationError):
            BlockInterleaved(0, 16)

    def test_block_width_positive(self):
        with pytest.raises(ConfigurationError):
            BlockInterleaved(4, 0)

    def test_sli_lines_positive(self):
        with pytest.raises(ConfigurationError):
            ScanLineInterleaved(4, 0)

    def test_bands_need_enough_lines(self):
        with pytest.raises(ConfigurationError):
            ContiguousBands(100, 10)


@pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=lambda d: d.describe())
class TestPartitionInvariants:
    """Every distribution must be a total, in-range pixel partition."""

    def test_owners_in_range(self, dist):
        owner_map = dist.owner_map(96, 96)
        assert owner_map.min() >= 0
        assert owner_map.max() < dist.num_processors

    def test_every_processor_gets_pixels(self, dist):
        # The screen must contain at least one full interleave period
        # (with too few blocks for the processor count, some processors
        # legitimately starve — the paper's SLI-32 @ 64P case).
        owner_map = dist.owner_map(512, 512)
        assert len(np.unique(owner_map)) == dist.num_processors

    def test_describe_is_stable(self, dist):
        assert dist.describe() == dist.describe()


class TestBlockInterleaved:
    def test_blocks_are_uniform_within_tile(self):
        dist = BlockInterleaved(4, 8)
        owner_map = dist.owner_map(64, 64)
        for ty in range(8):
            for tx in range(8):
                tile = owner_map[ty * 8 : (ty + 1) * 8, tx * 8 : (tx + 1) * 8]
                assert len(np.unique(tile)) == 1

    def test_interleave_repeats_with_grid_period(self):
        dist = BlockInterleaved(4, 8)  # 2x2 processor grid
        owner_map = dist.owner_map(64, 64)
        assert (owner_map[:, :16] == owner_map[:, 16:32]).all()
        assert (owner_map[:16, :] == owner_map[16:32, :]).all()

    def test_adjacent_blocks_differ(self):
        dist = BlockInterleaved(4, 8)
        owner_map = dist.owner_map(64, 64)
        assert owner_map[0, 0] != owner_map[0, 8]
        assert owner_map[0, 0] != owner_map[8, 0]

    def test_pixel_share_is_balanced_when_grid_divides_screen(self):
        dist = BlockInterleaved(16, 8)
        counts = np.bincount(dist.owner_map(512, 512).ravel(), minlength=16)
        assert (counts == counts[0]).all()


class TestScanLineInterleaved:
    def test_rows_within_group_share_owner(self):
        dist = ScanLineInterleaved(4, 4)
        owner_map = dist.owner_map(16, 64)
        for group in range(16):
            rows = owner_map[group * 4 : (group + 1) * 4]
            assert len(np.unique(rows)) == 1
            assert rows[0, 0] == group % 4

    def test_single_line_interleave_is_voodoo2_style(self):
        dist = ScanLineInterleaved(2, 1)
        owner_map = dist.owner_map(8, 8)
        assert (owner_map[::2] == 0).all()
        assert (owner_map[1::2] == 1).all()


class TestContiguousBands:
    def test_bands_are_contiguous_and_ordered(self):
        dist = ContiguousBands(4, 128)
        owner_map = dist.owner_map(8, 128)
        owners = owner_map[:, 0]
        assert (np.diff(owners) >= 0).all()
        assert np.bincount(owners).tolist() == [32, 32, 32, 32]


@pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=lambda d: d.describe())
@settings(max_examples=25, deadline=None)
@given(
    x0=st.integers(min_value=0, max_value=90),
    y0=st.integers(min_value=0, max_value=90),
    dx=st.integers(min_value=0, max_value=40),
    dy=st.integers(min_value=0, max_value=40),
)
def test_property_nodes_in_box_covers_all_owners(dist, x0, y0, dx, dy):
    """Bounding-box routing must reach every node owning a box pixel."""
    x1, y1 = x0 + dx, y0 + dy
    ys, xs = np.mgrid[y0 : y1 + 1, x0 : x1 + 1]
    owners = set(dist.owners(xs.ravel(), ys.ravel()).tolist())
    routed = set(dist.nodes_in_box(x0, y0, x1, y1).tolist())
    assert owners <= routed
    assert all(0 <= node < dist.num_processors for node in routed)


def test_single_processor_owns_everything():
    dist = SingleProcessor()
    assert dist.num_processors == 1
    assert dist.owner_map(16, 16).sum() == 0


class TestMortonInterleaved:
    def test_morton_index_known_values(self):
        from repro.distribution import morton_index

        assert morton_index(np.array([0]), np.array([0]))[0] == 0
        assert morton_index(np.array([1]), np.array([0]))[0] == 1
        assert morton_index(np.array([0]), np.array([1]))[0] == 2
        assert morton_index(np.array([1]), np.array([1]))[0] == 3
        assert morton_index(np.array([2]), np.array([2]))[0] == 12

    def test_morton_index_is_a_bijection_on_a_grid(self):
        from repro.distribution import morton_index

        xs, ys = np.meshgrid(np.arange(16), np.arange(16))
        codes = morton_index(xs.ravel(), ys.ravel())
        assert len(np.unique(codes)) == 256

    def test_partition_invariants(self):
        from repro.distribution import MortonInterleaved

        dist = MortonInterleaved(16, 8)
        owner_map = dist.owner_map(256, 256)
        assert owner_map.min() >= 0 and owner_map.max() < 16
        assert len(np.unique(owner_map)) == 16

    def test_box_routing_covers_owners(self):
        from repro.distribution import MortonInterleaved

        dist = MortonInterleaved(8, 8)
        ys, xs = np.mgrid[5:60, 9:70]
        owners = set(np.unique(dist.owners(xs.ravel(), ys.ravel())).tolist())
        routed = set(dist.nodes_in_box(9, 5, 69, 59).tolist())
        assert owners <= routed

    def test_validation(self):
        from repro.distribution import MortonInterleaved

        with pytest.raises(ConfigurationError):
            MortonInterleaved(4, 0)

    def test_pixel_share_balanced_on_pow2_screen(self):
        from repro.distribution import MortonInterleaved

        dist = MortonInterleaved(4, 16)
        counts = np.bincount(dist.owner_map(256, 256).ravel(), minlength=4)
        assert (counts == counts[0]).all()

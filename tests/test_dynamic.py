"""Tests for tile grids, explicit assignments and the dynamic study."""

import numpy as np
import pytest

from repro.analysis.dynamic import (
    compare_static_dynamic,
    dynamic_assignment_for,
    render_comparison,
)
from repro.distribution import AssignedTiles, TileGrid, lpt_assignment
from repro.errors import ConfigurationError


class TestTileGrid:
    def test_tile_count_and_ids(self):
        grid = TileGrid(16, 64, 48)
        assert grid.num_tiles == 4 * 3
        owners = grid.owner_map(64, 48)
        assert owners[0, 0] == 0
        assert owners[0, 63] == 3
        assert owners[47, 63] == 11

    def test_partial_edge_tiles_counted(self):
        grid = TileGrid(16, 70, 33)
        assert (grid.tiles_x, grid.tiles_y) == (5, 3)

    def test_every_tile_is_its_own_owner(self):
        grid = TileGrid(8, 64, 64)
        owners = grid.owner_map(64, 64)
        assert len(np.unique(owners)) == grid.num_tiles

    def test_box_routing_matches_owner_map(self):
        grid = TileGrid(8, 64, 64)
        ys, xs = np.mgrid[10:30, 5:50]
        expected = set(np.unique(grid.owners(xs.ravel(), ys.ravel())).tolist())
        routed = set(grid.nodes_in_box(5, 10, 49, 29).tolist())
        assert expected <= routed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TileGrid(0, 64, 64)
        with pytest.raises(ConfigurationError):
            TileGrid(8, 0, 64)


class TestAssignedTiles:
    def test_assignment_applies(self):
        grid = TileGrid(16, 64, 64)
        assignment = np.arange(grid.num_tiles) % 4
        dist = AssignedTiles(grid, assignment, 4)
        owners = dist.owner_map(64, 64)
        assert owners[0, 0] == 0
        assert owners[0, 17] == 1
        assert set(np.unique(owners)) == {0, 1, 2, 3}

    def test_wrong_length_rejected(self):
        grid = TileGrid(16, 64, 64)
        with pytest.raises(ConfigurationError):
            AssignedTiles(grid, [0, 1], 4)

    def test_out_of_range_processor_rejected(self):
        grid = TileGrid(32, 64, 64)
        with pytest.raises(ConfigurationError):
            AssignedTiles(grid, [0, 1, 2, 9], 4)

    def test_box_routing_covers_owners(self):
        grid = TileGrid(8, 64, 64)
        rng = np.random.default_rng(3)
        assignment = rng.integers(0, 5, size=grid.num_tiles)
        dist = AssignedTiles(grid, assignment, 5)
        ys, xs = np.mgrid[3:40, 7:55]
        owners = set(np.unique(dist.owners(xs.ravel(), ys.ravel())).tolist())
        routed = set(dist.nodes_in_box(7, 3, 54, 39).tolist())
        assert owners <= routed


class TestLptAssignment:
    def test_balances_equal_work(self):
        assignment = lpt_assignment(np.ones(8), 4)
        loads = np.bincount(assignment, minlength=4)
        assert (loads == 2).all()

    def test_biggest_items_spread_first(self):
        work = np.array([10.0, 10.0, 1.0, 1.0])
        assignment = lpt_assignment(work, 2)
        assert assignment[0] != assignment[1]
        loads = np.bincount(assignment, weights=work, minlength=2)
        assert loads.max() == pytest.approx(11.0)

    def test_never_worse_than_interleave_makespan(self):
        rng = np.random.default_rng(11)
        work = rng.exponential(100, size=60)
        lpt = lpt_assignment(work, 6)
        lpt_makespan = np.bincount(lpt, weights=work, minlength=6).max()
        interleave = np.arange(60) % 6
        static_makespan = np.bincount(interleave, weights=work, minlength=6).max()
        assert lpt_makespan <= static_makespan

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            lpt_assignment(np.ones(3), 0)


class TestDynamicStudy:
    def test_dynamic_never_less_balanced(self, tiny_bench_scene):
        rows = compare_static_dynamic(
            tiny_bench_scene, [8, 16], 8, cache="perfect"
        )
        for row in rows:
            assert row.dynamic_imbalance <= row.static_imbalance + 1e-6

    def test_assignment_for_uses_every_processor(self, tiny_bench_scene):
        dist = dynamic_assignment_for(tiny_bench_scene, 16, 8)
        owners = dist.owner_map(tiny_bench_scene.width, tiny_bench_scene.height)
        assert len(np.unique(owners)) == 8

    def test_render_contains_rows(self, tiny_bench_scene):
        rows = compare_static_dynamic(tiny_bench_scene, [16], 4, cache="perfect")
        text = render_comparison("tiny", rows, 4, 0.0625)
        assert "dynamic" in text and "16" in text

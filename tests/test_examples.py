"""Smoke tests: every example script runs and prints what it promises.

Examples are user-facing documentation; a release where one of them
crashes is broken regardless of the library tests.  Each runs in-process
(via runpy) at a tiny scale where the script accepts one.
"""

import runpy
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, *argv):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    # Patch the scale used inside by running at the default; the scene
    # cache keeps repeat runs cheap.
    out = run_example(monkeypatch, capsys, "quickstart.py")
    assert "speedup" in out
    assert "texels/fragment" in out


def test_design_space(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "design_space.py", "0.0625")
    assert "best block" in out
    assert "winner" in out


def test_vr_walkthrough(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "vr_walkthrough.py", "0.0625")
    assert "buffer entries" in out
    assert "of ideal" in out


def test_sli_scaling_study(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "sli_scaling_study.py", "0.0625")
    assert "speedup block" in out
    assert "speedup sli" in out


def test_opengl_room_demo(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "opengl_room_demo.py")
    assert "geometry stage emitted" in out
    assert "critical" in out


def test_export_artifacts(monkeypatch, capsys, tmp_path):
    monkeypatch.chdir(tmp_path)
    out = run_example(monkeypatch, capsys, "export_artifacts.py", "0.0625")
    assert "owners_block16.ppm" in out
    assert (tmp_path / "artifacts" / "sweep.csv").exists()
    assert (tmp_path / "artifacts" / "owners_sli4.ppm").stat().st_size > 100


def test_render_frame(monkeypatch, capsys, tmp_path):
    monkeypatch.syspath_prepend(str(EXAMPLES))
    out = run_example(monkeypatch, capsys, "render_frame.py", str(tmp_path))
    assert "frame.ppm" in out
    assert (tmp_path / "frame.ppm").stat().st_size > 1000
    assert (tmp_path / "frame_moved.ppm").exists()

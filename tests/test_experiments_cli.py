"""Tests for the experiment registry and the CLI front-end.

Experiments run at a very small scale here — these tests check wiring
and output shape, not the quantitative results (the benchmark harness
owns those).
"""

from repro.analysis import experiments
from repro.cli import main

SCALE = 0.0625


class TestExperimentFunctions:
    def test_table1_lists_all_scenes(self):
        text = experiments.table1(SCALE)
        for name in ("room3", "teapot_full", "quake", "truc640"):
            assert name in text

    def test_fig5_imbalance_has_all_sizes(self):
        text = experiments.fig5_imbalance("block", SCALE, processors=8)
        for width in experiments.BLOCK_WIDTHS:
            assert f"w{width}" in text

    def test_fig5_speedup_series_header(self):
        text = experiments.fig5_speedup("sli", SCALE)
        assert "lines\\processors" in text

    def test_fig6_mentions_scene(self):
        text = experiments.fig6("massive32_1255", "sli", SCALE)
        assert "massive32_1255" in text
        assert "lines\\processors" in text

    def test_fig7_contains_every_scene_panel(self):
        text = experiments.fig7("block", SCALE, scenes=("quake", "blowout775"))
        assert "quake" in text and "blowout775" in text

    def test_fig8_buffer_columns(self):
        text = experiments.fig8("perfect", SCALE)
        assert "width\\buffer" in text
        assert "10000" in text

    def test_ablations_render(self):
        assert "4KB" in experiments.ablation_cache_size(SCALE)
        assert "1-way" in experiments.ablation_cache_associativity(SCALE)
        assert "bands" in experiments.ablation_interleaving(SCALE)
        assert "raster 16x1" in experiments.ablation_texture_blocking(SCALE)

    def test_registry_entries_are_callable(self):
        assert set(experiments.EXPERIMENTS) >= {
            "table1",
            "fig5-imbalance",
            "fig5-speedup",
            "fig6",
            "fig7",
            "fig7-ratio2",
            "fig8",
            "ablations",
        }
        for name, (description, runner) in experiments.EXPERIMENTS.items():
            assert description
            assert callable(runner)


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig8" in out

    def test_list_prints_spec_params_and_defaults(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        # Spec-backed experiments show their parameter space inline.
        assert "params: scale=0.25" in out
        assert "family=block (block|sli)" in out
        # The derived child advertises its overridden default.
        assert "bus_ratio=2.0" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bad_scale(self, capsys):
        assert main(["table1", "--scale", "3"]) == 2
        assert "scale" in capsys.readouterr().err

    def test_runs_one_experiment(self, capsys):
        assert main(["table1", "--scale", str(SCALE)]) == 0
        out = capsys.readouterr().out
        assert "scene characteristics" in out
        assert "room3" in out

    def test_writes_output_files(self, tmp_path, capsys):
        assert main(["table1", "--scale", str(SCALE), "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        written = tmp_path / "table1.txt"
        assert written.exists()
        assert "room3" in written.read_text()

    def test_dump_and_replay_trace(self, tmp_path, capsys):
        path = tmp_path / "scene.trace"
        assert main([
            "dump-trace", "--scene", "blowout775",
            "--path", str(path), "--scale", str(SCALE),
        ]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main([
            "replay-trace", "--path", str(path),
            "--processors", "4", "--width", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "blowout775" in out and "speedup" in out

    def test_dump_trace_requires_path_and_known_scene(self, tmp_path, capsys):
        assert main(["dump-trace", "--scene", "blowout775"]) == 2
        assert "needs --path" in capsys.readouterr().err
        assert main([
            "dump-trace", "--scene", "doom", "--path", str(tmp_path / "x.trace"),
        ]) == 2
        assert "unknown scene" in capsys.readouterr().err

    def test_replay_trace_requires_path(self, capsys):
        assert main(["replay-trace"]) == 2
        assert "needs --path" in capsys.readouterr().err

    def test_workers_flag_exports_env(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert main(["list", "--workers", "3"]) == 0
        capsys.readouterr()
        import os

        assert os.environ["REPRO_WORKERS"] == "3"

    def test_workers_flag_validation(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert main(["table1", "--workers", "nope"]) == 2
        assert "--workers must be an int" in capsys.readouterr().err
        assert main(["table1", "--workers", "-3"]) == 2
        assert "--workers must be >= 0" in capsys.readouterr().err
        import os

        assert "REPRO_WORKERS" not in os.environ

    def test_timings_flag_prints_stage_table(self, capsys):
        assert main(["table1", "--scale", str(SCALE), "--timings"]) == 0
        out = capsys.readouterr().out
        assert "pipeline stage timings" in out
        assert "scene" in out and "mem hits" in out


class TestMethodologyExperiments:
    def test_cad_contrast_shows_lower_cache_pressure(self):
        text = experiments.cad_contrast(SCALE, num_processors=8)
        assert "viewperf_cad" in text
        assert "massive32_1255" in text

    def test_cad_scene_really_is_texture_light(self):
        from repro.analysis import texel_to_fragment_ratio
        from repro.distribution import BlockInterleaved
        from repro.workloads import build_scene
        from repro.workloads.generator import generate_scene
        from repro.workloads.scenes import CAD_CONTRAST_SPEC

        cad = generate_scene(CAD_CONTRAST_SPEC, scale=SCALE)
        vr = build_scene("massive32_1255", SCALE)
        dist = BlockInterleaved(8, 16)
        assert texel_to_fragment_ratio(cad, dist) < texel_to_fragment_ratio(vr, dist)

    def test_scale_stability_lists_scales(self):
        text = experiments.scale_stability(0.25, scales=(0.0625, 0.125), num_processors=4)
        assert "0.062" in text and "0.125" in text
        assert "best width" in text

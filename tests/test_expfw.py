"""Tests for the experiment framework (repro.expfw).

Covers the typed parameter spaces, spec registration/inheritance and
byte-identity with the legacy hand-rolled figure text, the
content-addressed run archive (including record → replay round-trips
and ``REPRO_ARTIFACT_DIR`` sharing between two processes), the
budgeted search driver (grid + successive halving, seed determinism,
budget accounting), and the service integration (``POST /searches``).

Simulations run at tiny scales — wiring and reproducibility are under
test here, not the quantitative results.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.expfw import (
    Param,
    ParamSpace,
    RunArchive,
    RunResult,
    SearchConfig,
    SearchDriver,
    parse_search_payload,
    replay_record,
    run_record,
    run_search,
    trial_record,
)
from repro.expfw.search import Budget
from repro.expfw.spec import require_spec, searchable_spec
from repro.pipeline.store import ArtifactStore
from repro.service.jobs import execute_payload

SCALE = 0.0625

REPO_ROOT = Path(__file__).resolve().parents[1]


def tiny_archive(tmp_path) -> RunArchive:
    """An archive isolated from the process-global pipeline store."""
    return RunArchive(root=tmp_path / "archive", store=ArtifactStore(max_entries=64))


# ---------------------------------------------------------------------------
# Params


class TestParams:
    def test_integer_bounds_enforced(self):
        param = Param.integer("processors", 16, minimum=1, maximum=64)
        assert param.validate(4) == 4
        with pytest.raises(ConfigurationError):
            param.validate(0)
        with pytest.raises(ConfigurationError):
            param.validate(128)
        with pytest.raises(ConfigurationError):
            param.validate(1.5)

    def test_bool_is_not_an_int(self):
        param = Param.integer("fifo", 10)
        with pytest.raises(ConfigurationError):
            param.validate(True)

    def test_choice_validates_membership(self):
        param = Param.choice("family", "block", ("block", "sli"))
        assert param.validate("sli") == "sli"
        with pytest.raises(ConfigurationError):
            param.validate("bands")

    def test_names_validates_each_entry(self):
        param = Param.names("scenes", ("a", "b"), ("a", "b", "c"))
        assert param.validate(["c", "a"]) == ("c", "a")
        with pytest.raises(ConfigurationError):
            param.validate(["a", "nope"])

    def test_bad_default_rejected_at_declaration(self):
        with pytest.raises(ConfigurationError):
            Param.integer("n", 0, minimum=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Param("x", "complex", 1)

    def test_space_rejects_duplicates_and_unknown_overrides(self):
        space = ParamSpace((Param.integer("n", 1), Param.number("scale", 0.25)))
        with pytest.raises(ConfigurationError):
            ParamSpace((Param.integer("n", 1), Param.integer("n", 2)))
        with pytest.raises(ConfigurationError):
            space.resolve({"bogus": 3})

    def test_resolve_layers_overrides_onto_defaults(self):
        space = ParamSpace((Param.integer("n", 1), Param.number("scale", 0.25)))
        assert space.resolve() == {"n": 1, "scale": 0.25}
        assert space.resolve({"n": 5}) == {"n": 5, "scale": 0.25}

    def test_grid_order_matches_nested_loops(self):
        space = ParamSpace((Param.integer("a", 0), Param.integer("b", 0)))
        points = space.grid({"a": (1, 2), "b": (10, 20)})
        assert [(p["a"], p["b"]) for p in points] == [
            (1, 10), (1, 20), (2, 10), (2, 20),
        ]

    def test_derive_overrides_defaults_and_adds_params(self):
        space = ParamSpace((Param.integer("n", 1, minimum=1),))
        child = space.derive(defaults={"n": 4}, extra=(Param.flag("fast", True),))
        assert child.resolve() == {"n": 4, "fast": True}
        with pytest.raises(ConfigurationError):
            space.derive(defaults={"bogus": 1})
        # The derived default still honours the parent's bounds.
        with pytest.raises(ConfigurationError):
            space.derive(defaults={"n": 0})


# ---------------------------------------------------------------------------
# Specs


class TestSpecs:
    def test_render_is_byte_identical_to_hand_rolled_text(self):
        from repro.analysis.experiments.fig5 import fig5_imbalance, fig5_speedup
        from repro.analysis.experiments.fig7 import fig7

        cases = {
            "fig5-imbalance": fig5_imbalance("block", SCALE)
            + "\n\n"
            + fig5_imbalance("sli", SCALE),
            "fig5-speedup": fig5_speedup("block", SCALE)
            + "\n\n"
            + fig5_speedup("sli", SCALE),
            "fig7-ratio2": fig7(
                "block", SCALE, bus_ratio=2.0, scenes=("massive32_1255", "teapot_full")
            )
            + "\n\n"
            + fig7(
                "sli", SCALE, bus_ratio=2.0, scenes=("massive32_1255", "teapot_full")
            ),
        }
        for name, legacy in cases.items():
            assert require_spec(name).render(SCALE) == legacy

    def test_registry_adapter_runs_the_spec(self):
        from repro.analysis.experiments.registry import EXPERIMENTS

        _description, runner = EXPERIMENTS["fig5-imbalance"]
        assert runner(SCALE) == require_spec("fig5-imbalance").render(SCALE)

    def test_derived_spec_inherits_and_overrides(self):
        parent = require_spec("fig7")
        child = require_spec("fig7-ratio2")
        assert child.resolve()["bus_ratio"] == 2.0
        assert child.resolve()["scenes"] == ("massive32_1255", "teapot_full")
        assert parent.resolve()["bus_ratio"] == 1.0
        # Same runner and trial template, different defaults.
        assert child.runner is parent.runner
        assert child.trial is parent.trial

    def test_run_validates_overrides(self):
        spec = require_spec("fig5-speedup")
        with pytest.raises(ConfigurationError):
            spec.run({"scene": "not-a-scene"})
        with pytest.raises(ConfigurationError):
            spec.run({"bogus": 1})

    def test_run_key_is_stable_and_seed_aware(self):
        spec = require_spec("fig7")
        params = spec.resolve({"scale": SCALE})
        assert spec.run_key(params) == spec.run_key(dict(params))
        assert spec.run_key(params, seed=3) != spec.run_key(params)

    def test_unknown_and_unsearchable_specs_raise(self):
        with pytest.raises(ConfigurationError):
            require_spec("not-an-experiment")
        with pytest.raises(ConfigurationError):
            searchable_spec("fig5-imbalance")  # no trial template

    def test_trial_payload_layering(self):
        spec = searchable_spec("fig7")
        params = spec.resolve({"scale": SCALE})
        payload = spec.trial.payload(
            params, {"size": 8}, fixed={"scene": "quake", "scale": 0.125}
        )
        assert payload["size"] == 8
        assert payload["scene"] == "quake"
        assert payload["scale"] == 0.125  # fixed overrides the carried param
        assert payload["family"] == "block"


# ---------------------------------------------------------------------------
# Archive


class TestArchive:
    def trial(self, archive):
        payload = {
            "scene": "truc640",
            "scale": SCALE,
            "family": "block",
            "processors": 4,
            "size": 16,
        }
        result = execute_payload(payload)
        record = trial_record(
            experiment="fig7",
            strategy="grid",
            rung=0,
            point={"size": 16},
            payload=payload,
            seed=7,
            result=result,
        )
        archive.record(record)
        return record

    def test_record_round_trips_through_json(self, tmp_path):
        archive = tiny_archive(tmp_path)
        record = self.trial(archive)
        # A fresh archive over the same root reads the JSON file.
        again = RunArchive(root=archive.root, store=ArtifactStore(max_entries=4))
        loaded = again.get(record["key"])
        assert loaded == json.loads(json.dumps(record))
        assert again.keys() == [record["key"]]

    def test_record_requires_key_and_kind(self, tmp_path):
        archive = tiny_archive(tmp_path)
        with pytest.raises(ConfigurationError):
            archive.record({"kind": "trial"})
        with pytest.raises(ConfigurationError):
            archive.record({"key": "x", "kind": "bogus"})

    def test_get_unknown_key_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            tiny_archive(tmp_path).get("trial/missing")

    def test_trial_replay_is_bit_identical(self, tmp_path):
        record = self.trial(tiny_archive(tmp_path))
        report = replay_record(record)
        assert report.ok, report.summary()
        assert report.metrics == record["metrics"]
        assert "cycles" in report.metrics and "speedup" in report.metrics

    def test_replay_detects_tampered_metrics(self, tmp_path):
        record = self.trial(tiny_archive(tmp_path))
        record["metrics"]["cycles"] = record["metrics"]["cycles"] + 1.0
        report = replay_record(record)
        assert not report.ok
        assert any("cycles" in diff for diff in report.diffs)

    def test_run_record_replay_round_trip(self, tmp_path):
        spec = require_spec("fig5-speedup")
        params = spec.resolve({"scale": SCALE})
        record = run_record(spec, params, spec.run(params), seed=1)
        tiny_archive(tmp_path).record(record)
        report = replay_record(record)
        assert report.ok, report.summary()

    def test_search_records_are_not_replayable(self, tmp_path):
        with pytest.raises(ConfigurationError):
            replay_record({"kind": "search", "key": "search/x"})

    def test_two_process_sharing_through_artifact_dir(self, tmp_path):
        """Process A archives a golden-scene trial; process B replays it
        bit-identically through the shared ``REPRO_ARTIFACT_DIR``."""
        env = dict(os.environ)
        env["REPRO_ARTIFACT_DIR"] = str(tmp_path)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        writer = (
            "from repro.expfw import RunArchive, trial_record\n"
            "from repro.service.jobs import execute_payload\n"
            "payload = {'scene': 'truc640', 'scale': %r, 'family': 'block',\n"
            "           'processors': 4, 'size': 16}\n"
            "result = execute_payload(payload)\n"
            "record = trial_record(experiment='fig7', strategy='grid', rung=0,\n"
            "                      point={'size': 16}, payload=payload, seed=7,\n"
            "                      result=result)\n"
            "print(RunArchive().record(record))\n" % SCALE
        )
        first = subprocess.run(
            [sys.executable, "-c", writer],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert first.returncode == 0, first.stderr
        key = first.stdout.strip().splitlines()[-1]
        reader = (
            "import sys\n"
            "from repro.expfw import RunArchive, replay_record\n"
            "report = replay_record(RunArchive().get(sys.argv[1]))\n"
            "print(report.summary())\n"
            "sys.exit(0 if report.ok else 1)\n"
        )
        second = subprocess.run(
            [sys.executable, "-c", reader, key],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert second.returncode == 0, second.stdout + second.stderr
        assert "bit-identically" in second.stdout


# ---------------------------------------------------------------------------
# Search


class TestSearchConfig:
    def test_payload_validation(self):
        config = parse_search_payload({"experiment": "fig7", "budget": 100.0})
        assert config.strategy == "both" and config.unit == "cycles"
        for bad in (
            {"budget": 1},  # no experiment
            {"experiment": "fig7"},  # no budget
            {"experiment": "fig7", "budget": -1},
            {"experiment": "fig7", "budget": 1, "strategy": "annealing"},
            {"experiment": "fig7", "budget": 1, "unit": "joules"},
            {"experiment": "fig7", "budget": 1, "bogus": 3},
            {"experiment": "fig7", "budget": 1, "overrides": []},
            {"experiment": "fig7", "budget": 1, "seed": "x"},
            {"experiment": "table1", "budget": 1},  # no spec/trial
            {"experiment": "fig7", "budget": 1, "eta": 1},
            {"experiment": "fig7", "budget": 1, "max_trials": 0},
        ):
            with pytest.raises(ConfigurationError):
                parse_search_payload(bad)

    def test_budget_charges_cycles_or_seconds(self):
        cycles = Budget(100.0, "cycles")
        cycles.charge({"metrics": {"cycles": 60.0}, "elapsed_seconds": 1.0})
        assert cycles.spent == 60.0 and not cycles.exhausted()
        cycles.charge({"metrics": {"cycles": 40.0}})
        assert cycles.exhausted()
        seconds = Budget(1.0, "seconds")
        seconds.charge({"metrics": {"cycles": 1e9}, "elapsed_seconds": 0.25})
        assert seconds.spent == 0.25


class FakeDispatcher:
    """Deterministic results without simulating; records every payload."""

    def __init__(self):
        self.payloads = []

    def run_many(self, payloads):
        results = []
        for payload in payloads:
            self.payloads.append(dict(payload))
            # Smaller tiles "win": speedup = 100 / size, cost = size.
            size = payload["size"]
            results.append(
                {
                    "key": f"fake/{json.dumps(payload, sort_keys=True)}",
                    "text": "fake",
                    "elapsed_seconds": 0.01,
                    "metrics": {"cycles": float(size), "speedup": 100.0 / size},
                }
            )
        return results


class TestSearchDriver:
    def config(self, **kwargs):
        base = dict(
            experiment="fig7",
            budget=1e9,
            strategy="both",
            seed=0,
            overrides={"scale": SCALE},
            rungs=2,
            wave=4,
        )
        base.update(kwargs)
        return SearchConfig(**base)

    def test_grid_enumerates_the_cross_product(self, tmp_path):
        dispatcher = FakeDispatcher()
        driver = SearchDriver(
            self.config(strategy="grid"),
            dispatcher=dispatcher,
            archive=tiny_archive(tmp_path),
        )
        report = driver.run()
        spec = searchable_spec("fig7")
        axes = spec.trial.axes_for(spec.resolve({"scale": SCALE}))
        expected = 1
        for values in axes.values():
            expected *= len(values)
        assert report["strategies"]["grid"]["evaluated"] == expected
        assert len(report["trials"]) == expected
        # The best fake config is the smallest tile.
        assert report["winner"]["point"]["size"] == min(axes["size"])

    def test_max_trials_subsamples_deterministically(self, tmp_path):
        reports = [
            SearchDriver(
                self.config(strategy="grid", max_trials=5, seed=42),
                dispatcher=FakeDispatcher(),
                archive=tiny_archive(tmp_path / str(index)),
            ).run()
            for index in range(2)
        ]
        assert len(reports[0]["trials"]) == 5
        assert reports[0]["trials"] == reports[1]["trials"]

    def test_seed_changes_the_subsample(self, tmp_path):
        picks = []
        for seed in (1, 2):
            driver = SearchDriver(
                self.config(strategy="grid", max_trials=4, seed=seed),
                dispatcher=FakeDispatcher(),
                archive=tiny_archive(tmp_path / str(seed)),
            )
            driver.run()
            picks.append([t.point for t in driver.trials])
        assert picks[0] != picks[1]

    def test_halving_promotes_survivors_to_higher_scales(self, tmp_path):
        dispatcher = FakeDispatcher()
        driver = SearchDriver(
            self.config(strategy="halving", max_trials=6, rungs=2),
            dispatcher=dispatcher,
            archive=tiny_archive(tmp_path),
        )
        report = driver.run()
        rungs = report["strategies"]["halving"]["rungs"]
        assert len(rungs) == 2
        assert rungs[0]["evaluated"] == 6
        assert rungs[1]["evaluated"] == 3  # ceil(6 / eta)
        assert rungs[0]["scale"] < rungs[1]["scale"]
        assert rungs[1]["scale"] == pytest.approx(SCALE)
        # The final rung ran at full scale, so the winner is full-scale.
        assert report["winner"]["at_full_scale"]

    def test_budget_exhaustion_drops_remaining_trials(self, tmp_path):
        driver = SearchDriver(
            # Fake cycles cost == size, so two small waves exhaust this.
            self.config(strategy="grid", budget=10.0, wave=1),
            dispatcher=FakeDispatcher(),
            archive=tiny_archive(tmp_path),
        )
        report = driver.run()
        assert report["dropped"] > 0
        assert report["budget"]["spent"] >= 10.0
        assert len(report["trials"]) < report["strategies"]["grid"]["candidates"]

    def test_every_trial_is_archived_as_a_replayable_record(self, tmp_path):
        archive = tiny_archive(tmp_path)
        report = SearchDriver(
            self.config(strategy="grid", max_trials=3),
            dispatcher=FakeDispatcher(),
            archive=archive,
        ).run()
        keys = set(archive.keys())
        assert set(report["trials"]) <= keys
        assert report["key"] in keys
        record = archive.get(report["trials"][0])
        assert record["kind"] == "trial"
        assert record["payload"]["scene"] == "massive32_1255"
        assert record["result_key"].startswith("fake/")
        assert isinstance(record["seed"], int)

    def test_inline_end_to_end_with_real_simulation(self, tmp_path):
        """The acceptance path: grid + halving on fig7, archived, and a
        replayed trial reproduces its metrics bit-identically."""
        archive = tiny_archive(tmp_path)
        report = run_search(
            self.config(max_trials=2, wave=2, budget=1e10),
            archive=archive,
        )
        assert report["winner"] is not None
        assert set(report["strategies"]) == {"grid", "halving"}
        trial = archive.get(report["winner"]["record_key"])
        assert trial["metrics"]["speedup"] > 0
        replayed = replay_record(trial)
        assert replayed.ok, replayed.summary()
        assert replayed.metrics == trial["metrics"]


# ---------------------------------------------------------------------------
# Service integration


class TestSearchService:
    @pytest.fixture
    def service(self, tmp_path, monkeypatch):
        from repro.service import Scheduler
        from repro.service.http import make_server

        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path))
        scheduler = Scheduler(workers=0).start()
        server = make_server(scheduler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        scheduler.stop()

    def test_post_searches_round_trip(self, service):
        from repro.service import ServiceClient

        client = ServiceClient(service.url)
        record = client.start_search(
            {
                "experiment": "fig7",
                "budget": 1e10,
                "strategy": "halving",
                "seed": 5,
                "max_trials": 2,
                "rungs": 2,
                "wave": 2,
                "overrides": {"scale": SCALE},
            }
        )
        assert record["state"] == "running" and record["id"]
        done = client.wait_search(record["id"], timeout=300)
        assert done["state"] == "done", done
        assert done["trials"] >= 2
        assert done["report_key"].startswith("search/fig7/")
        assert done["winner"]["point"]["size"] > 0
        listed = client.searches()["searches"]
        assert [entry["id"] for entry in listed] == [record["id"]]
        metrics = client.metrics()
        assert metrics["counters"]["searches_completed"] == 1
        assert metrics["searches"] == {"done": 1}
        # Trials rode the normal job queue.
        assert metrics["counters"]["submitted"] >= done["trials"]

    def test_post_searches_validates_payload(self, service):
        from repro.errors import ServiceError
        from repro.service import ServiceClient

        client = ServiceClient(service.url)
        with pytest.raises(ServiceError) as excinfo:
            client.start_search({"experiment": "fig7"})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client.search("search-404")
        assert excinfo.value.status == 404

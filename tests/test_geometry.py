"""Tests for vertices, triangles and scenes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry import Scene, Triangle, Vertex
from repro.texture.texture import MipmappedTexture


def tri(coords, texture=0):
    vertices = [Vertex(*c) for c in coords]
    return Triangle(vertices[0], vertices[1], vertices[2], texture=texture)


class TestTriangle:
    def test_area_of_right_triangle(self):
        t = tri([(0, 0), (10, 0), (0, 10)])
        assert t.area() == pytest.approx(50.0)

    def test_area_is_winding_independent(self):
        a = tri([(0, 0), (10, 0), (0, 10)])
        b = tri([(0, 0), (0, 10), (10, 0)])
        assert a.area() == b.area()
        assert a.signed_area() == -b.signed_area()

    def test_bounding_box(self):
        t = tri([(2, 3), (9, 1), (4, 8)])
        assert t.bounding_box() == (2, 1, 9, 8)

    def test_degenerate_detection(self):
        collinear = tri([(0, 0), (5, 5), (10, 10)])
        assert collinear.is_degenerate()
        assert not tri([(0, 0), (1, 0), (0, 1)]).is_degenerate()

    def test_negative_texture_rejected(self):
        with pytest.raises(ConfigurationError):
            tri([(0, 0), (1, 0), (0, 1)], texture=-1)

    def test_texel_scale_identity_mapping(self):
        t = Triangle(
            Vertex(0, 0, 0, 0), Vertex(10, 0, 10, 0), Vertex(0, 10, 0, 10)
        )
        assert t.texel_to_pixel_scale() == pytest.approx(1.0)

    def test_texel_scale_minified_mapping(self):
        t = Triangle(
            Vertex(0, 0, 0, 0), Vertex(10, 0, 40, 0), Vertex(0, 10, 0, 40)
        )
        assert t.texel_to_pixel_scale() == pytest.approx(4.0)

    def test_texel_scale_of_degenerate_is_zero(self):
        t = tri([(0, 0), (5, 5), (10, 10)])
        assert t.texel_to_pixel_scale() == 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        angle=st.floats(min_value=0.0, max_value=2 * math.pi),
        scale=st.floats(min_value=0.05, max_value=16.0),
    )
    def test_property_texel_scale_is_rotation_invariant(self, angle, scale):
        """Rotating the screen footprint never changes the texel scale.

        The affine-Jacobian derivation must see through any rigid motion
        of the screen triangle.
        """
        cos_a, sin_a = math.cos(angle), math.sin(angle)

        def rotated(x, y, u, v):
            return Vertex(cos_a * x - sin_a * y, sin_a * x + cos_a * y, u, v)

        t = Triangle(
            rotated(0, 0, 0, 0),
            rotated(8, 0, 8 * scale, 0),
            rotated(0, 8, 0, 8 * scale),
        )
        assert t.texel_to_pixel_scale() == pytest.approx(scale, rel=1e-6)


class TestVertex:
    def test_translated_moves_position_only(self):
        v = Vertex(1, 2, u=3, v=4).translated(10, 20)
        assert (v.x, v.y, v.u, v.v) == (11, 22, 3, 4)


class TestScene:
    def test_requires_valid_screen(self):
        with pytest.raises(ConfigurationError):
            Scene("bad", 0, 64, [MipmappedTexture(8, 8)])

    def test_requires_textures(self):
        with pytest.raises(ConfigurationError):
            Scene("bad", 64, 64, [])

    def test_add_validates_texture_reference(self):
        scene = Scene("s", 64, 64, [MipmappedTexture(8, 8)])
        with pytest.raises(ConfigurationError):
            scene.add(tri([(0, 0), (1, 0), (0, 1)], texture=1))

    def test_counts_and_bytes(self):
        scene = Scene(
            "s", 64, 64, [MipmappedTexture(8, 8), MipmappedTexture(16, 16)]
        )
        scene.add(tri([(0, 0), (8, 0), (0, 8)], texture=1))
        assert scene.num_triangles == 1
        assert scene.screen_pixels == 64 * 64
        expected = (
            MipmappedTexture(8, 8).total_bytes()
            + MipmappedTexture(16, 16).total_bytes()
        )
        assert scene.texture_bytes() == expected

    def test_adding_triangle_invalidates_fragment_cache(self, flat_scene):
        before = len(flat_scene.fragments())
        flat_scene.add(tri([(0, 0), (4, 0), (0, 4)]))
        after = len(flat_scene.fragments())
        assert after > before

    def test_statistics_of_fully_tiled_screen(self, flat_scene):
        stats = flat_scene.statistics()
        assert stats.pixels_rendered == 64 * 64
        assert stats.depth_complexity == pytest.approx(1.0)
        assert stats.num_triangles == 128
        assert stats.pixels_per_triangle == pytest.approx(32.0)
        assert stats.num_textures == 1

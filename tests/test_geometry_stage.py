"""Tests for the finite-rate geometry stage."""

import numpy as np
import pytest

from repro.core import MachineConfig, simulate_machine
from repro.core.distributor import interleave_stream, run_event_machine
from repro.core.geometry_stage import geometry_release_times, throttle_stream
from repro.core.routing import build_routed_work
from repro.distribution import BlockInterleaved, SingleProcessor
from repro.errors import ConfigurationError


class TestReleaseTimes:
    def test_single_engine_is_serial(self):
        release = geometry_release_times(4, 1, 10.0)
        assert release.tolist() == [10, 20, 30, 40]

    def test_engines_overlap_round_robin(self):
        release = geometry_release_times(6, 3, 10.0)
        # Three engines finish their first triangles together; in-order
        # release keeps the stream monotone.
        assert release.tolist() == [10, 10, 10, 20, 20, 20]

    def test_monotone_release(self):
        release = geometry_release_times(100, 7, 3.5)
        assert (np.diff(release) >= 0).all()

    def test_zero_cost_is_instant(self):
        release = geometry_release_times(5, 2, 0.0)
        assert (release == 0).all()

    def test_empty_stream(self):
        assert geometry_release_times(0, 4, 10.0).size == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            geometry_release_times(4, 0, 10.0)
        with pytest.raises(ConfigurationError):
            geometry_release_times(4, 2, -1.0)

    def test_throttle_stream_shapes(self):
        stream = [(0, 30, 0), (1, 40, 16)]
        release = np.array([5.0, 9.0])
        throttled = throttle_stream(stream, [0, 1], release)
        assert throttled == [(5.0, 0, 30, 0), (9.0, 1, 40, 16)]
        with pytest.raises(ConfigurationError):
            throttle_stream(stream, [0], release)


class TestGeometryBoundMachine:
    def test_slow_geometry_dominates_frame_time(self, flat_scene):
        dist = SingleProcessor()
        ideal = simulate_machine(
            flat_scene, MachineConfig(distribution=dist, cache="perfect")
        ).cycles
        # 1 engine x 1000 cycles/triangle >> 32 pixels/triangle.
        slow = simulate_machine(
            flat_scene,
            MachineConfig(
                distribution=dist,
                cache="perfect",
                geometry_engines=1,
                geometry_cycles=1000.0,
            ),
        ).cycles
        assert slow >= flat_scene.num_triangles * 1000
        assert slow > ideal

    def test_fast_geometry_matches_ideal(self, flat_scene):
        dist = BlockInterleaved(4, 8)
        ideal = simulate_machine(
            flat_scene, MachineConfig(distribution=dist, cache="perfect")
        ).cycles
        fast = simulate_machine(
            flat_scene,
            MachineConfig(
                distribution=dist,
                cache="perfect",
                geometry_engines=64,
                geometry_cycles=1.0,
            ),
        ).cycles
        assert fast == pytest.approx(ideal, rel=0.01)

    def test_more_engines_never_slower(self, tiny_bench_scene):
        dist = BlockInterleaved(8, 16)
        work = build_routed_work(tiny_bench_scene, dist, cache_spec="perfect")
        times = []
        for engines in (1, 2, 4, 8):
            config = MachineConfig(
                distribution=dist,
                cache="perfect",
                geometry_engines=engines,
                geometry_cycles=200.0,
            )
            times.append(
                simulate_machine(tiny_bench_scene, config, routed=work).cycles
            )
        assert times == sorted(times, reverse=True)

    def test_event_path_agrees_with_fast_path_under_throttle(self, flat_scene):
        dist = BlockInterleaved(4, 8)
        work = build_routed_work(flat_scene, dist, cache_spec="perfect")
        config = MachineConfig(
            distribution=dist,
            cache="perfect",
            geometry_engines=2,
            geometry_cycles=50.0,
        )
        fast = simulate_machine(flat_scene, config, routed=work)

        from repro.core.geometry_stage import geometry_release_times

        release = geometry_release_times(flat_scene.num_triangles, 2, 50.0)
        stream = interleave_stream(work.triangles, work.pixels, work.texels)
        cycles, _ = run_event_machine(stream, 4, 10**9, 25, 1.0, release=release)
        assert cycles == pytest.approx(fast.cycles)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            MachineConfig(distribution=SingleProcessor(), geometry_engines=-1)
        with pytest.raises(ConfigurationError):
            MachineConfig(distribution=SingleProcessor(), geometry_cycles=-5)

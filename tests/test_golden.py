"""Golden-value regression tests for end-to-end simulation metrics.

Each test recomputes one tiny scene/machine point and compares its
summary metrics (cycles, speedup, texel-to-fragment ratio, miss rate)
against the committed JSON under ``tests/golden/`` with exact
equality.  The simulator is deterministic, so any difference is a
behaviour change that must be either fixed or consciously re-baselined
with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py
"""

from __future__ import annotations

import pytest

from tests.golden_common import (
    ALL_POINTS,
    VT_POINTS,
    compute_point,
    compute_vt_point,
    golden_path,
    load_golden,
    point_name,
    update_requested,
    vt_golden_path,
    vt_point_name,
    write_golden,
)


@pytest.mark.parametrize(
    "scene,family,size,processors,scale",
    ALL_POINTS,
    ids=[point_name(*point) for point in ALL_POINTS],
)
def test_golden_point(scene, family, size, processors, scale):
    path = golden_path(scene, family, size, processors, scale)
    got = compute_point(scene, family, size, processors, scale)

    if update_requested():
        write_golden(path, got)
        return

    if not path.exists():
        pytest.fail(
            f"golden file {path.name} is missing; regenerate with "
            "REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_golden.py"
        )

    expected = load_golden(path)
    assert got["metrics"] == expected["metrics"], (
        f"{path.name} drifted; if intentional, re-baseline with "
        "REPRO_UPDATE_GOLDEN=1"
    )


@pytest.mark.parametrize(
    "scene,family,size,processors,phase",
    VT_POINTS,
    ids=[vt_point_name(*point) for point in VT_POINTS],
)
def test_vt_golden_point(scene, family, size, processors, phase):
    """The VT goldens pin the paged path's residency trajectory: the
    warm frame depends on every earlier frame's mapping, so a drift in
    translation, feedback, or the LRU update shows up here."""
    path = vt_golden_path(scene, family, size, processors, phase)
    got = compute_vt_point(scene, family, size, processors, phase)

    if update_requested():
        write_golden(path, got)
        return

    if not path.exists():
        pytest.fail(
            f"golden file {path.name} is missing; regenerate with "
            "REPRO_UPDATE_GOLDEN=1 python -m pytest tests/test_golden.py"
        )

    expected = load_golden(path)
    assert got["metrics"] == expected["metrics"], (
        f"{path.name} drifted; if intentional, re-baseline with "
        "REPRO_UPDATE_GOLDEN=1"
    )


def test_vt_warm_frame_faults_less_than_cold():
    """The committed documents must show the feedback loop working."""
    if update_requested():
        pytest.skip("regeneration run")
    cold = load_golden(vt_golden_path("vt-quake", "block", 16, 4, "cold"))
    warm = load_golden(vt_golden_path("vt-quake", "block", 16, 4, "warm"))
    assert cold["metrics"]["fault_accesses"] > 0
    assert warm["metrics"]["fault_accesses"] < cold["metrics"]["fault_accesses"]


def test_golden_files_match_point_list():
    """Every committed golden file corresponds to a live point (no orphans)."""
    if update_requested():
        pytest.skip("regeneration run")
    expected_names = {point_name(*point) + ".json" for point in ALL_POINTS} | {
        vt_point_name(*point) + ".json" for point in VT_POINTS
    }
    from tests.golden_common import iter_golden_files

    on_disk = {path.name for path in iter_golden_files()}
    assert on_disk == expected_names


def test_speedup_metrics_are_consistent():
    """Sanity-check the golden documents' internal arithmetic."""
    if update_requested():
        pytest.skip("regeneration run")
    from tests.golden_common import iter_golden_files

    for path in iter_golden_files():
        doc = load_golden(path)
        metrics = doc["metrics"]
        assert metrics["cycles"] > 0
        assert metrics["speedup"] == metrics["baseline_cycles"] / metrics["cycles"]
        assert 0.0 <= metrics["miss_rate"] <= 1.0
        assert metrics["texel_to_fragment"] >= 0.0
        if doc["processors"] == 1:
            assert metrics["speedup"] == pytest.approx(1.0)

"""Tests for terminal visualisation, CSV export and parallel sweeps."""

import numpy as np
import pytest

from repro.analysis.export import results_to_csv, sweep_to_csv
from repro.analysis.heatmap import (
    PALETTE,
    ascii_heatmap,
    depth_complexity_map,
    node_load_bars,
    ownership_map,
)
from repro.analysis.parallel import keyed_tasks, run_tasks, worker_count
from repro.core import MachineConfig, simulate_machine
from repro.distribution import BlockInterleaved, ScanLineInterleaved
from repro.errors import ConfigurationError


class TestAsciiHeatmap:
    def test_shape_and_palette(self):
        values = np.array([[0.0, 0.5], [1.0, 0.25]])
        art = ascii_heatmap(values)
        lines = art.splitlines()
        assert len(lines) == 2 and all(len(line) == 2 for line in lines)
        assert lines[1][0] == PALETTE[-1]  # the maximum is brightest
        assert lines[0][0] == PALETTE[0]

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            ascii_heatmap(np.zeros(5))

    def test_all_zero_does_not_divide_by_zero(self):
        art = ascii_heatmap(np.zeros((2, 2)))
        assert set(art.replace("\n", "")) == {PALETTE[0]}

    def test_explicit_ceiling(self):
        art = ascii_heatmap(np.array([[1.0]]), max_value=10.0)
        assert art != PALETTE[-1]


class TestDepthComplexityMap:
    def test_uniform_scene_is_flat(self, flat_scene):
        grid = depth_complexity_map(flat_scene, columns=8, rows=8)
        assert grid.shape == (8, 8)
        assert grid == pytest.approx(np.ones((8, 8)))

    def test_hotspot_shows_up(self, overdraw_scene):
        grid = depth_complexity_map(overdraw_scene, columns=8, rows=8)
        # The 8-layer stack sits in the top-left corner.
        assert grid[0, 0] > grid[7, 7]

    def test_validation(self, flat_scene):
        with pytest.raises(ConfigurationError):
            depth_complexity_map(flat_scene, columns=0)


class TestOwnershipMap:
    def test_sli_stripes(self):
        art = ownership_map(ScanLineInterleaved(2, 1), 8, 8, columns=8, rows=8)
        lines = art.splitlines()
        assert lines[0] == "0" * 8
        assert lines[1] == "1" * 8

    def test_block_checkerboard(self):
        art = ownership_map(BlockInterleaved(4, 4), 8, 8, columns=8, rows=8)
        lines = art.splitlines()
        assert lines[0][:4] == "0000" and lines[0][4:] == "1111"
        assert lines[4][:4] == "2222"


class TestNodeLoadBars:
    def test_bars_and_critical_marker(self, flat_scene):
        config = MachineConfig(distribution=BlockInterleaved(4, 8), cache="perfect")
        result = simulate_machine(flat_scene, config)
        art = node_load_bars(result, width=20)
        lines = art.splitlines()
        assert len(lines) == 4
        assert sum("critical" in line for line in lines) == 1


class TestCsvExport:
    def test_sweep_round_trip(self, tmp_path):
        sweep = {(16, 4): 3.5, (8, 4): 2.0}
        path = tmp_path / "sweep.csv"
        text = sweep_to_csv(sweep, path=path)
        lines = text.strip().splitlines()
        assert lines[0] == "size,processors,value"
        assert lines[1] == "8,4,2.0"
        assert lines[2] == "16,4,3.5"
        assert path.read_text() == text

    def test_results_csv(self, flat_scene, tmp_path):
        config = MachineConfig(distribution=BlockInterleaved(4, 8), cache="perfect")
        result = simulate_machine(flat_scene, config, baseline_cycles=1000.0)
        text = results_to_csv([result], path=tmp_path / "runs.csv")
        lines = text.strip().splitlines()
        assert lines[0].startswith("scene_name,distribution")
        assert "block8x4" in lines[1]
        assert len(lines) == 2

    def test_results_csv_handles_missing_baseline(self, flat_scene):
        config = MachineConfig(distribution=BlockInterleaved(4, 8), cache="perfect")
        result = simulate_machine(flat_scene, config)
        text = results_to_csv([result])
        assert ",," in text  # empty speedup/efficiency cells


def _square(value):
    return value * value


def _raise_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


def _kill_worker_once(value):
    """Die hard in the worker on first call; succeed on inline rerun."""
    import os
    import signal
    from pathlib import Path

    marker = Path(os.environ["REPRO_TEST_PARALLEL_MARKER"])
    if not marker.exists():
        marker.write_text("boom")
        os.kill(os.getpid(), signal.SIGKILL)
    return value * 2


class TestParallel:
    def test_inline_matches_parallel(self):
        arguments = [(i,) for i in range(8)]
        assert run_tasks(_square, arguments, workers=0) == run_tasks(
            _square, arguments, workers=2
        )

    def test_keyed_results(self):
        keyed = keyed_tasks(_square, [("a", (3,)), ("b", (4,))], workers=0)
        assert keyed == {"a": 9, "b": 16}

    def test_worker_count_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert worker_count() == 0
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert worker_count() == 4
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        with pytest.raises(ConfigurationError):
            worker_count()
        monkeypatch.setenv("REPRO_WORKERS", "-1")
        with pytest.raises(ConfigurationError):
            worker_count()
        monkeypatch.setenv("REPRO_WORKERS", "2.5")
        with pytest.raises(ConfigurationError):
            worker_count()

    def test_empty_task_lists(self):
        assert run_tasks(_square, [], workers=0) == []
        assert run_tasks(_square, [], workers=4) == []
        assert keyed_tasks(_square, [], workers=4) == {}

    def test_one_worker_runs_inline(self):
        # workers=1 must not pay for a pool: same code path as inline.
        arguments = [(i,) for i in range(4)]
        assert run_tasks(_square, arguments, workers=1) == [0, 1, 4, 9]

    def test_failing_arguments_attached_inline(self):
        with pytest.raises(ValueError) as excinfo:
            run_tasks(_raise_on_three, [(1,), (3,), (5,)], workers=0)
        assert excinfo.value.failing_arguments == (3,)

    def test_failing_arguments_attached_across_processes(self):
        with pytest.raises(ValueError) as excinfo:
            run_tasks(_raise_on_three, [(1,), (3,), (5,)], workers=2)
        assert excinfo.value.failing_arguments == (3,)

    def test_broken_pool_falls_back_inline(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_PARALLEL_MARKER", str(tmp_path / "marker"))
        with pytest.warns(RuntimeWarning, match="rerunning the sweep inline"):
            results = run_tasks(_kill_worker_once, [(1,), (2,)], workers=2)
        assert results == [2, 4]

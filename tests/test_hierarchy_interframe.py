"""Tests for the two-level cache and the inter-frame study."""

import numpy as np
import pytest

from repro.analysis.interframe import (
    FrameTraffic,
    render_interframe_table,
    replay_sequence,
    warm_frame_ratio,
)
from repro.cache import CacheConfig, TwoLevelCache
from repro.cache.lru import LruCache
from repro.distribution import BlockInterleaved, SingleProcessor
from repro.workloads.scenes import SCENE_SPECS
from repro.workloads.sequence import pan_sequence, translate_scene


def small_hierarchy():
    return TwoLevelCache(
        l1_config=CacheConfig(total_bytes=512, line_bytes=64, ways=2),
        l2_config=CacheConfig(total_bytes=4096, line_bytes=64, ways=4),
    )


class TestTwoLevelCache:
    def test_memory_miss_only_when_both_levels_miss(self):
        cache = small_hierarchy()
        first = cache.misses(np.array([7]))
        again = cache.misses(np.array([7]))
        assert first.tolist() == [True]
        assert again.tolist() == [False]
        assert cache.l1_misses == 1 and cache.l2_misses == 1

    def test_l2_catches_l1_evictions(self):
        cache = small_hierarchy()
        # L1 set 0 holds 2 ways; lines 0, 8, 16 all map to L1 set 0
        # (8 sets? 512/64/2 = 4 sets) -> use multiples of 4.
        stream = np.array([0, 4, 8, 0])
        memory = cache.misses(stream)
        # Line 0 was evicted from L1 by 4 and 8, but the L2 still has it.
        assert memory.tolist() == [True, True, True, False]
        assert cache.l1_misses == 4
        assert cache.l2_misses == 3

    def test_reset_l1_only_keeps_l2_warm(self):
        cache = small_hierarchy()
        cache.misses(np.array([3]))
        cache.reset_l1_only()
        memory = cache.misses(np.array([3]))
        assert memory.tolist() == [False]  # L1 missed, L2 hit

    def test_full_reset_clears_both(self):
        cache = small_hierarchy()
        cache.misses(np.array([3]))
        cache.reset()
        assert cache.l1_misses == 0
        memory = cache.misses(np.array([3]))
        assert memory.tolist() == [True]

    def test_equivalent_to_single_l2_for_inclusive_stream(self):
        """Memory misses equal a standalone L2's misses on the L1-miss
        substream by construction."""
        config_l1 = CacheConfig(total_bytes=512, line_bytes=64, ways=2)
        config_l2 = CacheConfig(total_bytes=4096, line_bytes=64, ways=4)
        rng = np.random.default_rng(0)
        stream = rng.integers(0, 100, size=2000)
        hierarchy = TwoLevelCache(config_l1, config_l2)
        memory = hierarchy.misses(stream)

        l1 = LruCache(config_l1)
        l1_mask = l1.simulate(stream)
        l2 = LruCache(config_l2)
        expected = np.zeros(len(stream), dtype=bool)
        expected[np.flatnonzero(l1_mask)] = l2.simulate(stream[l1_mask])
        assert (memory == expected).all()

    def test_name_mentions_both_levels(self):
        assert "l2" in TwoLevelCache().name


class TestPanSequence:
    def test_frames_share_textures_and_screen(self):
        frames = pan_sequence(SCENE_SPECS["blowout775"], 0.0625, 3, 8)
        assert len(frames) == 3
        assert frames[0].textures[0] is frames[1].textures[0]
        assert frames[0].width == frames[2].width

    def test_zero_pan_repeats_the_frame(self):
        frames = pan_sequence(SCENE_SPECS["blowout775"], 0.0625, 2, 0)
        a = frames[0].fragments()
        b = frames[1].fragments()
        assert len(a) == len(b)
        assert (a.x == b.x).all()

    def test_pan_moves_content(self):
        frames = pan_sequence(SCENE_SPECS["blowout775"], 0.0625, 2, 10)
        v0 = frames[0].triangles[0].v0
        v1 = frames[1].triangles[0].v0
        assert v1.x == pytest.approx(v0.x - 10)
        assert v1.u == v0.u  # texture binding unchanged

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            pan_sequence(SCENE_SPECS["blowout775"], 0.0625, 0, 4)
        with pytest.raises(ConfigurationError):
            pan_sequence(SCENE_SPECS["blowout775"], 0.0625, 2, -1)

    def test_translate_scene_keeps_counts(self, flat_scene):
        moved = translate_scene(flat_scene, 5, 0)
        assert moved.num_triangles == flat_scene.num_triangles
        assert moved.textures[0] is flat_scene.textures[0]


class TestReplaySequence:
    def test_static_frame_is_free_after_warmup(self, flat_scene):
        frames = [flat_scene, translate_scene(flat_scene, 0, 0)]
        traffic = replay_sequence(
            frames,
            SingleProcessor(),
            l2_config=CacheConfig(total_bytes=1 << 20, ways=8),
        )
        assert traffic[0].memory_ratio > 0
        assert traffic[1].memory_ratio == 0.0

    def test_bigger_pan_leaves_less_l2_benefit(self):
        def warm_ratio(pan):
            frames = pan_sequence(SCENE_SPECS["massive32_1255"], 0.0625, 3, pan)
            traffic = replay_sequence(frames, BlockInterleaved(4, 16))
            return warm_frame_ratio(traffic)

        assert warm_ratio(0) < warm_ratio(8) < warm_ratio(48)

    def test_traffic_accounting(self, flat_scene):
        traffic = replay_sequence([flat_scene], SingleProcessor())
        entry = traffic[0]
        assert entry.fragments == len(flat_scene.fragments())
        assert entry.memory_texels <= entry.l1_to_l2_texels
        assert entry.memory_ratio == pytest.approx(
            entry.memory_texels / entry.fragments
        )

    def test_render_table(self):
        text = render_interframe_table(
            [(0, 16, 1.0, 0.2)], "demo", 4, 0.125
        )
        assert "pan px/frame" in text and "80%" in text


def test_frame_traffic_zero_fragments():
    assert FrameTraffic(0, 0, 0, 0).memory_ratio == 0.0

"""End-to-end integration tests: miniature versions of the paper's claims.

These run the full pipeline (generator -> rasterizer -> routing -> cache
-> timing) on small scenes and check the *qualitative* shape of each
headline result.  The benchmark harness regenerates the quantitative
tables at full experiment scale.
"""

import pytest

from repro.analysis import SpeedupStudy, imbalance_percent, texel_to_fragment_ratio
from repro.analysis.buffering import buffer_sweep
from repro.core import MachineConfig, simulate_machine
from repro.distribution import BlockInterleaved, ScanLineInterleaved
from repro.workloads import build_scene

SCALE = 0.0625


@pytest.fixture(scope="module")
def massive():
    return build_scene("massive32_1255", scale=SCALE)


@pytest.fixture(scope="module")
def truc():
    return build_scene("truc640", scale=SCALE)


class TestSection5LoadBalance:
    def test_imbalance_grows_with_block_size(self, massive):
        values = [
            imbalance_percent(massive, BlockInterleaved(8, width))
            for width in (4, 16, 64)
        ]
        assert values[0] < values[-1]

    def test_imbalance_grows_with_processors(self, massive):
        small = imbalance_percent(massive, ScanLineInterleaved(2, 8))
        large = imbalance_percent(massive, ScanLineInterleaved(16, 8))
        assert large > small

    def test_block_beats_sli_at_same_block_height(self, massive):
        """An SLI group is a full-width block: same height, worse balance."""
        block = imbalance_percent(massive, BlockInterleaved(8, 16))
        sli = imbalance_percent(massive, ScanLineInterleaved(8, 16))
        assert sli > block


class TestSection6Locality:
    def test_ratio_increases_as_tiles_shrink(self, massive):
        coarse = texel_to_fragment_ratio(massive, BlockInterleaved(4, 32))
        fine = texel_to_fragment_ratio(massive, BlockInterleaved(4, 4))
        assert fine > coarse

    def test_ratio_increases_with_processors(self, massive):
        few = texel_to_fragment_ratio(massive, ScanLineInterleaved(2, 2))
        many = texel_to_fragment_ratio(massive, ScanLineInterleaved(16, 2))
        assert many > few

    def test_ratio_bounded_by_cacheless_machine(self, massive):
        ratio = texel_to_fragment_ratio(massive, ScanLineInterleaved(16, 1))
        assert ratio <= 16.0  # line fills: worst case 2 lines/fragment


class TestSection7Performance:
    def test_massive_prefers_moderate_blocks(self, massive):
        """Both very small and very large tiles lose to the middle."""
        study = SpeedupStudy(massive, cache="lru", bus_ratio=1.0)
        sweep = study.sweep("block", [2, 16, 128], [8])
        assert sweep[(16, 8)] >= sweep[(2, 8)]
        assert sweep[(16, 8)] >= sweep[(128, 8)]

    def test_speedup_grows_with_processors(self, massive):
        study = SpeedupStudy(massive, cache="perfect")
        sweep = study.sweep("block", [16], [2, 8])
        assert sweep[(16, 8)] > sweep[(16, 2)]


class TestSection8Buffering:
    def test_small_buffers_cost_performance(self, truc):
        sweep = buffer_sweep(
            truc,
            "block",
            sizes=[16],
            buffer_sizes=[1, 10000],
            num_processors=8,
            cache="perfect",
        )
        assert sweep[(16, 10000)] > sweep[(16, 1)]


class TestTraceDrivenEquivalence:
    def test_saved_trace_reproduces_simulation(self, truc, tmp_path):
        """Capture-and-replay (the paper's Mesa-trace workflow)."""
        from repro.geometry import load_trace, save_trace

        path = tmp_path / "truc.trace"
        save_trace(truc, path)
        replayed = load_trace(path)
        config = MachineConfig(distribution=BlockInterleaved(4, 16), cache="perfect")
        live = simulate_machine(truc, config).cycles
        replay = simulate_machine(replayed, config).cycles
        assert replay == pytest.approx(live, rel=0.002)
